//! Per-link channel models and the event-driven ingest transport.
//!
//! The lockstep `SimTransport` samples one scalar round-trip latency per
//! exchange; nothing contends with anything because only one exchange is
//! ever "in flight". Continuous ingestion breaks that assumption: many
//! replies race toward the controller at once, and on a real control
//! network they share links. [`LinkModel`] gives each shared link the
//! three properties that matter (OMNeT++/INET-style):
//!
//! * **propagation delay** — a constant flight time per traversal;
//! * **serialization bandwidth** — a message occupies the link for
//!   `bytes / bytes_per_ms`, so back-to-back replies queue behind each
//!   other's transmission;
//! * **a bounded queue** — at most `queue_capacity` messages may be
//!   waiting; an arrival beyond that is a *congestion drop*.
//!
//! [`IngestChannel`] composes those links into the controller's view of
//! the network: each switch reaches its region's shared **uplink**
//! through a per-switch **access** hop, and per-switch fault behaviour
//! (drops, jitter, offline windows, stale-reply reordering) comes from
//! the same [`FaultProfile`]/[`FaultModel`] vocabulary the lockstep
//! transport uses — one fault surface, two delivery disciplines.

use foces_channel::{
    wire_exchange, ChannelError, ControllerMsg, Delivery, Fate, FaultModel, FaultProfile,
    SwitchAgent, SwitchMsg, TimedDelivery, Transport,
};
use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use std::collections::HashMap;

use crate::event::SimTime;

/// Static properties of one simulated link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSpec {
    /// One-way flight time per traversal, milliseconds.
    pub propagation_ms: f64,
    /// Serialization rate: a `b`-byte message occupies the link for
    /// `b / bytes_per_ms` milliseconds.
    pub bytes_per_ms: f64,
    /// Maximum messages queued behind the one being serialized; the next
    /// arrival is dropped (congestion loss).
    pub queue_capacity: usize,
}

impl Default for LinkSpec {
    /// A 10 Mbit/s-ish control link: 0.5 ms flight, 1250 bytes/ms,
    /// 64-message queue.
    fn default() -> Self {
        LinkSpec {
            propagation_ms: 0.5,
            bytes_per_ms: 1250.0,
            queue_capacity: 64,
        }
    }
}

/// Dynamic state of one link: when its transmitter frees up and which
/// queued messages have not yet departed.
#[derive(Debug, Clone)]
pub struct LinkModel {
    spec: LinkSpec,
    busy_until: SimTime,
    /// Departure times of queued/in-service messages, ascending.
    departures: Vec<SimTime>,
    drops: u64,
}

impl LinkModel {
    /// A quiet link with the given spec.
    pub fn new(spec: LinkSpec) -> Self {
        LinkModel {
            spec,
            busy_until: SimTime::ZERO,
            departures: Vec::new(),
            drops: 0,
        }
    }

    /// The link's static spec.
    pub fn spec(&self) -> &LinkSpec {
        &self.spec
    }

    /// Congestion drops so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Offers a `bytes`-byte message to the link at `now`.
    ///
    /// Returns the instant the message *arrives at the far end*
    /// (serialization wait + serialization time + propagation), or `None`
    /// if the bounded queue is full and the message is dropped.
    pub fn transmit(&mut self, now: SimTime, bytes: usize) -> Option<SimTime> {
        // Messages that have fully departed by `now` free their slots.
        self.departures.retain(|&d| d > now);
        if self.departures.len() > self.spec.queue_capacity {
            self.drops += 1;
            return None;
        }
        let start = self.busy_until.max(now);
        let ser_ms = bytes as f64 / self.spec.bytes_per_ms;
        let departed = start.after_ms(ser_ms);
        self.busy_until = departed;
        self.departures.push(departed);
        Some(departed.after_ms(self.spec.propagation_ms))
    }
}

/// The event-driven ingest transport: per-switch access hops into
/// per-region shared uplinks, with per-switch [`FaultProfile`] behaviour.
///
/// Implements [`Transport`], with [`Transport::exchange_at`] as the
/// primary surface: the caller supplies the absolute send instant and
/// gets back the absolute arrival instant, computed from channel state
/// (uplink occupancy) *at that instant*. The blocking
/// [`Transport::exchange`] remains usable (it reuses the last
/// `exchange_at` clock), so collectors built against the lockstep
/// surface still run.
#[derive(Debug, Clone)]
pub struct IngestChannel {
    faults: FaultModel,
    default_access: LinkSpec,
    access_override: HashMap<SwitchId, LinkSpec>,
    /// Lazily materialised per-switch access links.
    access: HashMap<SwitchId, LinkModel>,
    region_of: HashMap<SwitchId, usize>,
    uplinks: Vec<LinkModel>,
    /// Last fresh reply per switch, the stale-reorder buffer
    /// (same semantics as the lockstep `SimTransport`).
    stale: HashMap<SwitchId, SwitchMsg>,
    clock_ms: f64,
}

impl IngestChannel {
    /// Builds the channel for shard `members[region] = switches`.
    ///
    /// Every access hop starts from `access` and every uplink from
    /// `uplink`; override per switch/region afterwards for heterogeneous
    /// topologies.
    pub fn new(
        seed: u64,
        default_profile: FaultProfile,
        access: LinkSpec,
        uplink: LinkSpec,
        members: &[Vec<SwitchId>],
    ) -> Self {
        let mut region_of = HashMap::new();
        for (r, sws) in members.iter().enumerate() {
            for &s in sws {
                region_of.insert(s, r);
            }
        }
        IngestChannel {
            faults: FaultModel::new(seed, default_profile),
            default_access: access,
            access_override: HashMap::new(),
            access: HashMap::new(),
            region_of,
            uplinks: members
                .iter()
                .map(|_| LinkModel::new(uplink.clone()))
                .collect(),
            stale: HashMap::new(),
            clock_ms: 0.0,
        }
    }

    /// Overrides one switch's fault profile.
    pub fn set_profile(&mut self, switch: SwitchId, profile: FaultProfile) {
        self.faults.set_profile(switch, profile);
    }

    /// Overrides one switch's access-hop spec (heterogeneous delays).
    pub fn set_access(&mut self, switch: SwitchId, spec: LinkSpec) {
        self.access.remove(&switch);
        self.access_override.insert(switch, spec);
    }

    /// Overrides one region's shared uplink spec.
    pub fn set_uplink(&mut self, region: usize, spec: LinkSpec) {
        self.uplinks[region] = LinkModel::new(spec);
    }

    /// The access spec governing `switch`.
    pub fn access_spec(&self, switch: SwitchId) -> &LinkSpec {
        self.access_override
            .get(&switch)
            .unwrap_or(&self.default_access)
    }

    /// Congestion drops across all uplinks.
    pub fn congestion_drops(&self) -> u64 {
        self.uplinks.iter().map(LinkModel::drops).sum()
    }

    fn access_prop_ms(&mut self, switch: SwitchId) -> f64 {
        self.access_spec(switch).propagation_ms
    }
}

impl Transport for IngestChannel {
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError> {
        Ok(self.exchange_at(dp, agent, msg, self.clock_ms)?.delivery)
    }

    fn exchange_at(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
        now_ms: f64,
    ) -> Result<TimedDelivery, ChannelError> {
        self.clock_ms = now_ms;
        let sw = agent.switch();
        let now = SimTime::from_ms(now_ms);
        // Whole simulated milliseconds are this transport's offline clock.
        let (latency_ms, reorder) = match self.faults.fate(sw, now_ms as u64) {
            Fate::Offline => {
                return Ok(TimedDelivery {
                    delivery: Delivery::Offline,
                    at_ms: now_ms,
                })
            }
            Fate::Dropped => {
                return Ok(TimedDelivery {
                    delivery: Delivery::Dropped,
                    at_ms: now_ms,
                })
            }
            Fate::Deliver {
                latency_ms,
                reorder,
            } => (latency_ms, reorder),
        };
        // Request flight + switch turnaround: per-switch profile latency
        // (base + jitter) plus the access hop toward the fabric.
        let reply_ready = now.after_ms(latency_ms + self.access_prop_ms(sw));
        let fresh = wire_exchange(dp, agent, msg)?;
        let reply = if reorder {
            self.stale.insert(sw, fresh.clone()).unwrap_or(fresh)
        } else {
            self.stale.insert(sw, fresh.clone());
            fresh
        };
        let bytes = reply.encode().len();
        let region = self.region_of.get(&sw).copied();
        let arrival = match region {
            Some(r) => match self.uplinks[r].transmit(reply_ready, bytes) {
                Some(t) => t,
                None => {
                    // Congestion drop on the shared uplink: the reply is
                    // gone; the poller learns via its timeout.
                    return Ok(TimedDelivery {
                        delivery: Delivery::Dropped,
                        at_ms: now_ms,
                    });
                }
            },
            // A switch outside every region (degenerate partition) skips
            // uplink contention.
            None => reply_ready,
        };
        let total_latency = arrival.as_ms() - now_ms;
        Ok(TimedDelivery {
            delivery: Delivery::Delivered {
                reply,
                latency_ms: total_latency,
            },
            at_ms: arrival.as_ms(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_channel::HonestAgent;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    #[test]
    fn serialization_makes_concurrent_replies_queue() {
        let mut link = LinkModel::new(LinkSpec {
            propagation_ms: 1.0,
            bytes_per_ms: 100.0,
            queue_capacity: 8,
        });
        // Two 200-byte messages offered at the same instant: the second
        // serializes behind the first.
        let a = link.transmit(SimTime::ZERO, 200).unwrap();
        let b = link.transmit(SimTime::ZERO, 200).unwrap();
        assert_eq!(a, SimTime::from_ms(3.0), "2 ms serialization + 1 ms flight");
        assert_eq!(b, SimTime::from_ms(5.0), "waits out the first transmission");
        // A later arrival, after the link drained, sees no queueing.
        let c = link.transmit(SimTime::from_ms(10.0), 100).unwrap();
        assert_eq!(c, SimTime::from_ms(12.0));
    }

    #[test]
    fn bounded_queue_drops_the_overflow() {
        let mut link = LinkModel::new(LinkSpec {
            propagation_ms: 0.0,
            bytes_per_ms: 1.0,
            queue_capacity: 2,
        });
        // Each message serializes for 100 ms; capacity 2 means the 4th
        // concurrent offer (1 in service + 2 queued + 1 over) drops.
        assert!(link.transmit(SimTime::ZERO, 100).is_some());
        assert!(link.transmit(SimTime::ZERO, 100).is_some());
        assert!(link.transmit(SimTime::ZERO, 100).is_some());
        assert!(link.transmit(SimTime::ZERO, 100).is_none(), "overflow");
        assert_eq!(link.drops(), 1);
        // Once the backlog drains, the link accepts again.
        assert!(link.transmit(SimTime::from_ms(400.0), 100).is_some());
    }

    #[test]
    fn exchange_at_composes_access_uplink_and_profile() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let sw = foces_net::SwitchId(0);
        let members = vec![vec![sw, foces_net::SwitchId(1)]];
        let mut ch = IngestChannel::new(
            5,
            FaultProfile::default(), // 1 ms latency, no faults
            LinkSpec {
                propagation_ms: 2.0,
                ..LinkSpec::default()
            },
            LinkSpec {
                propagation_ms: 3.0,
                bytes_per_ms: 1_000_000.0, // serialization ≈ 0
                queue_capacity: 8,
            },
            &members,
        );
        let agent = HonestAgent::new(sw);
        let td = ch
            .exchange_at(
                &dep.dataplane,
                &agent,
                &ControllerMsg::StatsRequest { xid: 1 },
                10.0,
            )
            .unwrap();
        // 10 (send) + 1 (profile) + 2 (access) + ~0 (ser) + 3 (uplink).
        assert!(
            (td.at_ms - 16.0).abs() < 0.05,
            "arrival {} should be ≈16 ms",
            td.at_ms
        );
        assert!(matches!(td.delivery, Delivery::Delivered { .. }));
    }

    #[test]
    fn same_seed_same_timing() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let members = vec![vec![foces_net::SwitchId(0), foces_net::SwitchId(1)]];
        let profile = FaultProfile {
            jitter_ms: 3.0,
            drop_prob: 0.2,
            ..FaultProfile::default()
        };
        let run = |seed: u64| -> Vec<(bool, u64)> {
            let mut ch = IngestChannel::new(
                seed,
                profile.clone(),
                LinkSpec::default(),
                LinkSpec::default(),
                &members,
            );
            let agent = HonestAgent::new(foces_net::SwitchId(0));
            (0..24)
                .map(|i| {
                    let td = ch
                        .exchange_at(
                            &dep.dataplane,
                            &agent,
                            &ControllerMsg::StatsRequest { xid: i },
                            i as f64 * 5.0,
                        )
                        .unwrap();
                    (
                        matches!(td.delivery, Delivery::Delivered { .. }),
                        SimTime::from_ms(td.at_ms).0,
                    )
                })
                .collect()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10), "different seeds should diverge");
    }
}
