//! Simulated time and the time-ordered event queue.
//!
//! Everything in the stream pipeline is an event at an integer-microsecond
//! [`SimTime`]: poll timers, in-flight replies, retry timeouts, scenario
//! actions. The queue is a binary heap ordered by `(time, sequence)` —
//! the sequence number is assigned at push, so two events scheduled for
//! the same instant pop in **FIFO order**. That tie-break is what makes
//! the whole stream deterministic: floats never order events (times are
//! quantised to µs on entry), and insertion order breaks every remaining
//! tie the same way on every run.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A point in simulated time, in integer microseconds from stream start.
///
/// Integer micros rather than `f64` milliseconds so that ordering is
/// total and exact — equal-time events are *exactly* equal, and the FIFO
/// tie-break (not float noise) decides their order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Quantises fractional milliseconds to the microsecond grid
    /// (saturating at zero for negative inputs).
    pub fn from_ms(ms: f64) -> SimTime {
        SimTime((ms.max(0.0) * 1000.0).round() as u64)
    }

    /// This instant as fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// This instant plus `ms` milliseconds.
    pub fn after_ms(self, ms: f64) -> SimTime {
        SimTime(self.0 + SimTime::from_ms(ms).0)
    }
}

#[derive(Debug)]
struct Entry<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

// Reverse ordering: BinaryHeap is a max-heap, we want the earliest
// (time, seq) out first.
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

/// A deterministic time-ordered event queue.
///
/// Pops are nondecreasing in time; equal-time events pop in push (FIFO)
/// order. See the [`module docs`](self) for why.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
    popped: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            popped: 0,
        }
    }

    /// Schedules `payload` at `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the earliest event (FIFO among equal times).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        let e = self.heap.pop()?;
        self.popped += 1;
        Some((e.at, e.payload))
    }

    /// The timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Is the queue empty?
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Events popped over the queue's lifetime.
    pub fn processed(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop()).map(|(_, p)| p).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_pushes_keep_fifo_within_ties() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), "first@7");
        q.push(SimTime(3), "only@3");
        q.push(SimTime(7), "second@7");
        assert_eq!(q.pop(), Some((SimTime(3), "only@3")));
        q.push(SimTime(7), "third@7");
        assert_eq!(q.pop(), Some((SimTime(7), "first@7")));
        assert_eq!(q.pop(), Some((SimTime(7), "second@7")));
        assert_eq!(q.pop(), Some((SimTime(7), "third@7")));
        assert!(q.is_empty());
        assert_eq!(q.processed(), 4);
    }

    #[test]
    fn sim_time_quantisation() {
        assert_eq!(SimTime::from_ms(1.5), SimTime(1500));
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
        assert_eq!(SimTime(2500).as_ms(), 2.5);
        assert_eq!(SimTime(1000).after_ms(0.25), SimTime(1250));
    }
}
