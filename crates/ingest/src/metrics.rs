//! Ingest observability: aggregate counters for one stream run.
//!
//! Same philosophy as [`foces_runtime::RuntimeMetrics`]: flat, hand-rolled
//! JSON (no serde in the tree) so `jq` is enough. The stream-specific
//! additions are the latency milestones — **time to first verdict**
//! (`ttfv_ms`) and **time to all verdicts** (`ttav_ms`) — which are the
//! whole point of shard-complete triggering: the first verdict lands when
//! the *fastest* shard completes, not when the slowest switch answers.

use foces_runtime::metrics::json_f64;
use std::fmt::Write as _;

/// Aggregate counters over one stream run (simulated time throughout).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IngestMetrics {
    /// Events popped off the queue.
    pub events: u64,
    /// Poll cycles started (one per `PollDue` that sent a request).
    pub polls: u64,
    /// Stats requests sent (first attempts + retries).
    pub attempts: u64,
    /// Retries beyond each poll cycle's first attempt.
    pub retries: u64,
    /// Requests lost to fault-model drops.
    pub drops: u64,
    /// Replies lost to uplink queue overflow (congestion).
    pub congestion_drops: u64,
    /// Attempt timeouts that fired with no reply accepted.
    pub timeouts: u64,
    /// Polls that found the switch offline.
    pub offline_polls: u64,
    /// Poll cycles abandoned after `max_attempts`.
    pub unresponsive: u64,
    /// Replies discarded for a stale transaction id.
    pub stale_replies: u64,
    /// Accepted replies whose generation stamp outran the FCM build.
    pub stale_generation_replies: u64,
    /// Replies accepted into the collection state.
    pub samples: u64,
    /// Shard detection rounds fired.
    pub shard_rounds: u64,
    /// Shard rounds solved on the warm path.
    pub warm_rounds: u64,
    /// Shard rounds solved cold.
    pub cold_rounds: u64,
    /// Shard rounds reconciled against the update journal.
    pub reconciled_rounds: u64,
    /// Shard rounds solved with unsampled closure rows masked out
    /// (typically the first fire per shard, before neighbours report).
    pub degraded_rounds: u64,
    /// Shard rounds with nothing left to solve after quarantine.
    pub blind_rounds: u64,
    /// Shard rounds whose residuals fed the suspicion tracker.
    pub suspicion_rounds: u64,
    /// Leave-one-switch-out candidate solves performed.
    pub loo_solves: u64,
    /// Rank-one factor downdates spent across all leave-one-out solves.
    pub loo_downdates: u64,
    /// Liars uniquely localized by leave-one-out cross-validation.
    pub liars_localized: u64,
    /// Switches placed under counter quarantine.
    pub switch_quarantines: u64,
    /// Quarantines lifted after a clean re-probe.
    pub quarantine_releases: u64,
    /// Rounds that entered the unresolved-Byzantine state (alarm up, no
    /// single switch's removal explains it).
    pub unresolved_byzantine: u64,
    /// k-resilience probes run on alarm-raise rounds.
    pub resilience_probes: u64,
    /// Probes whose verdict flipped when suspects were silenced.
    pub resilience_flips: u64,
    /// Shard rounds whose verdict was anomalous.
    pub anomalous_rounds: u64,
    /// Alarm raise transitions.
    pub alarms_raised: u64,
    /// Alarm clear transitions.
    pub alarms_cleared: u64,
    /// Rounds where churn suppression held a raise quorum back.
    pub suppressed_raises: u64,
    /// FCM + shard rebuilds after the view moved.
    pub fcm_rebuilds: u64,
    /// WARN-severity findings from the latest pre-flight coverage analysis
    /// of the stream's FCM (refreshed on every rebuild).
    pub coverage_warnings: u64,
    /// Simulated time of the first shard verdict, ms (`None`: none fired).
    pub ttfv_ms: Option<f64>,
    /// Simulated time by which every (non-empty) shard had fired at least
    /// once, ms.
    pub ttav_ms: Option<f64>,
    /// First anomaly injection to first alarm raise, ms.
    pub alarm_latency_ms: Option<f64>,
    /// Simulated time of the last processed event, ms.
    pub end_ms: f64,
}

impl IngestMetrics {
    /// One-line JSON rendering of every counter (`null` for unset
    /// milestones).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        let mut raw = |s: &mut String, k: &str, v: String| {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\"{k}\":{v}");
        };
        let opt = |v: Option<f64>| v.map(json_f64).unwrap_or_else(|| "null".into());
        raw(&mut s, "events", json_f64(self.events as f64));
        raw(&mut s, "polls", json_f64(self.polls as f64));
        raw(&mut s, "attempts", json_f64(self.attempts as f64));
        raw(&mut s, "retries", json_f64(self.retries as f64));
        raw(&mut s, "drops", json_f64(self.drops as f64));
        raw(
            &mut s,
            "congestion_drops",
            json_f64(self.congestion_drops as f64),
        );
        raw(&mut s, "timeouts", json_f64(self.timeouts as f64));
        raw(&mut s, "offline_polls", json_f64(self.offline_polls as f64));
        raw(&mut s, "unresponsive", json_f64(self.unresponsive as f64));
        raw(&mut s, "stale_replies", json_f64(self.stale_replies as f64));
        raw(
            &mut s,
            "stale_generation_replies",
            json_f64(self.stale_generation_replies as f64),
        );
        raw(&mut s, "samples", json_f64(self.samples as f64));
        raw(&mut s, "shard_rounds", json_f64(self.shard_rounds as f64));
        raw(&mut s, "warm_rounds", json_f64(self.warm_rounds as f64));
        raw(&mut s, "cold_rounds", json_f64(self.cold_rounds as f64));
        raw(
            &mut s,
            "reconciled_rounds",
            json_f64(self.reconciled_rounds as f64),
        );
        raw(
            &mut s,
            "degraded_rounds",
            json_f64(self.degraded_rounds as f64),
        );
        raw(&mut s, "blind_rounds", json_f64(self.blind_rounds as f64));
        raw(
            &mut s,
            "suspicion_rounds",
            json_f64(self.suspicion_rounds as f64),
        );
        raw(&mut s, "loo_solves", json_f64(self.loo_solves as f64));
        raw(&mut s, "loo_downdates", json_f64(self.loo_downdates as f64));
        raw(
            &mut s,
            "liars_localized",
            json_f64(self.liars_localized as f64),
        );
        raw(
            &mut s,
            "switch_quarantines",
            json_f64(self.switch_quarantines as f64),
        );
        raw(
            &mut s,
            "quarantine_releases",
            json_f64(self.quarantine_releases as f64),
        );
        raw(
            &mut s,
            "unresolved_byzantine",
            json_f64(self.unresolved_byzantine as f64),
        );
        raw(
            &mut s,
            "resilience_probes",
            json_f64(self.resilience_probes as f64),
        );
        raw(
            &mut s,
            "resilience_flips",
            json_f64(self.resilience_flips as f64),
        );
        raw(
            &mut s,
            "anomalous_rounds",
            json_f64(self.anomalous_rounds as f64),
        );
        raw(&mut s, "alarms_raised", json_f64(self.alarms_raised as f64));
        raw(
            &mut s,
            "alarms_cleared",
            json_f64(self.alarms_cleared as f64),
        );
        raw(
            &mut s,
            "suppressed_raises",
            json_f64(self.suppressed_raises as f64),
        );
        raw(&mut s, "fcm_rebuilds", json_f64(self.fcm_rebuilds as f64));
        raw(
            &mut s,
            "coverage_warnings",
            json_f64(self.coverage_warnings as f64),
        );
        raw(&mut s, "ttfv_ms", opt(self.ttfv_ms));
        raw(&mut s, "ttav_ms", opt(self.ttav_ms));
        raw(&mut s, "alarm_latency_ms", opt(self.alarm_latency_ms));
        raw(&mut s, "end_ms", json_f64(self.end_ms));
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_flat_json_with_null_milestones() {
        let m = IngestMetrics {
            polls: 12,
            ttfv_ms: Some(3.25),
            ..IngestMetrics::default()
        };
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"polls\":12"));
        assert!(j.contains("\"ttfv_ms\":3.250000"));
        assert!(j.contains("\"ttav_ms\":null"));
        assert!(!j.contains("{{"), "flat object only");
    }
}
