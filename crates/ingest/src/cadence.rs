//! Adaptive per-switch poll cadence.
//!
//! Lockstep collection polls every switch every epoch, so the polling
//! budget scales with network size no matter how quiet the network is.
//! [`PollCadence`] gives each switch its own timer: a switch whose
//! counters keep coming back unremarkable backs off geometrically toward
//! `max_ms` (half the controller's attention for the same coverage),
//! while any sign of trouble — churn touching the switch's shard, an
//! anomalous shard verdict, a timeout — snaps the interval back to
//! `min_ms` so the stream tightens exactly where and when it matters.

/// Knobs for one switch's adaptive poll timer.
#[derive(Debug, Clone, PartialEq)]
pub struct CadenceConfig {
    /// Interval both the first poll and every post-activity poll use, ms.
    pub min_ms: f64,
    /// Ceiling the interval backs off toward while quiet, ms.
    pub max_ms: f64,
    /// Multiplier applied per quiet poll once the streak is long enough.
    pub backoff: f64,
    /// Consecutive quiet polls before backoff starts.
    pub quiet_threshold: u32,
}

impl Default for CadenceConfig {
    /// 50 ms when active, backing off ×1.5 toward 400 ms after 3 quiet
    /// polls.
    fn default() -> Self {
        CadenceConfig {
            min_ms: 50.0,
            max_ms: 400.0,
            backoff: 1.5,
            quiet_threshold: 3,
        }
    }
}

impl CadenceConfig {
    /// A fixed-interval cadence (adaptivity disabled): every poll fires
    /// `ms` after the last.
    pub fn fixed(ms: f64) -> Self {
        CadenceConfig {
            min_ms: ms,
            max_ms: ms,
            backoff: 1.0,
            quiet_threshold: u32::MAX,
        }
    }
}

/// One switch's poll timer state.
#[derive(Debug, Clone)]
pub struct PollCadence {
    config: CadenceConfig,
    interval_ms: f64,
    quiet_streak: u32,
}

impl PollCadence {
    /// A timer starting at the tight (`min_ms`) interval.
    pub fn new(config: CadenceConfig) -> Self {
        let interval_ms = config.min_ms;
        PollCadence {
            config,
            interval_ms,
            quiet_streak: 0,
        }
    }

    /// The interval until this switch's next poll, ms.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// Records an uneventful poll: counters arrived, verdict clean, no
    /// churn. After `quiet_threshold` such polls in a row the interval
    /// backs off geometrically toward `max_ms`. A suspicion-tightened
    /// interval (below `min_ms`) first recovers toward the floor.
    pub fn on_quiet(&mut self) {
        if self.interval_ms < self.config.min_ms {
            self.interval_ms = (self.interval_ms * 2.0).min(self.config.min_ms);
            self.quiet_streak = 0;
            return;
        }
        self.quiet_streak = self.quiet_streak.saturating_add(1);
        if self.quiet_streak >= self.config.quiet_threshold {
            self.interval_ms = (self.interval_ms * self.config.backoff).min(self.config.max_ms);
        }
    }

    /// Records activity near this switch (churn in its shard, anomalous
    /// verdict, timeout): the interval snaps back to `min_ms`. A
    /// suspicion-tightened interval below the floor is left alone —
    /// activity never *loosens* the timer.
    pub fn on_activity(&mut self) {
        self.quiet_streak = 0;
        self.interval_ms = self.interval_ms.min(self.config.min_ms);
    }

    /// Records rising suspicion of this switch's shard: an anomalous round
    /// while the alarm machine is still accumulating its raise quorum, or
    /// a jump in the Byzantine suspicion score. The interval *halves*,
    /// deliberately dropping below `min_ms` (floored at `min_ms / 4`), so
    /// even a fixed cadence tightens while hysteresis counts — without
    /// this, a fixed-cadence stream pays one full poll interval per quorum
    /// round and the alarm starves behind the hysteresis window.
    pub fn on_suspicion(&mut self) {
        self.quiet_streak = 0;
        self.interval_ms = (self.interval_ms * 0.5).max(self.config.min_ms * 0.25);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backs_off_only_after_the_quiet_threshold() {
        let mut c = PollCadence::new(CadenceConfig {
            min_ms: 10.0,
            max_ms: 80.0,
            backoff: 2.0,
            quiet_threshold: 2,
        });
        assert_eq!(c.interval_ms(), 10.0);
        c.on_quiet();
        assert_eq!(c.interval_ms(), 10.0, "streak of 1 < threshold");
        c.on_quiet();
        assert_eq!(c.interval_ms(), 20.0);
        c.on_quiet();
        assert_eq!(c.interval_ms(), 40.0);
        c.on_quiet();
        c.on_quiet();
        assert_eq!(c.interval_ms(), 80.0, "clamped at max");
    }

    #[test]
    fn activity_snaps_back_to_min() {
        let mut c = PollCadence::new(CadenceConfig {
            min_ms: 10.0,
            max_ms: 80.0,
            backoff: 2.0,
            quiet_threshold: 1,
        });
        c.on_quiet();
        c.on_quiet();
        assert!(c.interval_ms() > 10.0);
        c.on_activity();
        assert_eq!(c.interval_ms(), 10.0);
        c.on_quiet();
        assert_eq!(c.interval_ms(), 20.0, "threshold restarts after reset");
    }

    #[test]
    fn fixed_cadence_never_moves() {
        let mut c = PollCadence::new(CadenceConfig::fixed(25.0));
        for _ in 0..50 {
            c.on_quiet();
        }
        assert_eq!(c.interval_ms(), 25.0);
        c.on_activity();
        assert_eq!(c.interval_ms(), 25.0);
    }

    #[test]
    fn suspicion_halves_below_the_floor_even_when_fixed() {
        let mut c = PollCadence::new(CadenceConfig::fixed(40.0));
        c.on_suspicion();
        assert_eq!(c.interval_ms(), 20.0, "fixed cadence still tightens");
        c.on_suspicion();
        assert_eq!(c.interval_ms(), 10.0, "clamped at min_ms / 4");
        c.on_suspicion();
        assert_eq!(c.interval_ms(), 10.0);
    }

    #[test]
    fn activity_never_loosens_a_suspicion_tightened_timer() {
        let mut c = PollCadence::new(CadenceConfig::fixed(40.0));
        c.on_suspicion();
        c.on_activity();
        assert_eq!(c.interval_ms(), 20.0, "activity keeps the tight interval");
    }

    #[test]
    fn quiet_recovers_a_suspicion_tightened_timer_to_the_floor() {
        let mut c = PollCadence::new(CadenceConfig {
            min_ms: 10.0,
            max_ms: 80.0,
            backoff: 2.0,
            quiet_threshold: 1,
        });
        c.on_suspicion();
        c.on_suspicion();
        assert_eq!(c.interval_ms(), 2.5);
        c.on_quiet();
        assert_eq!(c.interval_ms(), 5.0, "doubles back toward min_ms");
        c.on_quiet();
        assert_eq!(c.interval_ms(), 10.0, "recovery stops at the floor");
        c.on_quiet();
        assert_eq!(c.interval_ms(), 20.0, "then normal backoff resumes");
    }
}
