//! SDN data-plane simulator for the FOCES reproduction.
//!
//! The paper runs its experiments on Mininet with Open vSwitch: iperf flows
//! between every host pair, rule counters collected every few seconds, and
//! forwarding anomalies created by manually rewriting flow-table entries on
//! "compromised" switches. This crate is the Rust stand-in for that whole
//! stack, built around a *fluid* traffic model:
//!
//! * every flow is a packet **volume** (a packet count for one collection
//!   interval) rather than a stream of discrete packets;
//! * volumes propagate hop-by-hop through per-switch [`FlowTable`]s, with
//!   each matched rule's counter accumulating the volume that matched it;
//! * per-link packet loss is sampled binomially (per-packet Bernoulli), so
//!   counters pick up exactly the loss-induced noise FOCES must tolerate;
//! * anomalies (path deviation, early drop, …) are injected by editing the
//!   *forwarding action* of a rule while leaving its match and counter
//!   behaviour untouched — precisely the paper's adversary, who reports
//!   unmodified flow tables and keeps its own counters consistent.
//!
//! Why this preserves the paper's behaviour: FOCES never inspects packets;
//! its only input is the vector of rule counters. Binomially-thinned fluid
//! volumes produce the same counter statistics as lossy discrete forwarding.
//!
//! # Example
//!
//! ```
//! use foces_dataplane::{Action, DataPlane, LossModel, Rule};
//! use foces_headerspace::Wildcard;
//! use foces_net::{Node, Port, Topology};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut topo = Topology::new();
//! let s0 = topo.add_switch("s0");
//! let h0 = topo.add_host();
//! let h1 = topo.add_host();
//! topo.connect(Node::Host(h0), Node::Switch(s0))?;
//! topo.connect(Node::Host(h1), Node::Switch(s0))?;
//! let mut dp = DataPlane::new(topo);
//! // One rule: anything -> port 1 (towards h1).
//! dp.install(s0, Rule::new(Wildcard::any(32), 0, Action::Forward(Port(1))));
//! let report = dp.inject(h0, 0, 1000.0, &mut LossModel::none());
//! assert_eq!(report.delivered_to, Some(h1));
//! assert_eq!(dp.counter(s0, 0), 1000.0);
//! # Ok(())
//! # }
//! ```

mod anomaly;
mod loss;
mod plane;
mod rule;
mod table;

pub use anomaly::{inject_counter_fake, inject_random_anomaly, AnomalyKind, AppliedAnomaly};
pub use loss::LossModel;
pub use plane::{CollectionNoise, DataPlane, DataPlaneError, DeliveryReport, RuleRef, MAX_HOPS};
pub use rule::{Action, Rule, HEADER_WIDTH};
pub use table::FlowTable;

/// Packs a `(src_host, dst_host)` pair into the 32-bit concrete header used
/// throughout the reproduction: the high 16 bits carry the source host id,
/// the low 16 bits the destination host id.
///
/// # Panics
///
/// Panics if either id is ≥ 2¹⁶ (no paper topology comes close).
pub fn pair_header(src: foces_net::HostId, dst: foces_net::HostId) -> u64 {
    assert!(src.0 < 1 << 16 && dst.0 < 1 << 16, "host id out of range");
    ((src.0 as u64) << 16) | dst.0 as u64
}

/// A match pattern covering every packet destined to `dst` (any source):
/// the per-destination rules the control plane installs.
pub fn dst_match(dst: foces_net::HostId) -> foces_headerspace::Wildcard {
    let mut w = foces_headerspace::Wildcard::any(HEADER_WIDTH);
    for pos in 0..16 {
        let bit = (dst.0 >> (15 - pos)) & 1 == 1;
        w.set_bit(16 + pos, Some(bit));
    }
    w
}

/// A match pattern for exactly the `(src, dst)` pair: the per-flow-pair
/// rule granularity ablation.
pub fn pair_match(src: foces_net::HostId, dst: foces_net::HostId) -> foces_headerspace::Wildcard {
    foces_headerspace::Wildcard::exact(HEADER_WIDTH, pair_header(src, dst))
}
