use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-link packet-loss model applied every time a volume crosses a link.
///
/// The paper's experiments impose uniform loss rates from 0 % to 25 % on
/// Mininet links; lost packets are what perturb the flow-conservation
/// equations and force FOCES's threshold-based detector. Three modes:
///
/// * [`LossModel::none`] — lossless, for exact golden tests;
/// * [`LossModel::deterministic`] — expected-value thinning (`v·(1-p)`),
///   useful when a test needs loss without sampling noise;
/// * [`LossModel::sampled`] — binomial thinning with a seeded RNG, the mode
///   experiments use: each of the `round(v)` packets independently survives
///   with probability `1-p`, exactly like discrete packets on a lossy link.
///
/// # Example
///
/// ```
/// use foces_dataplane::LossModel;
///
/// let mut lossless = LossModel::none();
/// assert_eq!(lossless.attenuate(100.0), 100.0);
///
/// let mut det = LossModel::deterministic(0.1);
/// assert_eq!(det.attenuate(100.0), 90.0);
///
/// let mut sampled = LossModel::sampled(0.1, 42);
/// let v = sampled.attenuate(10_000.0);
/// assert!(v > 8_500.0 && v < 9_500.0);
/// ```
#[derive(Debug, Clone)]
pub struct LossModel {
    rate: f64,
    rng: Option<StdRng>,
}

impl LossModel {
    /// A lossless link model.
    pub fn none() -> Self {
        LossModel {
            rate: 0.0,
            rng: None,
        }
    }

    /// Expected-value loss: every traversal multiplies the volume by
    /// `1 - rate` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn deterministic(rate: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate {rate} not in [0,1)");
        LossModel { rate, rng: None }
    }

    /// Binomial loss with a seeded RNG: volumes are treated as integer
    /// packet counts and thinned per-packet.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)`.
    pub fn sampled(rate: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&rate), "loss rate {rate} not in [0,1)");
        LossModel {
            rate,
            rng: Some(StdRng::seed_from_u64(seed)),
        }
    }

    /// The configured loss rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Applies one link traversal's loss to a volume, returning the
    /// surviving volume.
    pub fn attenuate(&mut self, volume: f64) -> f64 {
        if self.rate == 0.0 || volume <= 0.0 {
            return volume.max(0.0);
        }
        match &mut self.rng {
            None => volume * (1.0 - self.rate),
            Some(rng) => {
                let n = volume.round() as u64;
                let p_survive = 1.0 - self.rate;
                binomial_sample(rng, n, p_survive) as f64
            }
        }
    }
}

/// Samples Binomial(n, p).
///
/// Exact per-trial sampling below a size cutoff; above it, a
/// normal approximation (mean np, variance np(1-p)) clamped to `[0, n]` —
/// statistically indistinguishable at the volumes the experiments use
/// (thousands of packets per interval) and O(1) instead of O(n).
fn binomial_sample(rng: &mut StdRng, n: u64, p: f64) -> u64 {
    if p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    const EXACT_CUTOFF: u64 = 256;
    if n <= EXACT_CUTOFF {
        let mut successes = 0;
        for _ in 0..n {
            if rng.gen::<f64>() < p {
                successes += 1;
            }
        }
        successes
    } else {
        let mean = n as f64 * p;
        let sd = (n as f64 * p * (1.0 - p)).sqrt();
        let z = standard_normal(rng);
        (mean + sd * z).round().clamp(0.0, n as f64) as u64
    }
}

/// Box–Muller standard normal sample.
pub(crate) fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Adds zero-mean Gaussian noise of standard deviation `sigma` to each
/// counter — the paper's model for out-of-sync counter collection
/// (`Y'(i) ~ N(Y₀(i), σ²)`, §IV-A). Counters are clamped at zero.
pub(crate) fn gaussian_counter_noise(counters: &mut [f64], sigma: f64, rng: &mut StdRng) {
    if sigma <= 0.0 {
        return;
    }
    for c in counters {
        *c = (*c + sigma * standard_normal(rng)).max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let mut l = LossModel::none();
        assert_eq!(l.attenuate(123.0), 123.0);
        assert_eq!(l.rate(), 0.0);
    }

    #[test]
    fn deterministic_is_exact() {
        let mut l = LossModel::deterministic(0.25);
        assert_eq!(l.attenuate(400.0), 300.0);
        // Compounding over two hops.
        let first_hop = l.attenuate(400.0);
        assert_eq!(l.attenuate(first_hop), 225.0);
    }

    #[test]
    fn negative_volume_clamps_to_zero() {
        let mut l = LossModel::none();
        assert_eq!(l.attenuate(-5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "not in [0,1)")]
    fn rate_validation() {
        LossModel::deterministic(1.0);
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let mut a = LossModel::sampled(0.1, 7);
        let mut b = LossModel::sampled(0.1, 7);
        for _ in 0..10 {
            assert_eq!(a.attenuate(5000.0), b.attenuate(5000.0));
        }
    }

    #[test]
    fn sampled_mean_is_close_to_expectation() {
        let mut l = LossModel::sampled(0.2, 99);
        let n = 200;
        let total: f64 = (0..n).map(|_| l.attenuate(1000.0)).sum();
        let mean = total / n as f64;
        assert!((mean - 800.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn small_volumes_use_exact_path() {
        let mut l = LossModel::sampled(0.5, 3);
        for _ in 0..50 {
            let out = l.attenuate(10.0);
            assert!((0.0..=10.0).contains(&out));
            assert_eq!(out.fract(), 0.0); // integer packet counts
        }
    }

    #[test]
    fn binomial_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(binomial_sample(&mut rng, 100, 0.0), 0);
        assert_eq!(binomial_sample(&mut rng, 100, 1.0), 100);
    }

    #[test]
    fn gaussian_noise_zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut c = vec![5.0, 10.0];
        gaussian_counter_noise(&mut c, 0.0, &mut rng);
        assert_eq!(c, vec![5.0, 10.0]);
    }

    #[test]
    fn gaussian_noise_clamps_at_zero() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut c = vec![0.001; 100];
        gaussian_counter_noise(&mut c, 10.0, &mut rng);
        assert!(c.iter().all(|&v| v >= 0.0));
        assert!(c.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn normal_approximation_matches_moments() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000u64;
        let p = 0.9;
        let samples: Vec<f64> = (0..300)
            .map(|_| binomial_sample(&mut rng, n, p) as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let expected = n as f64 * p;
        assert!((mean - expected).abs() / expected < 0.001, "mean {mean}");
    }
}
