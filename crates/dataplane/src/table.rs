use crate::rule::Rule;
use std::fmt;

/// A single switch's flow table: an ordered set of [`Rule`]s with
/// OpenFlow-style lookup (highest priority wins, insertion order breaks
/// ties).
///
/// # Example
///
/// ```
/// use foces_dataplane::{Action, FlowTable, Rule};
/// use foces_headerspace::Wildcard;
/// use foces_net::Port;
///
/// # fn main() -> Result<(), foces_headerspace::HeaderSpaceError> {
/// let mut t = FlowTable::new();
/// t.push(Rule::new(Wildcard::any(32), 0, Action::Drop));              // default
/// t.push(Rule::new(Wildcard::prefix(32, 0, 1)?, 10, Action::Forward(Port(0))));
/// let (idx, rule) = t.lookup(0x0000_0001).unwrap();
/// assert_eq!(idx, 1); // the higher-priority prefix rule
/// assert_eq!(rule.action(), Action::Forward(Port(0)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowTable {
    rules: Vec<Rule>,
}

impl FlowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        FlowTable::default()
    }

    /// Appends a rule, returning its stable index. Indices never shift;
    /// rules are only ever modified in place (the adversary model) or the
    /// whole table replaced (controller reconfiguration).
    pub fn push(&mut self, rule: Rule) -> usize {
        self.rules.push(rule);
        self.rules.len() - 1
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the table has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The rule at `index`, if present.
    pub fn get(&self, index: usize) -> Option<&Rule> {
        self.rules.get(index)
    }

    /// Mutable access to the rule at `index`, if present.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut Rule> {
        self.rules.get_mut(index)
    }

    /// Iterates over `(index, rule)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Rule)> {
        self.rules.iter().enumerate()
    }

    /// OpenFlow lookup: among rules matching `header`, returns the one with
    /// the highest priority; ties break toward the earliest-installed rule.
    /// Returns `None` on a table miss (the simulator treats misses as drops,
    /// matching a default-drop OpenFlow pipeline).
    pub fn lookup(&self, header: u64) -> Option<(usize, &Rule)> {
        let mut best: Option<(usize, &Rule)> = None;
        for (i, r) in self.rules.iter().enumerate() {
            if !r.matches(header) {
                continue;
            }
            match best {
                Some((_, b)) if b.priority() >= r.priority() => {}
                _ => best = Some((i, r)),
            }
        }
        best
    }
}

impl fmt::Display for FlowTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "flow table ({} rules):", self.rules.len())?;
        for (i, r) in self.iter() {
            writeln!(f, "  {i}: {r}")?;
        }
        Ok(())
    }
}

impl FromIterator<Rule> for FlowTable {
    fn from_iter<T: IntoIterator<Item = Rule>>(iter: T) -> Self {
        FlowTable {
            rules: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rule> for FlowTable {
    fn extend<T: IntoIterator<Item = Rule>>(&mut self, iter: T) {
        self.rules.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::{Action, HEADER_WIDTH};
    use foces_headerspace::Wildcard;
    use foces_net::Port;

    fn fwd(p: usize) -> Action {
        Action::Forward(Port(p))
    }

    #[test]
    fn lookup_prefers_priority() {
        let mut t = FlowTable::new();
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 1, fwd(0)));
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 9, fwd(1)));
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 5, fwd(2)));
        let (idx, r) = t.lookup(42).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(r.action(), fwd(1));
    }

    #[test]
    fn lookup_ties_break_by_insertion_order() {
        let mut t = FlowTable::new();
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 5, fwd(0)));
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 5, fwd(1)));
        assert_eq!(t.lookup(0).unwrap().0, 0);
    }

    #[test]
    fn lookup_respects_match_fields() {
        let mut t = FlowTable::new();
        let one = Wildcard::exact(HEADER_WIDTH, 1);
        let two = Wildcard::exact(HEADER_WIDTH, 2);
        t.push(Rule::new(one, 5, fwd(0)));
        t.push(Rule::new(two, 5, fwd(1)));
        assert_eq!(t.lookup(1).unwrap().0, 0);
        assert_eq!(t.lookup(2).unwrap().0, 1);
        assert!(t.lookup(3).is_none());
    }

    #[test]
    fn empty_table_misses() {
        assert!(FlowTable::new().lookup(0).is_none());
        assert!(FlowTable::new().is_empty());
    }

    #[test]
    fn indices_are_stable() {
        let mut t = FlowTable::new();
        let i0 = t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 0, fwd(0)));
        let i1 = t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 0, fwd(1)));
        assert_eq!((i0, i1), (0, 1));
        t.get_mut(0).unwrap().set_action(Action::Drop);
        assert_eq!(t.get(0).unwrap().action(), Action::Drop);
        assert_eq!(t.get(1).unwrap().action(), fwd(1));
        assert!(t.get(2).is_none());
    }

    #[test]
    fn collect_and_extend() {
        let rules = vec![
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, fwd(0)),
            Rule::new(Wildcard::any(HEADER_WIDTH), 1, fwd(1)),
        ];
        let mut t: FlowTable = rules.clone().into_iter().collect();
        assert_eq!(t.len(), 2);
        t.extend(rules);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn display_lists_rules() {
        let mut t = FlowTable::new();
        t.push(Rule::new(Wildcard::any(HEADER_WIDTH), 3, Action::Drop));
        let s = t.to_string();
        assert!(s.contains("1 rules"));
        assert!(s.contains("drop"));
    }
}
