use crate::loss::gaussian_counter_noise;
use crate::{Action, FlowTable, LossModel, Rule};
use foces_net::{HostId, Node, SwitchId, Topology};
use rand::rngs::StdRng;
use std::error::Error;
use std::fmt;

/// Globally identifies a rule: the switch that holds it plus its stable
/// index within that switch's [`FlowTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleRef {
    /// The switch holding the rule.
    pub switch: SwitchId,
    /// Index within the switch's flow table.
    pub index: usize,
}

impl fmt::Display for RuleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}#r{}", self.switch.0, self.index)
    }
}

/// Errors from data-plane operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataPlaneError {
    /// The referenced rule does not exist.
    UnknownRule(RuleRef),
    /// The referenced switch does not exist.
    UnknownSwitch(SwitchId),
}

impl fmt::Display for DataPlaneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataPlaneError::UnknownRule(r) => write!(f, "unknown rule {r}"),
            DataPlaneError::UnknownSwitch(s) => write!(f, "unknown switch s{}", s.0),
        }
    }
}

impl Error for DataPlaneError {}

/// What happened to an injected volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeliveryReport {
    /// The host the (surviving) volume reached, or `None` if it was dropped.
    pub delivered_to: Option<HostId>,
    /// Volume that arrived at the destination (after loss), 0 if dropped.
    pub delivered_volume: f64,
    /// Switch hops traversed.
    pub hops: usize,
    /// `true` if forwarding was cut off by the TTL (a forwarding loop,
    /// possible after adversarial rule modification).
    pub ttl_exceeded: bool,
}

/// Maximum switch hops before the simulator declares a forwarding loop —
/// mirrors an IP TTL and bounds adversarially-induced loops.
pub const MAX_HOPS: usize = 64;

/// Parameters of the counter-collection noise model (the paper's
/// "out-of-sync counter values", §IV-A), used by
/// [`DataPlane::collect_counters_realistic`].
///
/// Skew factors are **bounded uniform** (`1 + U(-w, +w)`), not Gaussian:
/// the statistics collector polls switches sequentially across a bounded
/// window, so polling offsets are evenly spread, never unbounded. This is
/// load-bearing for the paper's threshold: the anomaly index is a
/// max/median ratio, and the expected *maximum* of thousands of
/// folded-Gaussian residuals is ≈ 3.4σ — pushing a healthy index past the
/// 3σ-derived threshold of 4.5. Bounded noise keeps the healthy ratio
/// near 2–3, which is what the paper's experiments (and ours) observe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectionNoise {
    /// Half-width of the per-switch polling-skew factor (fraction of one
    /// collection interval; all counters of one switch share one draw).
    pub switch_skew: f64,
    /// Half-width of the independent per-rule read jitter factor.
    pub rule_jitter: f64,
}

impl Default for CollectionNoise {
    /// ±2 % switch skew (±100 ms polling spread on a 5 s interval) and
    /// ±0.5 % per-rule jitter.
    fn default() -> Self {
        CollectionNoise {
            switch_skew: 0.02,
            rule_jitter: 0.005,
        }
    }
}

/// The simulated SDN data plane: one [`FlowTable`] and one counter array per
/// switch of an underlying [`Topology`].
///
/// See the crate-level docs for the fluid traffic model and an example.
#[derive(Debug, Clone)]
pub struct DataPlane {
    topo: Topology,
    tables: Vec<FlowTable>,
    counters: Vec<Vec<f64>>,
    /// Per-switch, per-port received volume (what OpenFlow port stats would
    /// report as rx_packets) — consumed by the FlowMon-style baseline.
    port_rx: Vec<Vec<f64>>,
    /// Per-switch, per-port transmitted volume (tx_packets). Transmission
    /// is counted before link loss; reception after, exactly like real
    /// interface counters around a lossy link.
    port_tx: Vec<Vec<f64>>,
    /// Per-switch rule-table **generation**: the controller's version stamp
    /// for the switch's configuration, advanced only through legitimate
    /// control-plane updates ([`DataPlane::set_table_generation`]). The
    /// adversary's [`DataPlane::modify_rule_action`] deliberately leaves it
    /// untouched: a compromised switch keeps reporting the stamp of the last
    /// update it acknowledged, exactly like a real switch whose firmware
    /// was tampered with below the OpenFlow layer.
    generations: Vec<u64>,
    /// Reported-counter overrides installed by compromised switches
    /// ([`crate::AnomalyKind::CounterFake`]): the *true* counters keep
    /// accumulating underneath as packets flow, but every collection path
    /// reports the forged value instead. Keyed `(switch, index)`; a BTreeMap
    /// so iteration (and therefore any derived randomness) is deterministic.
    counter_fakes: std::collections::BTreeMap<(usize, usize), f64>,
}

impl DataPlane {
    /// Wraps a topology with empty flow tables.
    pub fn new(topo: Topology) -> Self {
        let n = topo.switch_count();
        let ports: Vec<Vec<f64>> = (0..n)
            .map(|s| vec![0.0; topo.adj(Node::Switch(SwitchId(s))).len()])
            .collect();
        DataPlane {
            topo,
            tables: vec![FlowTable::new(); n],
            counters: vec![Vec::new(); n],
            port_rx: ports.clone(),
            port_tx: ports,
            generations: vec![0; n],
            counter_fakes: std::collections::BTreeMap::new(),
        }
    }

    /// The rule-table generation a switch currently acknowledges — what an
    /// honest agent stamps on its counter replies.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn table_generation(&self, switch: SwitchId) -> u64 {
        self.generations[switch.0]
    }

    /// Stamps a switch's rule-table generation. Called by the control plane
    /// when it commits an update to this switch; never advanced by the
    /// adversary's covert [`DataPlane::modify_rule_action`].
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn set_table_generation(&mut self, switch: SwitchId, generation: u64) {
        self.generations[switch.0] = generation;
    }

    /// Per-port received volumes of a switch (index = port number).
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn port_rx(&self, switch: SwitchId) -> &[f64] {
        &self.port_rx[switch.0]
    }

    /// Per-port transmitted volumes of a switch (index = port number).
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn port_tx(&self, switch: SwitchId) -> &[f64] {
        &self.port_tx[switch.0]
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Installs a rule on a switch, returning its global reference.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn install(&mut self, switch: SwitchId, rule: Rule) -> RuleRef {
        let index = self.tables[switch.0].push(rule);
        self.counters[switch.0].push(0.0);
        RuleRef { switch, index }
    }

    /// The flow table of a switch.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn table(&self, switch: SwitchId) -> &FlowTable {
        &self.tables[switch.0]
    }

    /// Looks up a rule by reference.
    pub fn rule(&self, r: RuleRef) -> Option<&Rule> {
        self.tables.get(r.switch.0)?.get(r.index)
    }

    /// Replaces a rule's action, returning the previous one. This is the
    /// adversary's primitive: the match fields and counters stay intact, so
    /// a flow-table dump still shows a plausible configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataPlaneError::UnknownRule`] if the reference is stale.
    pub fn modify_rule_action(
        &mut self,
        r: RuleRef,
        action: Action,
    ) -> Result<Action, DataPlaneError> {
        let rule = self
            .tables
            .get_mut(r.switch.0)
            .and_then(|t| t.get_mut(r.index))
            .ok_or(DataPlaneError::UnknownRule(r))?;
        let old = rule.action();
        rule.set_action(action);
        Ok(old)
    }

    /// Iterates over every rule reference in canonical order
    /// (switch-major, then table index) — the row order of the FCM.
    pub fn rule_refs(&self) -> impl Iterator<Item = RuleRef> + '_ {
        self.tables.iter().enumerate().flat_map(|(s, t)| {
            (0..t.len()).map(move |index| RuleRef {
                switch: SwitchId(s),
                index,
            })
        })
    }

    /// Total number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Current counter value of a rule **as the switch reports it**: the
    /// forged value while a [`crate::AnomalyKind::CounterFake`] override is
    /// installed ([`DataPlane::fake_counter`]), the truth otherwise.
    ///
    /// # Panics
    ///
    /// Panics if the switch or index is out of range.
    pub fn counter(&self, switch: SwitchId, index: usize) -> f64 {
        let _ = self.counters[switch.0][index]; // preserve the bounds panic
        self.counter_fakes
            .get(&(switch.0, index))
            .copied()
            .unwrap_or(self.counters[switch.0][index])
    }

    /// The ground-truth counter of a rule, bypassing any forged override —
    /// what the packets actually did, which no adversary can rewrite.
    ///
    /// # Panics
    ///
    /// Panics if the switch or index is out of range.
    pub fn true_counter(&self, switch: SwitchId, index: usize) -> f64 {
        self.counters[switch.0][index]
    }

    /// Installs a reported-counter override: from now on every collection
    /// path reports `reported` for this rule while the true counter keeps
    /// accumulating underneath. Overrides survive
    /// [`DataPlane::reset_counters`] — the compromise persists across
    /// collection windows until reverted.
    ///
    /// # Errors
    ///
    /// Returns [`DataPlaneError::UnknownRule`] if the reference is stale.
    pub fn fake_counter(&mut self, r: RuleRef, reported: f64) -> Result<(), DataPlaneError> {
        if self.rule(r).is_none() {
            return Err(DataPlaneError::UnknownRule(r));
        }
        self.counter_fakes.insert((r.switch.0, r.index), reported);
        Ok(())
    }

    /// Removes a rule's reported-counter override (the switch confesses),
    /// returning the forged value if one was installed.
    pub fn clear_counter_fake(&mut self, r: RuleRef) -> Option<f64> {
        self.counter_fakes.remove(&(r.switch.0, r.index))
    }

    /// Number of rules currently reporting a forged counter.
    pub fn counter_fake_count(&self) -> usize {
        self.counter_fakes.len()
    }

    /// Zeroes every rule and port counter (start of a collection interval).
    pub fn reset_counters(&mut self) {
        for c in self
            .counters
            .iter_mut()
            .chain(self.port_rx.iter_mut())
            .chain(self.port_tx.iter_mut())
        {
            c.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Snapshots all counters in canonical [`DataPlane::rule_refs`] order,
    /// forged overrides included (collection reads what switches *report*).
    pub fn collect_counters(&self) -> Vec<f64> {
        self.rule_refs()
            .map(|r| self.counter(r.switch, r.index))
            .collect()
    }

    /// Snapshots counters with additive Gaussian noise of standard
    /// deviation `sigma` (the paper's out-of-sync collection model,
    /// `Y'(i) ~ N(Y₀(i), σ²)`), clamped at zero.
    pub fn collect_counters_noisy(&self, sigma: f64, rng: &mut StdRng) -> Vec<f64> {
        let mut c = self.collect_counters();
        gaussian_counter_noise(&mut c, sigma, rng);
        c
    }

    /// Snapshots counters with **polling skew**: each switch is read at a
    /// slightly different instant while traffic keeps flowing, so all of a
    /// switch's counters are scaled by a common bounded-uniform factor
    /// `1 + U(-w, +w)` (see [`CollectionNoise`] for why uniform, not
    /// Gaussian). This is the physically grounded version of the paper's
    /// out-of-sync counter noise: the per-switch correlation is what gives
    /// healthy anomaly indices their spread.
    pub fn collect_counters_skewed(&self, sync_halfwidth: f64, rng: &mut StdRng) -> Vec<f64> {
        self.collect_counters_realistic(
            &CollectionNoise {
                switch_skew: sync_halfwidth,
                rule_jitter: 0.0,
            },
            rng,
        )
    }

    /// Snapshots counters with the full collection-noise model: a shared
    /// per-switch polling-skew factor plus an independent per-rule jitter
    /// (rules within one table dump are read sequentially too, and traffic
    /// rates fluctuate within the interval). The per-rule component keeps
    /// the healthy residual *median* from collapsing to zero in low-loss
    /// regimes — without it the anomaly index's denominator is set by a
    /// handful of per-switch factors and the ratio grows heavy-tailed.
    pub fn collect_counters_realistic(
        &self,
        noise: &CollectionNoise,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        use rand::Rng;
        let mut out = Vec::with_capacity(self.rule_count());
        for (s, counters) in self.counters.iter().enumerate() {
            let switch_factor = if noise.switch_skew > 0.0 {
                (1.0 + rng.gen_range(-noise.switch_skew..=noise.switch_skew)).max(0.0)
            } else {
                1.0
            };
            for (i, &c) in counters.iter().enumerate() {
                let rule_factor = if noise.rule_jitter > 0.0 {
                    (1.0 + rng.gen_range(-noise.rule_jitter..=noise.rule_jitter)).max(0.0)
                } else {
                    1.0
                };
                // A forged counter is a *fabricated number*, not a noisy
                // read of a live register: it is reported verbatim.
                match self.counter_fakes.get(&(s, i)) {
                    Some(&fake) => out.push(fake),
                    None => out.push(c * switch_factor * rule_factor),
                }
            }
        }
        out
    }

    /// Injects a volume of `volume` packets with the given header at `src`,
    /// forwarding it through flow tables until delivery, drop, or TTL
    /// exhaustion. Matched rules accumulate the volume that reached them;
    /// `loss` is applied on every link traversal (including the first and
    /// last host links).
    ///
    /// # Panics
    ///
    /// Panics if `src` is not attached to a switch — experiment setups
    /// always attach every host.
    pub fn inject(
        &mut self,
        src: HostId,
        header: u64,
        volume: f64,
        loss: &mut LossModel,
    ) -> DeliveryReport {
        let (first_switch, ingress_port) = self
            .topo
            .host_attachment(src)
            .expect("inject: source host is not attached to any switch");
        let mut volume = loss.attenuate(volume); // host -> first switch link
        self.port_rx[first_switch.0][ingress_port.0] += volume;
        let mut current = first_switch;
        let mut hops = 0;
        loop {
            if hops >= MAX_HOPS {
                return DeliveryReport {
                    delivered_to: None,
                    delivered_volume: 0.0,
                    hops,
                    ttl_exceeded: true,
                };
            }
            hops += 1;
            let Some((idx, rule)) = self.tables[current.0].lookup(header) else {
                // Table miss: default drop.
                return DeliveryReport {
                    delivered_to: None,
                    delivered_volume: 0.0,
                    hops,
                    ttl_exceeded: false,
                };
            };
            self.counters[current.0][idx] += volume;
            match rule.action() {
                Action::Drop => {
                    return DeliveryReport {
                        delivered_to: None,
                        delivered_volume: 0.0,
                        hops,
                        ttl_exceeded: false,
                    }
                }
                Action::Forward(port) => {
                    let Some(adj) = self.topo.adj(Node::Switch(current)).get(port.0).copied()
                    else {
                        // Forwarding to a nonexistent port: black hole.
                        return DeliveryReport {
                            delivered_to: None,
                            delivered_volume: 0.0,
                            hops,
                            ttl_exceeded: false,
                        };
                    };
                    self.port_tx[current.0][port.0] += volume;
                    volume = loss.attenuate(volume);
                    match adj.neighbor {
                        Node::Host(h) => {
                            return DeliveryReport {
                                delivered_to: Some(h),
                                delivered_volume: volume,
                                hops,
                                ttl_exceeded: false,
                            }
                        }
                        Node::Switch(s) => {
                            self.port_rx[s.0][adj.neighbor_port.0] += volume;
                            current = s;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::HEADER_WIDTH;
    use foces_headerspace::Wildcard;
    use foces_net::Port;
    use rand::SeedableRng;

    /// h0 - s0 - s1 - h1, with a second path s0 - s2 - s1 for deviation
    /// tests.
    fn diamond() -> (DataPlane, Vec<SwitchId>, Vec<HostId>) {
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..3).map(|i| t.add_switch(format!("s{i}"))).collect();
        let h = vec![t.add_host(), t.add_host()];
        t.connect(Node::Switch(s[0]), Node::Switch(s[1])).unwrap(); // s0 p0 <-> s1 p0
        t.connect(Node::Switch(s[0]), Node::Switch(s[2])).unwrap(); // s0 p1 <-> s2 p0
        t.connect(Node::Switch(s[2]), Node::Switch(s[1])).unwrap(); // s2 p1 <-> s1 p1
        t.connect(Node::Host(h[0]), Node::Switch(s[0])).unwrap(); // s0 p2
        t.connect(Node::Host(h[1]), Node::Switch(s[1])).unwrap(); // s1 p2
        (DataPlane::new(t), s, h)
    }

    fn any_fwd(p: usize) -> Rule {
        Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(p)))
    }

    #[test]
    fn forwarding_increments_counters_and_delivers() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0)); // s0 -> s1
        dp.install(s[1], any_fwd(2)); // s1 -> h1
        let rep = dp.inject(h[0], 0, 500.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, Some(h[1]));
        assert_eq!(rep.delivered_volume, 500.0);
        assert_eq!(rep.hops, 2);
        assert!(!rep.ttl_exceeded);
        assert_eq!(dp.counter(s[0], 0), 500.0);
        assert_eq!(dp.counter(s[1], 0), 500.0);
    }

    #[test]
    fn table_miss_drops() {
        let (mut dp, _s, h) = diamond();
        let rep = dp.inject(h[0], 0, 100.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, None);
        assert_eq!(rep.delivered_volume, 0.0);
    }

    #[test]
    fn drop_action_stops_forwarding_but_counts() {
        let (mut dp, s, h) = diamond();
        let r = dp.install(
            s[0],
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Drop),
        );
        let rep = dp.inject(h[0], 0, 100.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, None);
        assert_eq!(dp.counter(r.switch, r.index), 100.0);
    }

    #[test]
    fn loss_compounds_per_link() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0));
        dp.install(s[1], any_fwd(2));
        // 3 links: h0->s0, s0->s1, s1->h1, each 10% deterministic loss.
        let rep = dp.inject(h[0], 0, 1000.0, &mut LossModel::deterministic(0.1));
        assert!((rep.delivered_volume - 729.0).abs() < 1e-9);
        assert!((dp.counter(s[0], 0) - 900.0).abs() < 1e-9);
        assert!((dp.counter(s[1], 0) - 810.0).abs() < 1e-9);
    }

    #[test]
    fn deviation_changes_counters_downstream() {
        let (mut dp, s, h) = diamond();
        let r0 = dp.install(s[0], any_fwd(0)); // intended: s0 -> s1
        dp.install(s[1], any_fwd(2)); // s1 -> h1
        dp.install(s[2], any_fwd(1)); // s2 -> s1 (benign alternate)
                                      // Compromise s0: deviate to s2.
        let old = dp.modify_rule_action(r0, Action::Forward(Port(1))).unwrap();
        assert_eq!(old, Action::Forward(Port(0)));
        let rep = dp.inject(h[0], 0, 100.0, &mut LossModel::none());
        // Still delivered (via detour) but s2's counter now shows traffic.
        assert_eq!(rep.delivered_to, Some(h[1]));
        assert_eq!(dp.counter(s[2], 0), 100.0);
        assert_eq!(dp.counter(s[0], 0), 100.0); // adversary's counter looks normal
    }

    #[test]
    fn forwarding_loop_hits_ttl() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0)); // s0 -> s1
        dp.install(s[1], any_fwd(0)); // s1 -> s0: loop
        let rep = dp.inject(h[0], 0, 10.0, &mut LossModel::none());
        assert!(rep.ttl_exceeded);
        assert_eq!(rep.hops, MAX_HOPS);
        // Counters inflated by the loop.
        assert!(dp.counter(s[0], 0) > 10.0 * 10.0);
    }

    #[test]
    fn forward_to_missing_port_black_holes() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(9));
        let rep = dp.inject(h[0], 0, 10.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, None);
        assert!(!rep.ttl_exceeded);
    }

    #[test]
    fn collect_counters_canonical_order() {
        let (mut dp, s, h) = diamond();
        let r0 = dp.install(s[0], any_fwd(0));
        let r1 = dp.install(s[1], any_fwd(2));
        let r2 = dp.install(s[2], any_fwd(1));
        assert_eq!(
            dp.rule_refs().collect::<Vec<_>>(),
            vec![r0, r1, r2],
            "rule refs must be switch-major ordered"
        );
        dp.inject(h[0], 0, 100.0, &mut LossModel::none());
        assert_eq!(dp.collect_counters(), vec![100.0, 100.0, 0.0]);
        dp.reset_counters();
        assert_eq!(dp.collect_counters(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn noisy_collection_perturbs_counters() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0));
        dp.install(s[1], any_fwd(2));
        dp.inject(h[0], 0, 10_000.0, &mut LossModel::none());
        let mut rng = StdRng::seed_from_u64(11);
        let noisy = dp.collect_counters_noisy(50.0, &mut rng);
        let clean = dp.collect_counters();
        assert_eq!(noisy.len(), clean.len());
        assert!(noisy.iter().zip(&clean).any(|(a, b)| a != b));
        // Noise is bounded in probability: 50σ would be absurd.
        for (n, c) in noisy.iter().zip(&clean) {
            assert!((n - c).abs() < 50.0 * 6.0);
        }
    }

    #[test]
    fn modify_rule_validates_reference() {
        let (mut dp, _, _) = diamond();
        let bogus = RuleRef {
            switch: SwitchId(0),
            index: 5,
        };
        assert!(matches!(
            dp.modify_rule_action(bogus, Action::Drop),
            Err(DataPlaneError::UnknownRule(_))
        ));
    }

    #[test]
    fn rule_count_and_lookup() {
        let (mut dp, s, _) = diamond();
        assert_eq!(dp.rule_count(), 0);
        let r = dp.install(s[1], any_fwd(2));
        assert_eq!(dp.rule_count(), 1);
        assert!(dp.rule(r).is_some());
        assert!(dp
            .rule(RuleRef {
                switch: SwitchId(9),
                index: 0
            })
            .is_none());
    }

    #[test]
    fn skewed_collection_scales_per_switch() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0));
        dp.install(
            s[0],
            Rule::new(
                Wildcard::exact(HEADER_WIDTH, 1),
                5,
                Action::Forward(Port(0)),
            ),
        );
        dp.install(s[1], any_fwd(2));
        dp.inject(h[0], 0, 1000.0, &mut LossModel::none());
        dp.inject(h[0], 1, 500.0, &mut LossModel::none());
        let mut rng = StdRng::seed_from_u64(3);
        let skewed = dp.collect_counters_skewed(0.05, &mut rng);
        let clean = dp.collect_counters();
        // Both s0 rules share one skew factor.
        let f0 = skewed[0] / clean[0];
        let f1 = skewed[1] / clean[1];
        assert!((f0 - f1).abs() < 1e-12, "same-switch counters share skew");
        assert!(f0 > 0.8 && f0 < 1.2);
        // Zero sigma is the identity.
        assert_eq!(dp.collect_counters_skewed(0.0, &mut rng), clean);
    }

    #[test]
    fn port_counters_track_traffic() {
        let (mut dp, s, h) = diamond();
        dp.install(s[0], any_fwd(0)); // s0 -> s1 via port 0
        dp.install(s[1], any_fwd(2)); // s1 -> h1 via port 2
        dp.inject(h[0], 0, 1000.0, &mut LossModel::deterministic(0.1));
        // h0 link loss: 900 arrives at s0 port 2 (its host port).
        assert!((dp.port_rx(s[0])[2] - 900.0).abs() < 1e-9);
        // s0 transmits 900 on port 0; s1 receives 810 on its port 0.
        assert!((dp.port_tx(s[0])[0] - 900.0).abs() < 1e-9);
        assert!((dp.port_rx(s[1])[0] - 810.0).abs() < 1e-9);
        // s1 transmits 810 toward the host.
        assert!((dp.port_tx(s[1])[2] - 810.0).abs() < 1e-9);
        // Per-switch conservation holds in the healthy network.
        let rx: f64 = dp.port_rx(s[1]).iter().sum();
        let tx: f64 = dp.port_tx(s[1]).iter().sum();
        assert!((rx - tx).abs() < 1e-9);
        dp.reset_counters();
        assert!(dp.port_rx(s[0]).iter().all(|&v| v == 0.0));
        assert!(dp.port_tx(s[1]).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn drop_breaks_port_conservation() {
        let (mut dp, s, h) = diamond();
        dp.install(
            s[0],
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Drop),
        );
        dp.inject(h[0], 0, 100.0, &mut LossModel::none());
        let rx: f64 = dp.port_rx(s[0]).iter().sum();
        let tx: f64 = dp.port_tx(s[0]).iter().sum();
        assert_eq!(rx, 100.0);
        assert_eq!(tx, 0.0);
    }

    #[test]
    fn rule_ref_display() {
        let r = RuleRef {
            switch: SwitchId(3),
            index: 7,
        };
        assert_eq!(r.to_string(), "s3#r7");
    }
}
