use foces_headerspace::Wildcard;
use foces_net::Port;
use std::fmt;

/// Width in bits of the concrete packet header used by the reproduction:
/// 16 bits of source host id followed by 16 bits of destination host id.
///
/// Real OpenFlow matches span hundreds of bits; FOCES only needs enough
/// match structure to distinguish flows and express aggregation, which a
/// 32-bit (src, dst) header provides while keeping the header-space algebra
/// cheap.
pub const HEADER_WIDTH: usize = 32;

/// The action a rule applies to matching packets.
///
/// Deliberately *not* `#[non_exhaustive]`: consumers (the ATPG tracer, the
/// detector's oracle) must handle every action, and adding a variant should
/// be a breaking change that forces them to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out of the given local port.
    Forward(Port),
    /// Drop the packet.
    Drop,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Forward(Port(p)) => write!(f, "fwd:{p}"),
            Action::Drop => write!(f, "drop"),
        }
    }
}

/// A flow-table entry: match fields, priority, and an action, plus the
/// counter semantics the simulator maintains externally.
///
/// # Example
///
/// ```
/// use foces_dataplane::{Action, Rule};
/// use foces_headerspace::Wildcard;
/// use foces_net::Port;
///
/// let r = Rule::new(Wildcard::any(32), 10, Action::Forward(Port(2)));
/// assert_eq!(r.priority(), 10);
/// assert!(r.matches(0xdead_beef));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Rule {
    match_fields: Wildcard,
    priority: u16,
    action: Action,
}

impl Rule {
    /// Creates a rule.
    ///
    /// # Panics
    ///
    /// Panics if the match width is not [`HEADER_WIDTH`] — all rules in one
    /// network share the header layout.
    pub fn new(match_fields: Wildcard, priority: u16, action: Action) -> Self {
        assert_eq!(
            match_fields.width(),
            HEADER_WIDTH,
            "rule match width {} != header width {HEADER_WIDTH}",
            match_fields.width()
        );
        Rule {
            match_fields,
            priority,
            action,
        }
    }

    /// The ternary match pattern.
    pub fn match_fields(&self) -> &Wildcard {
        &self.match_fields
    }

    /// Match priority; higher wins, ties broken by insertion order.
    pub fn priority(&self) -> u16 {
        self.priority
    }

    /// The rule's action.
    pub fn action(&self) -> Action {
        self.action
    }

    /// Replaces the action (the adversary's lever: §II-B avenue (1),
    /// "modify output ports of forwarding rules").
    pub fn set_action(&mut self, action: Action) {
        self.action = action;
    }

    /// Whether a concrete header matches this rule.
    pub fn matches(&self, header: u64) -> bool {
        self.match_fields.matches_concrete(header)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[p{}] {} -> {}",
            self.priority, self.match_fields, self.action
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_matches_via_wildcard() {
        let w = Wildcard::prefix(HEADER_WIDTH, 0x8000_0000, 1).unwrap();
        let r = Rule::new(w, 5, Action::Drop);
        assert!(r.matches(0xF000_0000));
        assert!(!r.matches(0x7000_0000));
        assert_eq!(r.action(), Action::Drop);
    }

    #[test]
    #[should_panic(expected = "match width")]
    fn wrong_width_rejected() {
        Rule::new(Wildcard::any(16), 0, Action::Drop);
    }

    #[test]
    fn set_action_changes_behaviour() {
        let mut r = Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(1)));
        r.set_action(Action::Forward(Port(3)));
        assert_eq!(r.action(), Action::Forward(Port(3)));
    }

    #[test]
    fn display_is_informative() {
        let r = Rule::new(Wildcard::any(HEADER_WIDTH), 7, Action::Forward(Port(2)));
        let s = r.to_string();
        assert!(s.contains("p7"));
        assert!(s.contains("fwd:2"));
        assert_eq!(Action::Drop.to_string(), "drop");
    }
}
