use crate::{Action, DataPlane, DataPlaneError, RuleRef};
use foces_net::{Node, SwitchId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;

/// The class of forwarding anomaly injected (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AnomalyKind {
    /// The rule's output port is rewritten to a different neighbor switch:
    /// packets leave the intended path (covers general path deviation,
    /// switch bypass, and detours — what happens downstream depends on the
    /// benign switches' own tables).
    PathDeviation,
    /// The rule is turned into a drop: packets die before the destination.
    EarlyDrop,
    /// The switch *lies about* the rule's counter (§II-B: "the adversary …
    /// can modify the counters of rules at compromised switches"):
    /// forwarding is untouched, but every collection reads a forged value
    /// instead of the truth ([`DataPlane::fake_counter`]). This is the
    /// Byzantine anomaly — nothing is wrong with the packets, only with the
    /// report — and it is what the detection side's liar localization
    /// exists to catch.
    CounterFake,
}

impl fmt::Display for AnomalyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnomalyKind::PathDeviation => write!(f, "path-deviation"),
            AnomalyKind::EarlyDrop => write!(f, "early-drop"),
            AnomalyKind::CounterFake => write!(f, "counter-fake"),
        }
    }
}

/// Record of an injected anomaly, sufficient to revert it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppliedAnomaly {
    /// The modified rule.
    pub rule: RuleRef,
    /// What kind of modification was applied.
    pub kind: AnomalyKind,
    /// The rule's action before modification.
    pub original_action: Action,
    /// The rule's action after modification.
    pub modified_action: Action,
}

impl AppliedAnomaly {
    /// Restores the rule to its pre-anomaly action ("repairing" it, as the
    /// paper's functional test does at t = 120 s).
    ///
    /// # Errors
    ///
    /// Returns [`DataPlaneError::UnknownRule`] if the rule vanished (cannot
    /// happen in practice: rules are never removed).
    pub fn revert(&self, dp: &mut DataPlane) -> Result<(), DataPlaneError> {
        match self.kind {
            // A counter fake never touched the rule's action: reverting means
            // the switch "confesses" — the override is dropped and collections
            // read the live register again.
            AnomalyKind::CounterFake => {
                dp.clear_counter_fake(self.rule);
            }
            _ => {
                dp.modify_rule_action(self.rule, self.original_action)?;
            }
        }
        Ok(())
    }
}

/// Installs a targeted counter fake on `rule`: forwarding is untouched, but
/// every subsequent collection reads `reported` instead of the live register
/// until the anomaly is [reverted](AppliedAnomaly::revert).
///
/// The returned record has `original_action == modified_action` — the lie is
/// in the report, not the table.
///
/// # Errors
///
/// Returns [`DataPlaneError::UnknownRule`] if `rule` does not exist.
pub fn inject_counter_fake(
    dp: &mut DataPlane,
    rule: RuleRef,
    reported: f64,
) -> Result<AppliedAnomaly, DataPlaneError> {
    let action = dp
        .rule(rule)
        .ok_or(DataPlaneError::UnknownRule(rule))?
        .action();
    dp.fake_counter(rule, reported)?;
    Ok(AppliedAnomaly {
        rule,
        kind: AnomalyKind::CounterFake,
        original_action: action,
        modified_action: action,
    })
}

/// Randomly compromises one rule in the network, mimicking the paper's
/// experiment setup: "we randomly choose switches from the network, and
/// randomly modify flow rules in the switches' flow tables".
///
/// Eligible rules are `Forward` rules whose output leads to another
/// *switch*: last-hop rules (forwarding straight to a host) are excluded,
/// matching the paper's threat model — "we implicitly assume the last-hop
/// switch is not compromised, as it can drop packets pretending that
/// packets are received by the end hosts" (§II-B); a last-hop modification
/// leaves every rule counter untouched and is undetectable by *any*
/// statistics method. For [`AnomalyKind::PathDeviation`] the new output
/// port is chosen uniformly among the switch's *other* switch-facing ports;
/// a switch with no alternative port falls back to
/// [`AnomalyKind::EarlyDrop`].
///
/// Returns `None` if the data plane has no eligible rule at all.
pub fn inject_random_anomaly(
    dp: &mut DataPlane,
    kind: AnomalyKind,
    rng: &mut StdRng,
    exclude: &[SwitchId],
) -> Option<AppliedAnomaly> {
    let eligible: Vec<RuleRef> = dp
        .rule_refs()
        .filter(|r| !exclude.contains(&r.switch))
        .filter(|r| {
            // Forward rules whose egress is another switch.
            let Some(rule) = dp.rule(*r) else {
                return false;
            };
            let Action::Forward(port) = rule.action() else {
                return false;
            };
            matches!(
                dp.topology()
                    .adj(Node::Switch(r.switch))
                    .get(port.0)
                    .map(|a| a.neighbor),
                Some(Node::Switch(_))
            )
        })
        .collect();
    let &target = eligible.choose(rng)?;
    let original_action = dp.rule(target).expect("chosen from live refs").action();
    if kind == AnomalyKind::CounterFake {
        // Forge an obviously-wrong value: inflate the live register and add a
        // constant floor so the lie is visible even on an idle rule.
        let truth = dp.true_counter(target.switch, target.index);
        let fake = truth * rng.gen_range(1.5..3.0) + 1000.0;
        dp.fake_counter(target, fake)
            .expect("target taken from live rule refs");
        return Some(AppliedAnomaly {
            rule: target,
            kind: AnomalyKind::CounterFake,
            original_action,
            modified_action: original_action,
        });
    }
    let modified_action = match kind {
        AnomalyKind::CounterFake => unreachable!("handled by the early return above"),
        AnomalyKind::EarlyDrop => Action::Drop,
        AnomalyKind::PathDeviation => {
            let Action::Forward(current) = original_action else {
                unreachable!("filtered to Forward rules");
            };
            // Candidate ports: other switch-facing ports on this switch.
            let candidates: Vec<foces_net::Port> = dp
                .topology()
                .adj(Node::Switch(target.switch))
                .iter()
                .filter(|a| a.local_port != current)
                .filter(|a| matches!(a.neighbor, Node::Switch(_)))
                .map(|a| a.local_port)
                .collect();
            match candidates.as_slice() {
                [] => Action::Drop, // no alternative: degrade to early drop
                ports => Action::Forward(ports[rng.gen_range(0..ports.len())]),
            }
        }
    };
    dp.modify_rule_action(target, modified_action)
        .expect("target taken from live rule refs");
    Some(AppliedAnomaly {
        rule: target,
        kind: match modified_action {
            Action::Drop => AnomalyKind::EarlyDrop,
            Action::Forward(_) => AnomalyKind::PathDeviation,
        },
        original_action,
        modified_action,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::HEADER_WIDTH;
    use crate::{LossModel, Rule};
    use foces_headerspace::Wildcard;
    use foces_net::{Port, Topology};
    use rand::SeedableRng;

    fn plane() -> (DataPlane, Vec<SwitchId>, Vec<foces_net::HostId>) {
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..3).map(|i| t.add_switch(format!("s{i}"))).collect();
        let h = vec![t.add_host(), t.add_host()];
        t.connect(Node::Switch(s[0]), Node::Switch(s[1])).unwrap();
        t.connect(Node::Switch(s[0]), Node::Switch(s[2])).unwrap();
        t.connect(Node::Switch(s[2]), Node::Switch(s[1])).unwrap();
        t.connect(Node::Host(h[0]), Node::Switch(s[0])).unwrap();
        t.connect(Node::Host(h[1]), Node::Switch(s[1])).unwrap();
        let mut dp = DataPlane::new(t);
        dp.install(
            s[0],
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(0))),
        );
        dp.install(
            s[1],
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(2))),
        );
        // s2 -> s1: a second switch-facing rule so exclusion tests always
        // have an eligible alternative (s1's rule is last-hop and therefore
        // never eligible).
        dp.install(
            s[2],
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(1))),
        );
        (dp, s, h)
    }

    #[test]
    fn deviation_changes_action_and_reverts() {
        let (mut dp, s, h) = plane();
        let mut rng = StdRng::seed_from_u64(1);
        let applied =
            inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[]).unwrap();
        assert_ne!(applied.original_action, applied.modified_action);
        let _ = (s, h);
        applied.revert(&mut dp).unwrap();
        assert_eq!(
            dp.rule(applied.rule).unwrap().action(),
            applied.original_action
        );
    }

    #[test]
    fn early_drop_produces_drop_action() {
        let (mut dp, s, h) = plane();
        let mut rng = StdRng::seed_from_u64(2);
        // Exclude s2 so the only eligible rule is s0's on-path rule: the
        // delivery assertion below must not depend on which eligible rule
        // the RNG happens to pick.
        let applied =
            inject_random_anomaly(&mut dp, AnomalyKind::EarlyDrop, &mut rng, &[s[2]]).unwrap();
        assert_eq!(applied.modified_action, Action::Drop);
        assert_eq!(applied.kind, AnomalyKind::EarlyDrop);
        // Traffic through the modified rule dies.
        let rep = dp.inject(h[0], 0, 10.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, None);
    }

    #[test]
    fn exclusion_list_is_respected() {
        let (mut dp, s, _) = plane();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let applied =
                inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[s[0]])
                    .unwrap();
            assert_ne!(applied.rule.switch, s[0]);
            applied.revert(&mut dp).unwrap();
        }
    }

    #[test]
    fn no_eligible_rules_returns_none() {
        let mut t = Topology::new();
        t.add_switch("s0");
        let mut dp = DataPlane::new(t);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(inject_random_anomaly(&mut dp, AnomalyKind::EarlyDrop, &mut rng, &[]).is_none());
    }

    #[test]
    fn deviation_never_targets_host_ports_or_same_port() {
        let (mut dp, s, _) = plane();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let applied =
                inject_random_anomaly(&mut dp, AnomalyKind::PathDeviation, &mut rng, &[]).unwrap();
            if let Action::Forward(p) = applied.modified_action {
                assert_ne!(Action::Forward(p), applied.original_action);
                let adj = dp.topology().adj(Node::Switch(applied.rule.switch));
                assert!(matches!(adj[p.0].neighbor, Node::Switch(_)));
            } else {
                // Degraded to drop only if no alternative switch port exists;
                // s1 has s0, s2 and a host => always has an alternative.
                assert_eq!(applied.rule.switch, s[1]);
                let alternatives = dp
                    .topology()
                    .adj(Node::Switch(applied.rule.switch))
                    .iter()
                    .filter(|a| matches!(a.neighbor, Node::Switch(_)))
                    .count();
                assert!(alternatives <= 1 || applied.modified_action != Action::Drop);
            }
            applied.revert(&mut dp).unwrap();
        }
    }

    #[test]
    fn kind_display() {
        assert_eq!(AnomalyKind::PathDeviation.to_string(), "path-deviation");
        assert_eq!(AnomalyKind::EarlyDrop.to_string(), "early-drop");
        assert_eq!(AnomalyKind::CounterFake.to_string(), "counter-fake");
    }

    #[test]
    fn counter_fake_lies_without_touching_forwarding() {
        let (mut dp, s, h) = plane();
        let mut rng = StdRng::seed_from_u64(6);
        let applied =
            inject_random_anomaly(&mut dp, AnomalyKind::CounterFake, &mut rng, &[]).unwrap();
        assert_eq!(applied.kind, AnomalyKind::CounterFake);
        // The table is untouched: the lie lives only in the report.
        assert_eq!(applied.original_action, applied.modified_action);
        assert_eq!(
            dp.rule(applied.rule).unwrap().action(),
            applied.original_action
        );
        // Forwarding still works end to end.
        let rep = dp.inject(h[0], 0, 10.0, &mut LossModel::none());
        assert_eq!(rep.delivered_to, Some(h[1]));
        let _ = s;
        // The reported counter diverges from the truth...
        let r = applied.rule;
        assert_ne!(
            dp.counter(r.switch, r.index),
            dp.true_counter(r.switch, r.index)
        );
        // ...until the switch confesses.
        applied.revert(&mut dp).unwrap();
        assert_eq!(
            dp.counter(r.switch, r.index),
            dp.true_counter(r.switch, r.index)
        );
        assert_eq!(dp.counter_fake_count(), 0);
    }

    #[test]
    fn targeted_counter_fake_reports_chosen_value() {
        let (mut dp, s, _) = plane();
        let r = RuleRef {
            switch: s[0],
            index: 0,
        };
        let applied = inject_counter_fake(&mut dp, r, 424242.0).unwrap();
        assert_eq!(dp.counter(r.switch, r.index), 424242.0);
        assert_eq!(dp.true_counter(r.switch, r.index), 0.0);
        applied.revert(&mut dp).unwrap();
        assert_eq!(dp.counter(r.switch, r.index), 0.0);
    }

    #[test]
    fn targeted_counter_fake_rejects_unknown_rule() {
        let (mut dp, s, _) = plane();
        let bogus = RuleRef {
            switch: s[0],
            index: 99,
        };
        assert!(inject_counter_fake(&mut dp, bogus, 1.0).is_err());
    }
}
