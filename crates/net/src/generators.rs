//! Generators for the four topologies of the paper's Table I, plus their
//! parameterized families.
//!
//! | Topology | switches | hosts |
//! |---|---|---|
//! | Stanford-like backbone | 26 | 26 |
//! | FatTree(4) | 20 | 16 |
//! | BCube(1,4) | 24 | 16 |
//! | DCell(1,4) | 25 | 20 |
//!
//! BCube and DCell hosts forward traffic themselves; to keep hosts pure
//! endpoints (as the data-plane simulator requires) each such host is
//! modeled as a [`SwitchRole::HostProxy`] switch with the real host attached,
//! which also reproduces the paper's switch counts exactly.

use crate::{Node, SwitchId, SwitchRole, Topology};

/// Builds a FatTree(k) topology (k even): `(k/2)²` core switches, `k` pods
/// of `k/2` aggregation and `k/2` edge switches, and `k/2` hosts per edge
/// switch — `k³/4` hosts total.
///
/// # Panics
///
/// Panics if `k` is zero or odd.
///
/// # Example
///
/// ```
/// let t = foces_net::generators::fattree(4);
/// assert_eq!(t.switch_count(), 20);
/// assert_eq!(t.host_count(), 16);
/// t.validate().unwrap();
/// ```
pub fn fattree(k: usize) -> Topology {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "fattree requires an even k >= 2"
    );
    let half = k / 2;
    let mut t = Topology::new();
    let cores: Vec<SwitchId> = (0..half * half)
        .map(|i| t.add_switch_with_role(format!("core{i}"), SwitchRole::Core))
        .collect();
    let mut aggs = Vec::with_capacity(k * half);
    let mut edges = Vec::with_capacity(k * half);
    for pod in 0..k {
        let pod_aggs: Vec<SwitchId> = (0..half)
            .map(|i| t.add_switch_with_role(format!("agg{pod}_{i}"), SwitchRole::Aggregation))
            .collect();
        let pod_edges: Vec<SwitchId> = (0..half)
            .map(|i| t.add_switch_with_role(format!("edge{pod}_{i}"), SwitchRole::Edge))
            .collect();
        // Full bipartite agg <-> edge within the pod.
        for &a in &pod_aggs {
            for &e in &pod_edges {
                t.connect(Node::Switch(a), Node::Switch(e))
                    .expect("fresh switches");
            }
        }
        // Agg j serves core group j.
        for (j, &a) in pod_aggs.iter().enumerate() {
            for c in 0..half {
                t.connect(Node::Switch(a), Node::Switch(cores[j * half + c]))
                    .expect("fresh switches");
            }
        }
        // Hosts on edge switches.
        for &e in &pod_edges {
            for _ in 0..half {
                let h = t.add_host();
                t.connect(Node::Host(h), Node::Switch(e))
                    .expect("fresh host");
            }
        }
        aggs.extend(pod_aggs);
        edges.extend(pod_edges);
    }
    t
}

/// Builds a BCube(level, n) topology: `n^(level+1)` hosts, each behind a
/// host-proxy switch, plus `(level+1) * n^level` cell switches.
///
/// BCube(1,4) (the paper's instance) therefore has `16` hosts and
/// `16 + 2*4 = 24` switches.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Example
///
/// ```
/// let t = foces_net::generators::bcube(1, 4);
/// assert_eq!(t.switch_count(), 24);
/// assert_eq!(t.host_count(), 16);
/// ```
pub fn bcube(level: usize, n: usize) -> Topology {
    assert!(n >= 2, "bcube requires n >= 2");
    let mut t = Topology::new();
    let host_total = n.pow(level as u32 + 1);
    // Proxy switch + host per BCube server.
    let proxies: Vec<SwitchId> = (0..host_total)
        .map(|i| {
            let p = t.add_switch_with_role(format!("srv{i}"), SwitchRole::HostProxy);
            let h = t.add_host();
            t.connect(Node::Host(h), Node::Switch(p)).expect("fresh");
            p
        })
        .collect();
    // Level-l switch s (s in 0..n^level) connects to the n servers whose
    // base-n digit string equals s's digits with a free digit inserted at
    // position l.
    for l in 0..=level {
        let stride_l = n.pow(l as u32);
        for s in 0..n.pow(level as u32) {
            let sw = t.add_switch_with_role(format!("bcube_l{l}_{s}"), SwitchRole::Cell);
            // Split s's digits around position l.
            let low = s % stride_l;
            let high = s / stride_l;
            for d in 0..n {
                let server = high * stride_l * n + d * stride_l + low;
                t.connect(Node::Switch(sw), Node::Switch(proxies[server]))
                    .expect("fresh");
            }
        }
    }
    t
}

/// Builds a DCell(level, n) topology for `level <= 1`: DCell(0,n) is `n`
/// servers on one mini-switch; DCell(1,n) is `n+1` DCell(0) cells with one
/// cross link per cell pair. Servers are modeled as host-proxy switches.
///
/// DCell(1,4) (the paper's instance) has `4*5 = 20` hosts and
/// `20 + 5 = 25` switches.
///
/// # Panics
///
/// Panics if `n < 2` or `level > 1` (higher levels are not needed by any
/// experiment and are left unimplemented).
///
/// # Example
///
/// ```
/// let t = foces_net::generators::dcell(1, 4);
/// assert_eq!(t.switch_count(), 25);
/// assert_eq!(t.host_count(), 20);
/// ```
pub fn dcell(level: usize, n: usize) -> Topology {
    assert!(n >= 2, "dcell requires n >= 2");
    assert!(level <= 1, "dcell levels above 1 are not implemented");
    let mut t = Topology::new();
    if level == 0 {
        let sw = t.add_switch_with_role("dcell0", SwitchRole::Cell);
        for i in 0..n {
            let p = t.add_switch_with_role(format!("srv{i}"), SwitchRole::HostProxy);
            let h = t.add_host();
            t.connect(Node::Host(h), Node::Switch(p)).expect("fresh");
            t.connect(Node::Switch(p), Node::Switch(sw)).expect("fresh");
        }
        return t;
    }
    // level == 1: n+1 cells of n servers.
    let cells = n + 1;
    let mut proxies = vec![Vec::with_capacity(n); cells];
    for (c, cell_proxies) in proxies.iter_mut().enumerate() {
        let sw = t.add_switch_with_role(format!("cell{c}"), SwitchRole::Cell);
        for i in 0..n {
            let p = t.add_switch_with_role(format!("srv{c}_{i}"), SwitchRole::HostProxy);
            let h = t.add_host();
            t.connect(Node::Host(h), Node::Switch(p)).expect("fresh");
            t.connect(Node::Switch(p), Node::Switch(sw)).expect("fresh");
            cell_proxies.push(p);
        }
    }
    // Cross links: server j-1 of cell i <-> server i of cell j, for i < j.
    for (i, cell_i) in proxies.iter().enumerate() {
        for (j, cell_j) in proxies.iter().enumerate().skip(i + 1) {
            t.connect(Node::Switch(cell_i[j - 1]), Node::Switch(cell_j[i]))
                .expect("fresh");
        }
    }
    t
}

/// Builds a Stanford-backbone-like WAN: 26 switches (2 core, 10 backbone,
/// 14 operational-zone routers), one host per switch, matching the paper's
/// Table I dimensions (26 switches, 26 hosts, 650 host pairs).
///
/// The real Stanford configuration (router configs from the Header Space
/// Analysis dataset) is not redistributable; this synthetic stand-in keeps
/// the size, diameter (≤ 5 switch hops), and two-tier structure, which is
/// all FOCES's math consumes.
///
/// # Example
///
/// ```
/// let t = foces_net::generators::stanford();
/// assert_eq!(t.switch_count(), 26);
/// assert_eq!(t.host_count(), 26);
/// assert!(t.all_hosts_connected());
/// ```
pub fn stanford() -> Topology {
    let mut t = Topology::new();
    let cores: Vec<SwitchId> = (0..2)
        .map(|i| t.add_switch_with_role(format!("bbr{i}"), SwitchRole::Core))
        .collect();
    t.connect(Node::Switch(cores[0]), Node::Switch(cores[1]))
        .expect("fresh");
    let backbones: Vec<SwitchId> = (0..10)
        .map(|i| t.add_switch_with_role(format!("bb{i}"), SwitchRole::Backbone))
        .collect();
    for &b in &backbones {
        for &c in &cores {
            t.connect(Node::Switch(b), Node::Switch(c)).expect("fresh");
        }
    }
    let zones: Vec<SwitchId> = (0..14)
        .map(|i| t.add_switch_with_role(format!("oz{i}"), SwitchRole::Edge))
        .collect();
    for (i, &z) in zones.iter().enumerate() {
        // Dual-homed to two adjacent backbone routers.
        t.connect(Node::Switch(z), Node::Switch(backbones[i % 10]))
            .expect("fresh");
        t.connect(Node::Switch(z), Node::Switch(backbones[(i + 1) % 10]))
            .expect("fresh");
    }
    for s in 0..t.switch_count() {
        let h = t.add_host();
        t.connect(Node::Host(h), Node::Switch(SwitchId(s)))
            .expect("fresh");
    }
    t
}

/// Builds a linear chain of `n` switches (`s0 - s1 - … - s(n-1)`) with one
/// host per switch — the minimal topology for path-anomaly scenarios.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Example
///
/// ```
/// let t = foces_net::generators::linear(4);
/// assert_eq!(t.switch_count(), 4);
/// assert_eq!(t.link_count(), 3 + 4); // chain + host links
/// ```
pub fn linear(n: usize) -> Topology {
    assert!(n >= 1, "linear requires at least one switch");
    let mut t = Topology::new();
    let switches: Vec<SwitchId> = (0..n)
        .map(|i| t.add_switch_with_role(format!("s{i}"), SwitchRole::Backbone))
        .collect();
    for w in switches.windows(2) {
        t.connect(Node::Switch(w[0]), Node::Switch(w[1]))
            .expect("fresh switches");
    }
    for &s in &switches {
        let h = t.add_host();
        t.connect(Node::Host(h), Node::Switch(s)).expect("fresh");
    }
    t
}

/// Builds a ring of `n` switches with one host each. Rings give every
/// destination exactly two disjoint paths — the smallest topology where a
/// deviation can reach the destination over an unintended route.
///
/// # Panics
///
/// Panics if `n < 3`.
///
/// # Example
///
/// ```
/// let t = foces_net::generators::ring(5);
/// assert_eq!(t.link_count(), 5 + 5);
/// assert!(t.all_hosts_connected());
/// ```
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "ring requires at least three switches");
    let mut t = linear(n);
    t.connect(Node::Switch(SwitchId(0)), Node::Switch(SwitchId(n - 1)))
        .expect("closing the ring");
    t
}

/// Builds a random connected topology: a deterministic spanning tree over
/// `n` switches plus `extra_links` random chords (duplicate draws are
/// skipped), one host per switch. Fully determined by `seed` — the
/// workhorse for property-based testing over topology space.
///
/// # Panics
///
/// Panics if `n` is zero.
///
/// # Example
///
/// ```
/// let a = foces_net::generators::random_connected(8, 3, 42);
/// let b = foces_net::generators::random_connected(8, 3, 42);
/// assert_eq!(a.link_count(), b.link_count()); // deterministic per seed
/// assert!(a.all_hosts_connected());
/// ```
pub fn random_connected(n: usize, extra_links: usize, seed: u64) -> Topology {
    assert!(n >= 1, "random_connected requires at least one switch");
    // Small deterministic xorshift so the crate stays dependency-free.
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut t = Topology::new();
    let switches: Vec<SwitchId> = (0..n)
        .map(|i| t.add_switch_with_role(format!("s{i}"), SwitchRole::Unspecified))
        .collect();
    for i in 1..n {
        let parent = (next() as usize) % i;
        t.connect(Node::Switch(switches[i]), Node::Switch(switches[parent]))
            .expect("fresh switches");
    }
    for _ in 0..extra_links {
        if n < 2 {
            break;
        }
        let a = (next() as usize) % n;
        let b = (next() as usize) % n;
        if a == b {
            continue;
        }
        if t.port_towards(Node::Switch(switches[a]), Node::Switch(switches[b]))
            .is_some()
        {
            continue;
        }
        t.connect(Node::Switch(switches[a]), Node::Switch(switches[b]))
            .expect("fresh link");
    }
    for &s in &switches {
        let h = t.add_host();
        t.connect(Node::Host(h), Node::Switch(s)).expect("fresh");
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HostId, Node};

    #[test]
    fn fattree4_matches_table1() {
        let t = fattree(4);
        assert_eq!(t.switch_count(), 20);
        assert_eq!(t.host_count(), 16);
        t.validate().unwrap();
        assert!(t.all_hosts_connected());
    }

    #[test]
    fn fattree4_link_structure() {
        let t = fattree(4);
        // k=4: core links = 4 pods * 2 aggs * 2 = 16; pod internal = 4*2*2 = 16;
        // host links = 16. Total 48.
        assert_eq!(t.link_count(), 48);
        // All core switches have degree k.
        for s in t.switches() {
            if t.switch_role(s) == SwitchRole::Core {
                assert_eq!(t.adj(Node::Switch(s)).len(), 4);
            }
        }
    }

    #[test]
    fn fattree8_for_fig12() {
        let t = fattree(8);
        assert_eq!(t.switch_count(), 16 + 8 * 8); // 16 core + 32 agg + 32 edge
        assert_eq!(t.host_count(), 128);
        t.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "even")]
    fn fattree_rejects_odd_k() {
        fattree(3);
    }

    #[test]
    fn bcube14_matches_table1() {
        let t = bcube(1, 4);
        assert_eq!(t.switch_count(), 24);
        assert_eq!(t.host_count(), 16);
        t.validate().unwrap();
        assert!(t.all_hosts_connected());
    }

    #[test]
    fn bcube_cell_switch_degree_is_n() {
        let t = bcube(1, 4);
        for s in t.switches() {
            match t.switch_role(s) {
                SwitchRole::Cell => assert_eq!(t.adj(Node::Switch(s)).len(), 4),
                SwitchRole::HostProxy => {
                    // 1 host + one link per level (level+1 = 2).
                    assert_eq!(t.adj(Node::Switch(s)).len(), 3);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn bcube_paths_are_short() {
        let t = bcube(1, 4);
        // Worst-case host-to-host path in BCube(1,4):
        // h - proxy - sw - proxy - sw - proxy - h = 7 nodes.
        for a in 0..4 {
            for b in 4..8 {
                let p = t
                    .shortest_path(Node::Host(HostId(a)), Node::Host(HostId(b)))
                    .unwrap();
                assert!(p.len() <= 7, "path {p:?}");
            }
        }
    }

    #[test]
    fn dcell14_matches_table1() {
        let t = dcell(1, 4);
        assert_eq!(t.switch_count(), 25);
        assert_eq!(t.host_count(), 20);
        t.validate().unwrap();
        assert!(t.all_hosts_connected());
    }

    #[test]
    fn dcell0_shape() {
        let t = dcell(0, 4);
        assert_eq!(t.switch_count(), 5); // 1 mini-switch + 4 proxies
        assert_eq!(t.host_count(), 4);
        t.validate().unwrap();
    }

    #[test]
    fn dcell_cross_links_exist() {
        let t = dcell(1, 4);
        // total links: per cell (n hosts + n proxy-switch links) = 8 * 5 = 40,
        // plus C(5,2) = 10 cross links.
        assert_eq!(t.link_count(), 50);
    }

    #[test]
    fn stanford_matches_table1() {
        let t = stanford();
        assert_eq!(t.switch_count(), 26);
        assert_eq!(t.host_count(), 26);
        t.validate().unwrap();
        assert!(t.all_hosts_connected());
    }

    #[test]
    fn stanford_diameter_is_small() {
        let t = stanford();
        let hosts: Vec<HostId> = t.hosts().collect();
        let mut max_len = 0;
        for &a in &hosts {
            for &b in &hosts {
                if a == b {
                    continue;
                }
                let p = t.shortest_path(Node::Host(a), Node::Host(b)).unwrap();
                max_len = max_len.max(p.len());
            }
        }
        // h + at most 5 switches + h.
        assert!(max_len <= 7, "diameter too large: {max_len}");
    }

    #[test]
    fn linear_and_ring_shapes() {
        let l = linear(4);
        assert_eq!(l.switch_count(), 4);
        assert_eq!(l.host_count(), 4);
        assert_eq!(l.link_count(), 7);
        l.validate().unwrap();
        // End-to-end path visits every switch.
        let p = l
            .shortest_path(Node::Host(HostId(0)), Node::Host(HostId(3)))
            .unwrap();
        assert_eq!(p.len(), 6);

        let r = ring(5);
        assert_eq!(r.link_count(), 10);
        r.validate().unwrap();
        // Ring halves the worst-case distance vs the chain.
        let p = r
            .shortest_path(Node::Host(HostId(0)), Node::Host(HostId(4)))
            .unwrap();
        assert_eq!(p.len(), 4, "wrap-around link shortens the path");
    }

    #[test]
    #[should_panic(expected = "at least three")]
    fn tiny_ring_rejected() {
        ring(2);
    }

    #[test]
    fn random_connected_is_deterministic_and_connected() {
        for seed in 0..20 {
            let t = random_connected(9, 4, seed);
            t.validate().unwrap();
            assert!(t.all_hosts_connected(), "seed {seed}");
            assert_eq!(t.switch_count(), 9);
            assert_eq!(t.host_count(), 9);
            // tree (8) + hosts (9) <= links <= tree + hosts + 4 chords
            assert!(t.link_count() >= 17 && t.link_count() <= 21);
            let t2 = random_connected(9, 4, seed);
            assert_eq!(t.link_count(), t2.link_count());
        }
        // Different seeds generally give different graphs.
        let counts: std::collections::BTreeSet<usize> = (0..20)
            .map(|s| random_connected(12, 6, s).link_count())
            .collect();
        assert!(counts.len() > 1);
    }

    #[test]
    fn all_generators_produce_deterministic_output() {
        for (a, b) in [
            (fattree(4).link_count(), fattree(4).link_count()),
            (bcube(1, 4).link_count(), bcube(1, 4).link_count()),
            (dcell(1, 4).link_count(), dcell(1, 4).link_count()),
            (stanford().link_count(), stanford().link_count()),
        ] {
            assert_eq!(a, b);
        }
    }
}
