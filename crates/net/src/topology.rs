use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

/// Identifier of a switch within a [`Topology`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

/// Identifier of a host within a [`Topology`] (dense, 0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HostId(pub usize);

/// A port number local to a node. Ports are assigned densely in link
/// insertion order, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Port(pub usize);

/// A node in the topology: either a switch or a host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// A forwarding switch.
    Switch(SwitchId),
    /// An end host (traffic source/sink; never forwards).
    Host(HostId),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Switch(SwitchId(i)) => write!(f, "s{i}"),
            Node::Host(HostId(i)) => write!(f, "h{i}"),
        }
    }
}

/// Structural role of a switch, recorded by the generators so experiments
/// can target e.g. "a random aggregation switch".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum SwitchRole {
    /// Core layer (FatTree) or top-level switch.
    Core,
    /// Aggregation layer (FatTree).
    Aggregation,
    /// Edge/ToR layer — hosts attach here.
    Edge,
    /// A mini-switch inside a BCube/DCell cell.
    Cell,
    /// A proxy switch standing in for a forwarding host (BCube/DCell).
    HostProxy,
    /// Backbone router (Stanford-like WAN).
    Backbone,
    /// No specific role recorded.
    #[default]
    Unspecified,
}

/// Errors from topology construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A referenced node does not exist in this topology.
    UnknownNode(String),
    /// A link would connect a node to itself.
    SelfLoop(String),
    /// A host was asked to carry more than one link.
    HostDegreeExceeded(HostId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop on node {n}"),
            TopologyError::HostDegreeExceeded(HostId(h)) => {
                write!(f, "host h{h} already has a link; hosts are single-homed")
            }
        }
    }
}

impl Error for TopologyError {}

/// One endpoint's view of a link: the local port, the neighbor, and the
/// neighbor's port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adjacency {
    /// Local port the link is attached to.
    pub local_port: Port,
    /// The node on the other end.
    pub neighbor: Node,
    /// The port on the other end.
    pub neighbor_port: Port,
}

/// An undirected network topology of switches and hosts.
///
/// Links are bidirectional and identified by `(node, port)` endpoints; hosts
/// are single-homed (exactly one link), matching the paper's experiment
/// setup where each host attaches to one switch.
///
/// # Example
///
/// ```
/// use foces_net::{Node, Topology};
///
/// # fn main() -> Result<(), foces_net::TopologyError> {
/// let mut t = Topology::new();
/// let s0 = t.add_switch("s0");
/// let s1 = t.add_switch("s1");
/// let h0 = t.add_host();
/// let h1 = t.add_host();
/// t.connect(Node::Switch(s0), Node::Switch(s1))?;
/// t.connect(Node::Host(h0), Node::Switch(s0))?;
/// t.connect(Node::Host(h1), Node::Switch(s1))?;
/// let path = t.shortest_path(Node::Host(h0), Node::Host(h1)).unwrap();
/// assert_eq!(path.len(), 4); // h0, s0, s1, h1
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switch_labels: Vec<String>,
    switch_roles: Vec<SwitchRole>,
    host_count: usize,
    /// adjacency per node: switches first (index = id), hosts after
    /// (index = switch_count + host id). Rebuilt indices on the fly.
    switch_adj: Vec<Vec<Adjacency>>,
    host_adj: Vec<Vec<Adjacency>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a switch with a human-readable label, returning its id.
    pub fn add_switch(&mut self, label: impl Into<String>) -> SwitchId {
        self.switch_labels.push(label.into());
        self.switch_roles.push(SwitchRole::Unspecified);
        self.switch_adj.push(Vec::new());
        SwitchId(self.switch_labels.len() - 1)
    }

    /// Adds a switch with an explicit role.
    pub fn add_switch_with_role(&mut self, label: impl Into<String>, role: SwitchRole) -> SwitchId {
        let id = self.add_switch(label);
        self.switch_roles[id.0] = role;
        id
    }

    /// Adds a host, returning its id.
    pub fn add_host(&mut self) -> HostId {
        self.host_count += 1;
        self.host_adj.push(Vec::new());
        HostId(self.host_count - 1)
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switch_labels.len()
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.host_count
    }

    /// Number of (undirected) links.
    pub fn link_count(&self) -> usize {
        let deg: usize = self
            .switch_adj
            .iter()
            .chain(self.host_adj.iter())
            .map(Vec::len)
            .sum();
        deg / 2
    }

    /// The label of a switch.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn switch_label(&self, id: SwitchId) -> &str {
        &self.switch_labels[id.0]
    }

    /// The role of a switch.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn switch_role(&self, id: SwitchId) -> SwitchRole {
        self.switch_roles[id.0]
    }

    /// Iterates over all switch ids.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        (0..self.switch_count()).map(SwitchId)
    }

    /// Iterates over all host ids.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        (0..self.host_count()).map(HostId)
    }

    fn check_node(&self, n: Node) -> Result<(), TopologyError> {
        let ok = match n {
            Node::Switch(SwitchId(i)) => i < self.switch_count(),
            Node::Host(HostId(i)) => i < self.host_count(),
        };
        if ok {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(n.to_string()))
        }
    }

    /// Connects two nodes with a new bidirectional link, assigning the next
    /// free port on each side. Returns the `(port_a, port_b)` pair.
    ///
    /// # Errors
    ///
    /// * [`TopologyError::UnknownNode`] for out-of-range ids;
    /// * [`TopologyError::SelfLoop`] if `a == b`;
    /// * [`TopologyError::HostDegreeExceeded`] if a host already has a link.
    pub fn connect(&mut self, a: Node, b: Node) -> Result<(Port, Port), TopologyError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopologyError::SelfLoop(a.to_string()));
        }
        for n in [a, b] {
            if let Node::Host(h) = n {
                if !self.adj(n).is_empty() {
                    return Err(TopologyError::HostDegreeExceeded(h));
                }
            }
        }
        let pa = Port(self.adj(a).len());
        let pb = Port(self.adj(b).len());
        self.adj_mut(a).push(Adjacency {
            local_port: pa,
            neighbor: b,
            neighbor_port: pb,
        });
        self.adj_mut(b).push(Adjacency {
            local_port: pb,
            neighbor: a,
            neighbor_port: pa,
        });
        Ok((pa, pb))
    }

    /// The adjacency list of a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is out of range (use [`Topology::connect`]-returned
    /// ids).
    pub fn adj(&self, n: Node) -> &[Adjacency] {
        match n {
            Node::Switch(SwitchId(i)) => &self.switch_adj[i],
            Node::Host(HostId(i)) => &self.host_adj[i],
        }
    }

    fn adj_mut(&mut self, n: Node) -> &mut Vec<Adjacency> {
        match n {
            Node::Switch(SwitchId(i)) => &mut self.switch_adj[i],
            Node::Host(HostId(i)) => &mut self.host_adj[i],
        }
    }

    /// The switch a host is attached to, if connected.
    pub fn host_attachment(&self, h: HostId) -> Option<(SwitchId, Port)> {
        self.host_adj.get(h.0).and_then(|adj| {
            adj.first().and_then(|a| match a.neighbor {
                Node::Switch(s) => Some((s, a.neighbor_port)),
                Node::Host(_) => None,
            })
        })
    }

    /// BFS shortest path between two nodes, **never transiting a host**
    /// (hosts may only be endpoints). Ties are broken deterministically by
    /// visiting neighbors in port order, so the same topology always routes
    /// the same way — essential for reproducible experiments.
    ///
    /// Returns the node sequence including both endpoints, or `None` if
    /// unreachable.
    pub fn shortest_path(&self, from: Node, to: Node) -> Option<Vec<Node>> {
        if self.check_node(from).is_err() || self.check_node(to).is_err() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let idx = |n: Node| -> usize {
            match n {
                Node::Switch(SwitchId(i)) => i,
                Node::Host(HostId(i)) => self.switch_count() + i,
            }
        };
        let total = self.switch_count() + self.host_count();
        let mut prev: Vec<Option<Node>> = vec![None; total];
        let mut seen = vec![false; total];
        let mut queue = VecDeque::new();
        seen[idx(from)] = true;
        queue.push_back(from);
        'bfs: while let Some(cur) = queue.pop_front() {
            // Hosts other than the source do not forward.
            if matches!(cur, Node::Host(_)) && cur != from {
                continue;
            }
            for a in self.adj(cur) {
                let nxt = a.neighbor;
                if seen[idx(nxt)] {
                    continue;
                }
                seen[idx(nxt)] = true;
                prev[idx(nxt)] = Some(cur);
                if nxt == to {
                    break 'bfs;
                }
                queue.push_back(nxt);
            }
        }
        if !seen[idx(to)] {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while let Some(p) = prev[idx(cur)] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path[0], from);
        Some(path)
    }

    /// The port on `from` that leads directly to `to`, if they are adjacent.
    pub fn port_towards(&self, from: Node, to: Node) -> Option<Port> {
        self.adj(from)
            .iter()
            .find(|a| a.neighbor == to)
            .map(|a| a.local_port)
    }

    /// Checks structural invariants: adjacency symmetry, port density,
    /// single-homed hosts. Used by generator tests.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] describing the first violation found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        for s in self.switches() {
            let n = Node::Switch(s);
            for (i, a) in self.adj(n).iter().enumerate() {
                if a.local_port != Port(i) {
                    return Err(TopologyError::UnknownNode(format!(
                        "{n} port table not dense at {i}"
                    )));
                }
                let back = self.adj(a.neighbor);
                let mirrored = back
                    .get(a.neighbor_port.0)
                    .map(|b| (b.neighbor, b.local_port));
                if mirrored != Some((n, a.neighbor_port)) {
                    return Err(TopologyError::UnknownNode(format!(
                        "asymmetric link {n}:{:?} -> {}",
                        a.local_port, a.neighbor
                    )));
                }
            }
        }
        for h in self.hosts() {
            if self.adj(Node::Host(h)).len() > 1 {
                return Err(TopologyError::HostDegreeExceeded(h));
            }
        }
        Ok(())
    }

    /// Whether every host can reach every other host.
    pub fn all_hosts_connected(&self) -> bool {
        let hosts: Vec<HostId> = self.hosts().collect();
        if hosts.len() < 2 {
            return true;
        }
        let first = Node::Host(hosts[0]);
        hosts[1..]
            .iter()
            .all(|&h| self.shortest_path(first, Node::Host(h)).is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Topology, Vec<SwitchId>, Vec<HostId>) {
        // h0 - s0 - s1 - s2 - h1
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..3).map(|i| t.add_switch(format!("s{i}"))).collect();
        let h = vec![t.add_host(), t.add_host()];
        t.connect(Node::Switch(s[0]), Node::Switch(s[1])).unwrap();
        t.connect(Node::Switch(s[1]), Node::Switch(s[2])).unwrap();
        t.connect(Node::Host(h[0]), Node::Switch(s[0])).unwrap();
        t.connect(Node::Host(h[1]), Node::Switch(s[2])).unwrap();
        (t, s, h)
    }

    #[test]
    fn counts_and_labels() {
        let (t, s, _) = line3();
        assert_eq!(t.switch_count(), 3);
        assert_eq!(t.host_count(), 2);
        assert_eq!(t.link_count(), 4);
        assert_eq!(t.switch_label(s[1]), "s1");
    }

    #[test]
    fn ports_assigned_densely() {
        let (t, s, _) = line3();
        let adj = t.adj(Node::Switch(s[1]));
        assert_eq!(adj.len(), 2);
        assert_eq!(adj[0].local_port, Port(0));
        assert_eq!(adj[1].local_port, Port(1));
    }

    #[test]
    fn shortest_path_endpoints_and_length() {
        let (t, s, h) = line3();
        let p = t.shortest_path(Node::Host(h[0]), Node::Host(h[1])).unwrap();
        assert_eq!(
            p,
            vec![
                Node::Host(h[0]),
                Node::Switch(s[0]),
                Node::Switch(s[1]),
                Node::Switch(s[2]),
                Node::Host(h[1])
            ]
        );
    }

    #[test]
    fn path_to_self_is_singleton() {
        let (t, _, h) = line3();
        assert_eq!(
            t.shortest_path(Node::Host(h[0]), Node::Host(h[0])),
            Some(vec![Node::Host(h[0])])
        );
    }

    #[test]
    fn hosts_do_not_transit() {
        // s0 - h - s1 would be the only path; must be unreachable.
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let h = t.add_host();
        t.connect(Node::Switch(s0), Node::Host(h)).unwrap();
        // h is single-homed: cannot even connect to s1. Use a fresh host
        // chain to assert the constraint instead.
        assert!(matches!(
            t.connect(Node::Host(h), Node::Switch(s1)),
            Err(TopologyError::HostDegreeExceeded(_))
        ));
        assert!(t
            .shortest_path(Node::Switch(s0), Node::Switch(s1))
            .is_none());
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let s = t.add_switch("s");
        assert!(matches!(
            t.connect(Node::Switch(s), Node::Switch(s)),
            Err(TopologyError::SelfLoop(_))
        ));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut t = Topology::new();
        let s = t.add_switch("s");
        assert!(t
            .connect(Node::Switch(s), Node::Switch(SwitchId(7)))
            .is_err());
    }

    #[test]
    fn port_towards_finds_direct_links_only() {
        let (t, s, h) = line3();
        assert_eq!(
            t.port_towards(Node::Switch(s[0]), Node::Switch(s[1])),
            Some(Port(0))
        );
        assert_eq!(t.port_towards(Node::Switch(s[0]), Node::Switch(s[2])), None);
        assert!(t
            .port_towards(Node::Host(h[0]), Node::Switch(s[0]))
            .is_some());
    }

    #[test]
    fn host_attachment_reports_switch_and_port() {
        let (t, s, h) = line3();
        let (sw, _port) = t.host_attachment(h[1]).unwrap();
        assert_eq!(sw, s[2]);
    }

    #[test]
    fn validate_passes_on_wellformed() {
        let (t, _, _) = line3();
        t.validate().unwrap();
        assert!(t.all_hosts_connected());
    }

    #[test]
    fn disconnected_hosts_detected() {
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let h0 = t.add_host();
        let h1 = t.add_host();
        t.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        t.connect(Node::Host(h1), Node::Switch(s1)).unwrap();
        assert!(!t.all_hosts_connected());
    }

    #[test]
    fn deterministic_tie_breaking() {
        // Diamond: s0 -> {s1, s2} -> s3; BFS must always pick the neighbor
        // on the lower port (s1, connected first).
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..4).map(|i| t.add_switch(format!("s{i}"))).collect();
        t.connect(Node::Switch(s[0]), Node::Switch(s[1])).unwrap();
        t.connect(Node::Switch(s[0]), Node::Switch(s[2])).unwrap();
        t.connect(Node::Switch(s[1]), Node::Switch(s[3])).unwrap();
        t.connect(Node::Switch(s[2]), Node::Switch(s[3])).unwrap();
        for _ in 0..5 {
            let p = t
                .shortest_path(Node::Switch(s[0]), Node::Switch(s[3]))
                .unwrap();
            assert_eq!(p[1], Node::Switch(s[1]));
        }
    }

    #[test]
    fn node_display() {
        assert_eq!(Node::Switch(SwitchId(3)).to_string(), "s3");
        assert_eq!(Node::Host(HostId(0)).to_string(), "h0");
    }
}
