//! Topology partitioning for sharded detection.
//!
//! The cluster subsystem (`foces-cluster`) splits detection across one
//! worker per *region shard*; this module produces the regions. Two modes:
//!
//! * [`PartitionSpec::PerSwitch`] — every switch is its own region. The
//!   sharded FCM built over this partition reproduces the paper's per-switch
//!   slicing (§IV-B) exactly, which pins the new machinery to the old.
//! * [`PartitionSpec::EdgeCut`] — a greedy balanced edge-cut into `k`
//!   regions: farthest-first seed selection followed by capacity-bounded
//!   multi-source BFS growth. Every region holds at most `⌈n/k⌉` switches
//!   (the balance constraint), regions are contiguous whenever capacity
//!   permits, and the construction is fully deterministic (ties break on
//!   the lower switch/region id), so the same topology always shards the
//!   same way across runs and machines.

use crate::{Node, SwitchId, Topology};
use std::collections::VecDeque;
use std::fmt;

/// How to cut a topology into region shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionSpec {
    /// One region per switch — reproduces per-switch FCM slicing.
    PerSwitch,
    /// Greedy balanced edge-cut into (at most) `k` regions.
    EdgeCut {
        /// Requested region count; clamped to `1..=switch_count`.
        k: usize,
    },
}

impl PartitionSpec {
    /// Parses a CLI-style spec: `"per-switch"` or a shard count for the
    /// greedy edge-cut mode.
    pub fn parse(mode: &str, shards: usize) -> Option<PartitionSpec> {
        match mode {
            "per-switch" => Some(PartitionSpec::PerSwitch),
            "greedy" | "edge-cut" => Some(PartitionSpec::EdgeCut { k: shards }),
            _ => None,
        }
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionSpec::PerSwitch => write!(f, "per-switch"),
            PartitionSpec::EdgeCut { k } => write!(f, "edge-cut(k={k})"),
        }
    }
}

/// A complete assignment of every switch to exactly one region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Region index per switch (indexed by `SwitchId.0`).
    region_of: Vec<usize>,
    /// Member switches per region, ascending within each region.
    regions: Vec<Vec<SwitchId>>,
}

impl Partition {
    /// Number of regions. Every region is non-empty.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// The region a switch belongs to.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range for the partitioned
    /// topology.
    pub fn region_of(&self, s: SwitchId) -> usize {
        self.region_of[s.0]
    }

    /// Member switches of one region, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `region >= region_count()`.
    pub fn region(&self, region: usize) -> &[SwitchId] {
        &self.regions[region]
    }

    /// All regions, each ascending, indexed by region id.
    pub fn regions(&self) -> &[Vec<SwitchId>] {
        &self.regions
    }

    /// Number of switch–switch links whose endpoints sit in different
    /// regions — the quantity the greedy partitioner minimizes.
    pub fn edge_cut(&self, topo: &Topology) -> usize {
        let mut cut = 0;
        for s in topo.switches() {
            for adj in topo.adj(Node::Switch(s)) {
                if let Node::Switch(t) = adj.neighbor {
                    if t.0 > s.0 && self.region_of[s.0] != self.region_of[t.0] {
                        cut += 1;
                    }
                }
            }
        }
        cut
    }

    /// Largest region size divided by the ideal `n/k` — 1.0 is perfectly
    /// balanced.
    pub fn balance(&self) -> f64 {
        let n: usize = self.regions.iter().map(Vec::len).sum();
        if n == 0 || self.regions.is_empty() {
            return 1.0;
        }
        let largest = self.regions.iter().map(Vec::len).max().unwrap_or(0);
        largest as f64 / (n as f64 / self.regions.len() as f64)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sizes: Vec<usize> = self.regions.iter().map(Vec::len).collect();
        write!(
            f,
            "{} regions, sizes {:?}, balance {:.2}",
            self.region_count(),
            sizes,
            self.balance()
        )
    }
}

/// Cuts `topo`'s switches into region shards per `spec`.
///
/// `EdgeCut { k }` clamps `k` to `1..=switch_count` and guarantees every
/// region is non-empty with at most `⌈n/k⌉` members. An empty topology
/// yields a partition with zero regions.
pub fn partition(topo: &Topology, spec: PartitionSpec) -> Partition {
    let n = topo.switch_count();
    if n == 0 {
        return Partition {
            region_of: Vec::new(),
            regions: Vec::new(),
        };
    }
    let k = match spec {
        PartitionSpec::PerSwitch => {
            return Partition {
                region_of: (0..n).collect(),
                regions: (0..n).map(|i| vec![SwitchId(i)]).collect(),
            };
        }
        PartitionSpec::EdgeCut { k } => k.clamp(1, n),
    };
    let cap = n.div_ceil(k);

    // Farthest-first seeds: the first seed is switch 0; each further seed
    // maximizes the BFS hop distance (over the switch-only graph) to the
    // nearest already-chosen seed, ties to the lower id. Disconnected
    // switches have infinite distance and get seeded first, which keeps
    // every component represented when k allows.
    let mut dist = vec![usize::MAX; n];
    let mut seeds = Vec::with_capacity(k);
    let mut next_seed = SwitchId(0);
    for _ in 0..k {
        seeds.push(next_seed);
        // Relax distances from the new seed.
        let mut queue = VecDeque::new();
        dist[next_seed.0] = 0;
        queue.push_back(next_seed);
        while let Some(s) = queue.pop_front() {
            for adj in topo.adj(Node::Switch(s)) {
                if let Node::Switch(t) = adj.neighbor {
                    if dist[t.0] > dist[s.0] + 1 {
                        dist[t.0] = dist[s.0] + 1;
                        queue.push_back(t);
                    }
                }
            }
        }
        if let Some(far) = (0..n)
            .filter(|&i| dist[i] > 0)
            .max_by_key(|&i| (dist[i], n - i))
        {
            next_seed = SwitchId(far);
        } else {
            break; // fewer reachable switches than k — partial seed set
        }
    }

    // Capacity-bounded multi-source BFS growth, round-robin over regions so
    // no region starves: each turn a region claims one unassigned neighbor
    // from its frontier.
    let mut region_of = vec![usize::MAX; n];
    let mut sizes = vec![0usize; seeds.len()];
    let mut frontiers: Vec<VecDeque<SwitchId>> = seeds.iter().map(|_| VecDeque::new()).collect();
    for (r, &seed) in seeds.iter().enumerate() {
        region_of[seed.0] = r;
        sizes[r] = 1;
        frontiers[r].push_back(seed);
    }
    let mut progressed = true;
    while progressed {
        progressed = false;
        for r in 0..seeds.len() {
            if sizes[r] >= cap {
                continue;
            }
            'grow: while let Some(&s) = frontiers[r].front() {
                for adj in topo.adj(Node::Switch(s)) {
                    if let Node::Switch(t) = adj.neighbor {
                        if region_of[t.0] == usize::MAX {
                            region_of[t.0] = r;
                            sizes[r] += 1;
                            frontiers[r].push_back(t);
                            progressed = true;
                            break 'grow; // one claim per turn keeps growth balanced
                        }
                    }
                }
                frontiers[r].pop_front(); // exhausted node
            }
        }
    }

    // Fill: switches left unassigned (unreachable from any seed, or walled
    // off by full regions) go to the smallest under-capacity region,
    // preferring one they are adjacent to. Since k·cap ≥ n some region is
    // always under capacity, so the ⌈n/k⌉ bound survives the fill.
    for i in 0..n {
        if region_of[i] != usize::MAX {
            continue;
        }
        let adjacent_best = topo
            .adj(Node::Switch(SwitchId(i)))
            .iter()
            .filter_map(|a| match a.neighbor {
                Node::Switch(t) if region_of[t.0] != usize::MAX => Some(region_of[t.0]),
                _ => None,
            })
            .filter(|&r| sizes[r] < cap)
            .min_by_key(|&r| (sizes[r], r));
        let r = adjacent_best.unwrap_or_else(|| {
            (0..sizes.len())
                .filter(|&r| sizes[r] < cap)
                .min_by_key(|&r| (sizes[r], r))
                .expect("k·cap ≥ n leaves an under-capacity region")
        });
        region_of[i] = r;
        sizes[r] += 1;
    }

    let mut regions: Vec<Vec<SwitchId>> = vec![Vec::new(); seeds.len()];
    for i in 0..n {
        regions[region_of[i]].push(SwitchId(i));
    }
    Partition { region_of, regions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{bcube, fattree, linear, random_connected, ring};

    fn check_complete(topo: &Topology, p: &Partition) {
        let mut seen = vec![false; topo.switch_count()];
        for (r, members) in p.regions().iter().enumerate() {
            assert!(!members.is_empty(), "region {r} is empty");
            for &s in members {
                assert_eq!(p.region_of(s), r);
                assert!(!seen[s.0], "switch {s:?} assigned twice");
                seen[s.0] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every switch must be assigned");
    }

    #[test]
    fn per_switch_mode_is_singletons() {
        let topo = fattree(4);
        let p = partition(&topo, PartitionSpec::PerSwitch);
        assert_eq!(p.region_count(), topo.switch_count());
        check_complete(&topo, &p);
        for (r, members) in p.regions().iter().enumerate() {
            assert_eq!(members, &vec![SwitchId(r)]);
        }
        assert_eq!(p.edge_cut(&topo), {
            // Every switch–switch link is cut.
            let mut switch_links = 0;
            for s in topo.switches() {
                for a in topo.adj(Node::Switch(s)) {
                    if matches!(a.neighbor, Node::Switch(t) if t.0 > s.0) {
                        switch_links += 1;
                    }
                }
            }
            switch_links
        });
    }

    #[test]
    fn edge_cut_respects_balance_bound() {
        for (topo, ks) in [
            (fattree(4), vec![1, 2, 3, 4, 7, 20, 50]),
            (bcube(1, 4), vec![1, 2, 4, 5, 24]),
            (ring(9), vec![2, 3, 4]),
        ] {
            let n = topo.switch_count();
            for k in ks {
                let p = partition(&topo, PartitionSpec::EdgeCut { k });
                check_complete(&topo, &p);
                let k_eff = k.clamp(1, n);
                assert_eq!(p.region_count(), k_eff, "k={k} on n={n}");
                let cap = n.div_ceil(k_eff);
                for members in p.regions() {
                    assert!(members.len() <= cap, "k={k}: region over capacity");
                }
            }
        }
    }

    #[test]
    fn single_region_has_zero_cut() {
        let topo = bcube(1, 4);
        let p = partition(&topo, PartitionSpec::EdgeCut { k: 1 });
        assert_eq!(p.region_count(), 1);
        assert_eq!(p.edge_cut(&topo), 0);
        assert!((p.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn grown_regions_cut_fewer_edges_than_singletons() {
        let topo = fattree(4);
        let grown = partition(&topo, PartitionSpec::EdgeCut { k: 4 });
        let singleton = partition(&topo, PartitionSpec::PerSwitch);
        assert!(
            grown.edge_cut(&topo) < singleton.edge_cut(&topo),
            "a 4-way cut must beat the all-singleton cut: {} vs {}",
            grown.edge_cut(&topo),
            singleton.edge_cut(&topo)
        );
    }

    #[test]
    fn contiguous_on_a_line() {
        // On a path graph a balanced cut has exactly k-1 cut edges.
        let topo = linear(12);
        let p = partition(&topo, PartitionSpec::EdgeCut { k: 3 });
        check_complete(&topo, &p);
        assert_eq!(p.edge_cut(&topo), 2, "{p}");
    }

    #[test]
    fn deterministic_across_calls() {
        let topo = random_connected(40, 30, 7);
        let a = partition(&topo, PartitionSpec::EdgeCut { k: 5 });
        let b = partition(&topo, PartitionSpec::EdgeCut { k: 5 });
        assert_eq!(a, b);
    }

    #[test]
    fn empty_topology_yields_empty_partition() {
        let topo = Topology::new();
        for spec in [PartitionSpec::PerSwitch, PartitionSpec::EdgeCut { k: 3 }] {
            let p = partition(&topo, spec);
            assert_eq!(p.region_count(), 0);
        }
    }

    #[test]
    fn spec_parse_round_trip() {
        assert_eq!(
            PartitionSpec::parse("per-switch", 9),
            Some(PartitionSpec::PerSwitch)
        );
        assert_eq!(
            PartitionSpec::parse("greedy", 4),
            Some(PartitionSpec::EdgeCut { k: 4 })
        );
        assert_eq!(
            PartitionSpec::parse("edge-cut", 2),
            Some(PartitionSpec::EdgeCut { k: 2 })
        );
        assert_eq!(PartitionSpec::parse("metis", 4), None);
        assert!(PartitionSpec::PerSwitch.to_string().contains("per-switch"));
        assert!(PartitionSpec::EdgeCut { k: 4 }.to_string().contains("4"));
    }
}
