//! Network topology model and generators for the FOCES reproduction.
//!
//! The paper evaluates FOCES on four topologies (Table I): the Stanford
//! backbone, FatTree(4), BCube(1,4), and DCell(1,4), emulated in Mininet.
//! This crate provides the same topologies as in-memory graphs:
//!
//! * [`Topology`] — switches, hosts, bidirectional links with per-node port
//!   numbering, BFS shortest paths with deterministic tie-breaking;
//! * [`generators`] — constructors for the four paper topologies plus
//!   parameterized families (`fattree(k)`, `bcube(n, level)`,
//!   `dcell(n, level)`) used by the scalability experiment (Fig. 12 uses
//!   FatTree(8)).
//!
//! Hosts in BCube and DCell forward traffic themselves; following the
//! paper's switch counts (BCube(1,4) = 24 switches for 16 hosts), each host
//! is modeled as a *host proxy switch* with the actual host hanging off it.
//!
//! # Example
//!
//! ```
//! use foces_net::generators::fattree;
//!
//! let topo = fattree(4);
//! assert_eq!(topo.switch_count(), 20); // 4 core + 8 agg + 8 edge
//! assert_eq!(topo.host_count(), 16);
//! ```

pub mod generators;
pub mod partition;
mod topology;

pub use partition::{partition, Partition, PartitionSpec};
pub use topology::{Adjacency, HostId, Node, Port, SwitchId, SwitchRole, Topology, TopologyError};
