//! Property tests: the ternary algebra must satisfy the laws of set algebra
//! on the regions it denotes. We check against a brute-force concrete-header
//! enumeration for 8-bit headers, which is exhaustive (256 headers).

use foces_headerspace::{covers, Wildcard};
use proptest::prelude::*;

const WIDTH: usize = 8;

fn wildcard_strategy() -> impl Strategy<Value = Wildcard> {
    proptest::collection::vec(0u8..3, WIDTH).prop_map(|tri| {
        let mut w = Wildcard::any(WIDTH);
        for (pos, t) in tri.iter().enumerate() {
            w.set_bit(
                pos,
                match t {
                    0 => Some(false),
                    1 => Some(true),
                    _ => None,
                },
            );
        }
        w
    })
}

/// The set of concrete headers a wildcard denotes.
fn denote(w: &Wildcard) -> Vec<u64> {
    (0..(1u64 << WIDTH))
        .filter(|&h| w.matches_concrete(h))
        .collect()
}

proptest! {
    /// intersect denotes set intersection.
    #[test]
    fn intersection_is_set_intersection(a in wildcard_strategy(), b in wildcard_strategy()) {
        let lhs: Vec<u64> = match a.intersect(&b) {
            Some(c) => denote(&c),
            None => vec![],
        };
        let rhs: Vec<u64> = denote(&a).into_iter().filter(|h| b.matches_concrete(*h)).collect();
        prop_assert_eq!(lhs, rhs);
    }

    /// subset test agrees with the denotations.
    #[test]
    fn subset_is_set_inclusion(a in wildcard_strategy(), b in wildcard_strategy()) {
        let claimed = a.is_subset_of(&b);
        let actual = denote(&a).iter().all(|h| b.matches_concrete(*h));
        prop_assert_eq!(claimed, actual);
    }

    /// cardinality matches the denotation size.
    #[test]
    fn cardinality_matches_enumeration(a in wildcard_strategy()) {
        prop_assert_eq!(a.cardinality() as usize, denote(&a).len());
    }

    /// rewrite then match: rewriting a concrete member of `a` produces a
    /// member of `a.rewrite(rw)`.
    #[test]
    fn rewrite_commutes_with_membership(a in wildcard_strategy(), rw in wildcard_strategy()) {
        let out = a.rewrite(&rw);
        for h in denote(&a).into_iter().take(16) {
            // Apply the rewrite to the concrete header.
            let mut rewritten = h;
            for pos in 0..WIDTH {
                if let Some(v) = rw.bit(pos) {
                    let m = 1u64 << (WIDTH - 1 - pos);
                    if v { rewritten |= m } else { rewritten &= !m }
                }
            }
            prop_assert!(out.matches_concrete(rewritten));
        }
    }

    /// intersect is commutative, associative (where defined), with `any` as
    /// the identity.
    #[test]
    fn intersect_algebraic_laws(a in wildcard_strategy(), b in wildcard_strategy(), c in wildcard_strategy()) {
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.intersect(&Wildcard::any(WIDTH)), Some(a.clone()));
        let left = a.intersect(&b).and_then(|ab| ab.intersect(&c));
        let right = b.intersect(&c).and_then(|bc| a.intersect(&bc));
        prop_assert_eq!(left, right);
    }

    /// difference denotes set difference, with pairwise-disjoint pieces.
    #[test]
    fn difference_is_set_difference(a in wildcard_strategy(), b in wildcard_strategy()) {
        let pieces = a.difference(&b);
        for (i, p) in pieces.iter().enumerate() {
            for q in &pieces[i + 1..] {
                prop_assert!(!p.overlaps(q), "pieces {p} and {q} overlap");
            }
        }
        let mut lhs: Vec<u64> = pieces.iter().flat_map(denote).collect();
        lhs.sort_unstable();
        let rhs: Vec<u64> = denote(&a).into_iter().filter(|h| !b.matches_concrete(*h)).collect();
        prop_assert_eq!(lhs, rhs);
    }

    /// subtract_all denotes iterated set difference; covers agrees with the
    /// brute-force union-inclusion test.
    #[test]
    fn subtract_all_and_covers_are_exact(
        a in wildcard_strategy(),
        cover in proptest::collection::vec(wildcard_strategy(), 0..4),
    ) {
        let residual = a.subtract_all(&cover);
        let mut lhs: Vec<u64> = residual.iter().flat_map(denote).collect();
        lhs.sort_unstable();
        let rhs: Vec<u64> = denote(&a)
            .into_iter()
            .filter(|h| !cover.iter().any(|c| c.matches_concrete(*h)))
            .collect();
        prop_assert_eq!(&lhs, &rhs);
        prop_assert_eq!(covers(&cover, &a), rhs.is_empty());
    }

    /// Parsing the Display form round-trips.
    #[test]
    fn display_parse_round_trip(a in wildcard_strategy()) {
        let s = format!("{a}");
        let back = Wildcard::from_str_bits(&s).unwrap();
        prop_assert_eq!(a, back);
    }
}
