use std::error::Error;
use std::fmt;

/// Errors produced by header-space operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HeaderSpaceError {
    /// Two operands had different bit widths.
    WidthMismatch {
        /// Width of the left operand.
        left: usize,
        /// Width of the right operand.
        right: usize,
    },
    /// A string representation contained a character other than `0`, `1`,
    /// `*`, or an ignored separator (`_`, space).
    InvalidCharacter {
        /// The offending character.
        ch: char,
        /// Its position in the input string.
        position: usize,
    },
    /// A prefix length exceeded the header width.
    PrefixTooLong {
        /// Requested prefix length.
        prefix_len: usize,
        /// Header width.
        width: usize,
    },
}

impl fmt::Display for HeaderSpaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderSpaceError::WidthMismatch { left, right } => {
                write!(f, "header widths differ: {left} vs {right}")
            }
            HeaderSpaceError::InvalidCharacter { ch, position } => {
                write!(f, "invalid character {ch:?} at position {position}")
            }
            HeaderSpaceError::PrefixTooLong { prefix_len, width } => {
                write!(f, "prefix length {prefix_len} exceeds header width {width}")
            }
        }
    }
}

impl Error for HeaderSpaceError {}

/// A ternary bit string over `{0, 1, *}` of fixed width, representing a set
/// of concrete packet headers.
///
/// Internally stored as two bit planes packed into `u64` blocks:
/// * `mask` — bit set ⇒ the position is exact (`0` or `1`);
/// * `value` — the bit's value where exact, always `0` where wildcarded.
///
/// Bit `0` is the **most significant** (leftmost) position, matching the
/// conventional left-to-right reading of IP prefixes.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Wildcard {
    width: usize,
    mask: Vec<u64>,
    value: Vec<u64>,
}

const BLOCK: usize = 64;

fn blocks_for(width: usize) -> usize {
    width.div_ceil(BLOCK)
}

#[inline]
fn bit_index(pos: usize) -> (usize, u64) {
    (pos / BLOCK, 1u64 << (BLOCK - 1 - (pos % BLOCK)))
}

impl Wildcard {
    /// The all-wildcard header of the given width: matches every packet.
    /// This is the symbolic header ATPG injects at each terminal port.
    pub fn any(width: usize) -> Self {
        Wildcard {
            width,
            mask: vec![0; blocks_for(width)],
            value: vec![0; blocks_for(width)],
        }
    }

    /// An exact header: every bit concrete, taken from the low `width` bits
    /// of `bits` (bit `width-1` of `bits` becomes position 0, i.e. the value
    /// is read as an unsigned integer of `width` bits).
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` (use [`Wildcard::from_str_bits`] for wider
    /// headers) or if `bits` does not fit in `width` bits.
    pub fn exact(width: usize, bits: u64) -> Self {
        assert!(width <= 64, "exact() supports widths up to 64 bits");
        assert!(
            width == 64 || bits < (1u64 << width),
            "value {bits} does not fit in {width} bits"
        );
        let mut w = Wildcard::any(width);
        for pos in 0..width {
            let bit = (bits >> (width - 1 - pos)) & 1;
            w.set_bit(pos, Some(bit == 1));
        }
        w
    }

    /// A prefix match: the first `prefix_len` bits are exact (taken from the
    /// top of `bits` interpreted as a `width`-bit integer), the rest
    /// wildcarded. This models IPv4-style `addr/len` rules.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderSpaceError::PrefixTooLong`] if `prefix_len > width`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn prefix(width: usize, bits: u64, prefix_len: usize) -> Result<Self, HeaderSpaceError> {
        assert!(width <= 64, "prefix() supports widths up to 64 bits");
        if prefix_len > width {
            return Err(HeaderSpaceError::PrefixTooLong { prefix_len, width });
        }
        let mut w = Wildcard::any(width);
        for pos in 0..prefix_len {
            let bit = (bits >> (width - 1 - pos)) & 1;
            w.set_bit(pos, Some(bit == 1));
        }
        Ok(w)
    }

    /// Parses a ternary string of `0`, `1`, `*`; `_` and spaces are ignored
    /// separators.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderSpaceError::InvalidCharacter`] on anything else.
    pub fn from_str_bits(s: &str) -> Result<Self, HeaderSpaceError> {
        let mut bits = Vec::new();
        for (i, ch) in s.chars().enumerate() {
            match ch {
                '0' => bits.push(Some(false)),
                '1' => bits.push(Some(true)),
                '*' => bits.push(None),
                '_' | ' ' => {}
                other => {
                    return Err(HeaderSpaceError::InvalidCharacter {
                        ch: other,
                        position: i,
                    })
                }
            }
        }
        let mut w = Wildcard::any(bits.len());
        for (pos, b) in bits.into_iter().enumerate() {
            w.set_bit(pos, b);
        }
        Ok(w)
    }

    /// Header width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Reads bit `pos`: `Some(true)`/`Some(false)` if exact, `None` if `*`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= width`.
    pub fn bit(&self, pos: usize) -> Option<bool> {
        assert!(pos < self.width, "bit {pos} out of range");
        let (blk, m) = bit_index(pos);
        if self.mask[blk] & m != 0 {
            Some(self.value[blk] & m != 0)
        } else {
            None
        }
    }

    /// Sets bit `pos` to an exact value or wildcard.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= width`.
    pub fn set_bit(&mut self, pos: usize, bit: Option<bool>) {
        assert!(pos < self.width, "bit {pos} out of range");
        let (blk, m) = bit_index(pos);
        match bit {
            Some(v) => {
                self.mask[blk] |= m;
                if v {
                    self.value[blk] |= m;
                } else {
                    self.value[blk] &= !m;
                }
            }
            None => {
                self.mask[blk] &= !m;
                self.value[blk] &= !m;
            }
        }
    }

    /// Number of exact (non-wildcard) bits.
    pub fn exact_bits(&self) -> usize {
        self.mask.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Intersection of two header regions; `None` when they are disjoint
    /// (some bit exact in both with different values).
    ///
    /// # Panics
    ///
    /// Panics if widths differ — rules and headers in one network always
    /// share the header layout; a mismatch is a programming error.
    pub fn intersect(&self, other: &Wildcard) -> Option<Wildcard> {
        assert_eq!(
            self.width, other.width,
            "intersect: widths {} vs {}",
            self.width, other.width
        );
        let mut out = Wildcard::any(self.width);
        for blk in 0..self.mask.len() {
            let both = self.mask[blk] & other.mask[blk];
            if (self.value[blk] ^ other.value[blk]) & both != 0 {
                return None; // conflicting exact bits
            }
            out.mask[blk] = self.mask[blk] | other.mask[blk];
            out.value[blk] =
                (self.value[blk] & self.mask[blk]) | (other.value[blk] & other.mask[blk]);
        }
        Some(out)
    }

    /// Tests whether `self` ⊆ `other` as sets of concrete headers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn is_subset_of(&self, other: &Wildcard) -> bool {
        assert_eq!(
            self.width, other.width,
            "is_subset_of: widths {} vs {}",
            self.width, other.width
        );
        for blk in 0..self.mask.len() {
            // Every bit exact in `other` must be exact in `self` with the
            // same value.
            if other.mask[blk] & !self.mask[blk] != 0 {
                return false;
            }
            if (self.value[blk] ^ other.value[blk]) & other.mask[blk] != 0 {
                return false;
            }
        }
        true
    }

    /// Tests whether the regions overlap (share at least one header).
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn overlaps(&self, other: &Wildcard) -> bool {
        self.intersect(other).is_some()
    }

    /// Set difference `self \ other` as a union of **pairwise-disjoint**
    /// wildcards (the standard header-space subtraction): one piece per
    /// position where `other` pins a bit that `self` leaves free, each
    /// piece agreeing with `other` on the earlier free positions and
    /// differing at its own. An empty result means `self ⊆ other`; a
    /// disjoint `other` returns `self` unchanged as the single piece.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn difference(&self, other: &Wildcard) -> Vec<Wildcard> {
        assert_eq!(
            self.width, other.width,
            "difference: widths {} vs {}",
            self.width, other.width
        );
        if !self.overlaps(other) {
            return vec![self.clone()];
        }
        let mut out = Vec::new();
        // `base` accumulates agreement with `other` on the free positions
        // already split off, so the emitted pieces are pairwise disjoint.
        let mut base = self.clone();
        for pos in 0..self.width {
            if self.bit(pos).is_none() {
                if let Some(v) = other.bit(pos) {
                    let mut piece = base.clone();
                    piece.set_bit(pos, Some(!v));
                    out.push(piece);
                    base.set_bit(pos, Some(v));
                }
            }
        }
        out
    }

    /// Subtracts every region in `others` from `self`, returning the
    /// residual as a union of pairwise-disjoint wildcards (empty ⇔ `self`
    /// is fully covered by the union of `others`). This is the exact
    /// emptiness test the single-negative containment heuristic in the
    /// ATPG tracer approximates.
    ///
    /// # Panics
    ///
    /// Panics if any width differs.
    pub fn subtract_all(&self, others: &[Wildcard]) -> Vec<Wildcard> {
        let mut pieces = vec![self.clone()];
        for o in others {
            if pieces.is_empty() {
                break;
            }
            pieces = pieces.iter().flat_map(|p| p.difference(o)).collect();
        }
        pieces
    }

    /// Applies a rewrite: wherever `rewrite` has an exact bit, that bit is
    /// forced in the output; wildcard positions in `rewrite` pass `self`'s
    /// bit through unchanged. This models OpenFlow set-field actions.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn rewrite(&self, rewrite: &Wildcard) -> Wildcard {
        assert_eq!(
            self.width, rewrite.width,
            "rewrite: widths {} vs {}",
            self.width, rewrite.width
        );
        let mut out = self.clone();
        for blk in 0..self.mask.len() {
            out.mask[blk] |= rewrite.mask[blk];
            out.value[blk] =
                (out.value[blk] & !rewrite.mask[blk]) | (rewrite.value[blk] & rewrite.mask[blk]);
        }
        out
    }

    /// Tests whether a concrete header (low `width` bits of `bits`) is in
    /// this region.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn matches_concrete(&self, bits: u64) -> bool {
        assert!(
            self.width <= 64,
            "matches_concrete supports widths up to 64"
        );
        for pos in 0..self.width {
            if let Some(v) = self.bit(pos) {
                let b = (bits >> (self.width - 1 - pos)) & 1 == 1;
                if b != v {
                    return false;
                }
            }
        }
        true
    }

    /// Number of concrete headers in this region (`2^wildcard_bits`), as
    /// `f64` to avoid overflow on wide headers.
    pub fn cardinality(&self) -> f64 {
        2f64.powi((self.width - self.exact_bits()) as i32)
    }

    /// A representative concrete header of the region: every wildcard bit
    /// resolved to `0`. Useful for turning a symbolic counterexample into
    /// a concrete injectable packet.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64`.
    pub fn representative(&self) -> u64 {
        assert!(self.width <= 64, "representative supports widths up to 64");
        let mut h = 0u64;
        for pos in 0..self.width {
            if self.bit(pos) == Some(true) {
                h |= 1 << (self.width - 1 - pos);
            }
        }
        h
    }

    /// Returns `true` when this region is the full space (all wildcards).
    pub fn is_any(&self) -> bool {
        self.mask.iter().all(|&b| b == 0)
    }

    /// The raw bit planes `(mask, value)` — for wire serialization.
    /// `mask` bit set ⇒ position exact; `value` holds the bit where exact.
    pub fn planes(&self) -> (&[u64], &[u64]) {
        (&self.mask, &self.value)
    }

    /// Reconstructs a wildcard from raw planes (inverse of
    /// [`Wildcard::planes`]). Bits beyond `width` and value bits on
    /// wildcarded positions are cleared, so any plane content yields a
    /// well-formed region.
    ///
    /// # Errors
    ///
    /// Returns [`HeaderSpaceError::WidthMismatch`] if the plane lengths do
    /// not match each other or the width's block count.
    pub fn from_planes(
        width: usize,
        mask: &[u64],
        value: &[u64],
    ) -> Result<Self, HeaderSpaceError> {
        let blocks = blocks_for(width);
        if mask.len() != blocks || value.len() != blocks {
            return Err(HeaderSpaceError::WidthMismatch {
                left: mask.len().max(value.len()),
                right: blocks,
            });
        }
        let mut w = Wildcard {
            width,
            mask: mask.to_vec(),
            value: value.to_vec(),
        };
        // Normalize: clear tail bits beyond `width` and value bits where
        // the mask is 0, so equality and hashing behave.
        if !width.is_multiple_of(BLOCK) && blocks > 0 {
            let used = width % BLOCK;
            let keep = !0u64 << (BLOCK - used);
            w.mask[blocks - 1] &= keep;
            w.value[blocks - 1] &= keep;
        }
        for (v, m) in w.value.iter_mut().zip(&w.mask) {
            *v &= m;
        }
        Ok(w)
    }
}

/// Tests whether the union of `cover` contains every header of `target`
/// (`target ⊆ ∪ cover`): the residual of subtracting each cover region
/// from `target` must be empty. This is the coverage oracle behind
/// shadowed/dead-rule detection: a rule is dead iff the higher-priority
/// matches jointly cover it.
///
/// # Panics
///
/// Panics if any width differs from `target`'s.
pub fn covers(cover: &[Wildcard], target: &Wildcard) -> bool {
    target.subtract_all(cover).is_empty()
}

fn fmt_ternary(w: &Wildcard, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for pos in 0..w.width {
        let c = match w.bit(pos) {
            Some(true) => '1',
            Some(false) => '0',
            None => '*',
        };
        write!(f, "{c}")?;
        if pos % 8 == 7 && pos + 1 < w.width {
            write!(f, "_")?;
        }
    }
    if w.width == 0 {
        write!(f, "<empty>")?;
    }
    Ok(())
}

impl fmt::Debug for Wildcard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ternary(self, f)
    }
}

impl fmt::Display for Wildcard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ternary(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_matches_everything() {
        let w = Wildcard::any(16);
        assert!(w.is_any());
        assert!(w.matches_concrete(0));
        assert!(w.matches_concrete(0xFFFF));
        assert_eq!(w.exact_bits(), 0);
        assert_eq!(w.cardinality(), 65536.0);
    }

    #[test]
    fn exact_matches_only_itself() {
        let w = Wildcard::exact(8, 0b1010_0001);
        assert!(w.matches_concrete(0b1010_0001));
        assert!(!w.matches_concrete(0b1010_0000));
        assert_eq!(w.exact_bits(), 8);
        assert_eq!(w.cardinality(), 1.0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn exact_rejects_oversized_value() {
        Wildcard::exact(4, 16);
    }

    #[test]
    fn prefix_fixes_leading_bits() {
        let w = Wildcard::prefix(8, 0b1100_0000, 2).unwrap();
        assert!(w.matches_concrete(0b1101_0101));
        assert!(!w.matches_concrete(0b1001_0101));
        assert_eq!(w.exact_bits(), 2);
        assert!(matches!(
            Wildcard::prefix(8, 0, 9),
            Err(HeaderSpaceError::PrefixTooLong { .. })
        ));
    }

    #[test]
    fn parse_and_display_round_trip() {
        let s = "10**0101_1*******";
        let w = Wildcard::from_str_bits(s).unwrap();
        assert_eq!(w.width(), 16);
        assert_eq!(format!("{w}"), "10**0101_1*******");
        assert!(matches!(
            Wildcard::from_str_bits("10x"),
            Err(HeaderSpaceError::InvalidCharacter {
                ch: 'x',
                position: 2
            })
        ));
    }

    #[test]
    fn intersect_disjoint_is_none() {
        let a = Wildcard::from_str_bits("1***").unwrap();
        let b = Wildcard::from_str_bits("0***").unwrap();
        assert!(a.intersect(&b).is_none());
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn intersect_combines_constraints() {
        let a = Wildcard::from_str_bits("1**0").unwrap();
        let b = Wildcard::from_str_bits("*1**").unwrap();
        let c = a.intersect(&b).unwrap();
        assert_eq!(format!("{c}"), "11*0");
    }

    #[test]
    fn intersect_is_commutative_and_idempotent() {
        let a = Wildcard::from_str_bits("10**").unwrap();
        let b = Wildcard::from_str_bits("1*1*").unwrap();
        assert_eq!(a.intersect(&b), b.intersect(&a));
        assert_eq!(a.intersect(&a), Some(a.clone()));
    }

    #[test]
    fn subset_relations() {
        let narrow = Wildcard::from_str_bits("101*").unwrap();
        let wide = Wildcard::from_str_bits("10**").unwrap();
        assert!(narrow.is_subset_of(&wide));
        assert!(!wide.is_subset_of(&narrow));
        assert!(narrow.is_subset_of(&narrow));
        assert!(wide.is_subset_of(&Wildcard::any(4)));
    }

    #[test]
    fn rewrite_forces_bits() {
        let h = Wildcard::from_str_bits("10**").unwrap();
        let rw = Wildcard::from_str_bits("**01").unwrap();
        let out = h.rewrite(&rw);
        assert_eq!(format!("{out}"), "1001");
        // Wildcard rewrite is identity.
        assert_eq!(h.rewrite(&Wildcard::any(4)), h);
    }

    #[test]
    fn rewrite_then_match() {
        // A rule that rewrites the first 2 bits to 01.
        let rw = Wildcard::from_str_bits("01**").unwrap();
        let pkt = Wildcard::exact(4, 0b1111);
        let out = pkt.rewrite(&rw);
        assert!(out.matches_concrete(0b0111));
        assert!(!out.matches_concrete(0b1111));
    }

    #[test]
    fn wide_headers_cross_block_boundary() {
        // 100-bit header exercises the multi-u64 path.
        let mut w = Wildcard::any(100);
        w.set_bit(0, Some(true));
        w.set_bit(63, Some(false));
        w.set_bit(64, Some(true));
        w.set_bit(99, Some(true));
        assert_eq!(w.bit(0), Some(true));
        assert_eq!(w.bit(63), Some(false));
        assert_eq!(w.bit(64), Some(true));
        assert_eq!(w.bit(99), Some(true));
        assert_eq!(w.bit(50), None);
        assert_eq!(w.exact_bits(), 4);

        let other = {
            let mut o = Wildcard::any(100);
            o.set_bit(64, Some(false));
            o
        };
        assert!(w.intersect(&other).is_none());
    }

    #[test]
    fn set_bit_back_to_wildcard() {
        let mut w = Wildcard::exact(4, 0b1111);
        w.set_bit(2, None);
        assert_eq!(w.bit(2), None);
        assert_eq!(w.exact_bits(), 3);
        assert!(w.matches_concrete(0b1101));
        assert!(w.matches_concrete(0b1111));
    }

    #[test]
    #[should_panic(expected = "intersect: widths")]
    fn width_mismatch_panics() {
        let a = Wildcard::any(4);
        let b = Wildcard::any(8);
        a.intersect(&b);
    }

    /// Brute-force set semantics of a small-width wildcard.
    fn members(w: &Wildcard) -> Vec<u64> {
        (0..(1u64 << w.width()))
            .filter(|&h| w.matches_concrete(h))
            .collect()
    }

    #[test]
    fn difference_disjoint_returns_self() {
        let a = Wildcard::from_str_bits("1***").unwrap();
        let b = Wildcard::from_str_bits("0***").unwrap();
        assert_eq!(a.difference(&b), vec![a.clone()]);
    }

    #[test]
    fn difference_of_subset_is_empty() {
        let narrow = Wildcard::from_str_bits("101*").unwrap();
        let wide = Wildcard::from_str_bits("10**").unwrap();
        assert!(narrow.difference(&wide).is_empty());
        assert!(narrow.difference(&narrow).is_empty());
    }

    #[test]
    fn difference_pieces_are_disjoint_and_exact() {
        for (a, b) in [
            ("****", "10*1"),
            ("1***", "1*00"),
            ("**0*", "1***"),
            ("*0*1", "00**"),
        ] {
            let a = Wildcard::from_str_bits(a).unwrap();
            let b = Wildcard::from_str_bits(b).unwrap();
            let pieces = a.difference(&b);
            // Pairwise disjoint.
            for (i, p) in pieces.iter().enumerate() {
                for q in &pieces[i + 1..] {
                    assert!(!p.overlaps(q), "{p} overlaps {q}");
                }
            }
            // Union is exactly a \ b.
            let mut got: Vec<u64> = pieces.iter().flat_map(members).collect();
            got.sort_unstable();
            let want: Vec<u64> = members(&a)
                .into_iter()
                .filter(|h| !b.matches_concrete(*h))
                .collect();
            assert_eq!(got, want, "{a} \\ {b}");
        }
    }

    #[test]
    fn subtract_all_and_covers_agree_with_brute_force() {
        let target = Wildcard::from_str_bits("1***").unwrap();
        let halves = [
            Wildcard::from_str_bits("10**").unwrap(),
            Wildcard::from_str_bits("11**").unwrap(),
        ];
        assert!(target.subtract_all(&halves).is_empty());
        assert!(covers(&halves, &target));
        // Remove one quarter: residual is exactly that quarter.
        let partial = [
            Wildcard::from_str_bits("10**").unwrap(),
            Wildcard::from_str_bits("110*").unwrap(),
        ];
        assert!(!covers(&partial, &target));
        let residual = target.subtract_all(&partial);
        let mut got: Vec<u64> = residual.iter().flat_map(members).collect();
        got.sort_unstable();
        assert_eq!(got, members(&Wildcard::from_str_bits("111*").unwrap()));
        // Covering nothing covers only the empty set.
        assert!(!covers(&[], &target));
    }

    #[test]
    fn representative_is_a_member() {
        for s in ["10**0101", "********", "11111111", "1*0*1*0*"] {
            let w = Wildcard::from_str_bits(s).unwrap();
            assert!(w.matches_concrete(w.representative()), "{s}");
        }
        assert_eq!(
            Wildcard::from_str_bits("1*1*").unwrap().representative(),
            0b1010
        );
    }

    #[test]
    fn display_of_zero_width() {
        assert_eq!(format!("{}", Wildcard::any(0)), "<empty>");
    }

    #[test]
    fn planes_round_trip() {
        for s in ["10**0101", "********", "11111111", "1*0*1*0*"] {
            let w = Wildcard::from_str_bits(s).unwrap();
            let (m, v) = w.planes();
            let back = Wildcard::from_planes(8, m, v).unwrap();
            assert_eq!(w, back, "{s}");
        }
        // Multi-block widths too.
        let mut wide = Wildcard::any(100);
        wide.set_bit(0, Some(true));
        wide.set_bit(99, Some(false));
        let (m, v) = wide.planes();
        assert_eq!(Wildcard::from_planes(100, m, v).unwrap(), wide);
    }

    #[test]
    fn from_planes_normalizes_garbage() {
        // Value bits on wildcarded positions and tail bits beyond width
        // must be scrubbed.
        let w = Wildcard::from_planes(4, &[0xF000_0000_0000_0000], &[!0u64]).unwrap();
        assert_eq!(format!("{w}"), "1111");
        let w2 = Wildcard::from_planes(4, &[0], &[!0u64]).unwrap();
        assert!(w2.is_any());
        assert_eq!(w2, Wildcard::any(4));
    }

    #[test]
    fn from_planes_validates_lengths() {
        assert!(matches!(
            Wildcard::from_planes(100, &[0], &[0]),
            Err(HeaderSpaceError::WidthMismatch { .. })
        ));
    }
}
