//! Ternary header-space algebra for the FOCES reproduction.
//!
//! FOCES builds its flow-counter matrix from *logical flows*: equivalence
//! classes of packets that traverse the same set of rules (paper §III-B,
//! following ATPG). Computing those classes requires symbolic packet headers
//! where each bit is `0`, `1`, or `*` (wildcard), together with three
//! operations:
//!
//! * **intersection** — which packets match both a symbolic header and a
//!   rule's match field;
//! * **subset tests** — is one region contained in another (used when
//!   higher-priority rules shadow lower ones);
//! * **rewrite** — apply a rule's set-field actions to a symbolic header;
//! * **subtraction** — the residual of a region after removing others
//!   ([`Wildcard::difference`], [`Wildcard::subtract_all`], [`covers`]),
//!   the exact-coverage oracle behind static rule-table verification
//!   (dead-rule detection, loop/blackhole counterexamples).
//!
//! The [`Wildcard`] type implements all three over an arbitrary bit width,
//! packed two-planes-per-bit into `u64` blocks (a `mask` plane marking exact
//! bits and a `value` plane holding their values).
//!
//! # Example
//!
//! ```
//! use foces_headerspace::Wildcard;
//!
//! # fn main() -> Result<(), foces_headerspace::HeaderSpaceError> {
//! // 8-bit headers; rule matches 101*_****.
//! let rule = Wildcard::from_str_bits("101*****")?;
//! let any = Wildcard::any(8);
//! let region = any.intersect(&rule).expect("non-empty");
//! assert!(region.matches_concrete(0b1011_0000));
//! assert!(!region.matches_concrete(0b0011_0000));
//! # Ok(())
//! # }
//! ```

mod wildcard;

pub use wildcard::{covers, HeaderSpaceError, Wildcard};
