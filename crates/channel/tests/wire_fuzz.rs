//! Property tests for the wire format: arbitrary bytes never panic the
//! decoders, and arbitrary well-formed messages round-trip bit-exactly.
//! A control channel is a security boundary; its parser gets fuzzed.

use bytes::Bytes;
use foces_channel::{ControllerMsg, SwitchMsg, WireRule};
use foces_dataplane::Action;
use foces_headerspace::Wildcard;
use foces_net::Port;
use proptest::prelude::*;

fn arbitrary_wildcard() -> impl Strategy<Value = Wildcard> {
    (1usize..100, proptest::collection::vec(0u8..3, 100)).prop_map(|(width, tri)| {
        let mut w = Wildcard::any(width);
        for (pos, t) in tri.iter().take(width).enumerate() {
            w.set_bit(
                pos,
                match t {
                    0 => Some(false),
                    1 => Some(true),
                    _ => None,
                },
            );
        }
        w
    })
}

fn arbitrary_rule() -> impl Strategy<Value = WireRule> {
    (
        arbitrary_wildcard(),
        any::<u16>(),
        prop_oneof![
            Just(Action::Drop),
            (0usize..1000).prop_map(|p| Action::Forward(Port(p)))
        ],
        0.0f64..1e12,
    )
        .prop_map(|(match_fields, priority, action, counter)| WireRule {
            match_fields,
            priority,
            action,
            counter,
        })
}

proptest! {
    /// Random bytes must decode to Err, never panic.
    #[test]
    fn random_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let bytes = Bytes::from(data);
        let _ = ControllerMsg::decode(bytes.clone());
        let _ = SwitchMsg::decode(bytes);
    }

    /// Bit-flipped valid messages must decode to Err or to a *different*
    /// well-formed message — never panic.
    #[test]
    fn bit_flips_never_panic(
        counters in proptest::collection::vec(0.0f64..1e9, 0..16),
        generation in any::<u64>(),
        flip_byte in 0usize..64,
        flip_bit in 0u8..8,
    ) {
        let msg = SwitchMsg::StatsReply { xid: 7, generation, counters };
        let mut bytes = msg.encode().to_vec();
        let idx = flip_byte % bytes.len();
        bytes[idx] ^= 1 << flip_bit;
        let _ = SwitchMsg::decode(Bytes::from(bytes));
    }

    /// Arbitrary stats replies round-trip.
    #[test]
    fn stats_replies_round_trip(
        xid in any::<u32>(),
        generation in any::<u64>(),
        counters in proptest::collection::vec(0.0f64..1e15, 0..64),
    ) {
        let msg = SwitchMsg::StatsReply { xid, generation, counters };
        prop_assert_eq!(SwitchMsg::decode(msg.encode()).unwrap(), msg);
    }

    /// Arbitrary table dumps (arbitrary widths, priorities, actions)
    /// round-trip.
    #[test]
    fn table_dumps_round_trip(
        xid in any::<u32>(),
        rules in proptest::collection::vec(arbitrary_rule(), 0..8),
    ) {
        let msg = SwitchMsg::TableDumpReply { xid, rules };
        prop_assert_eq!(SwitchMsg::decode(msg.encode()).unwrap(), msg);
    }

    /// Both controller → switch requests round-trip for every xid.
    #[test]
    fn controller_requests_round_trip(xid in any::<u32>(), dump in any::<bool>()) {
        let msg = if dump {
            ControllerMsg::TableDumpRequest { xid }
        } else {
            ControllerMsg::StatsRequest { xid }
        };
        prop_assert_eq!(ControllerMsg::decode(msg.encode()).unwrap(), msg);
    }

    /// Every strict prefix of a valid encoding decodes to Err (a
    /// truncated frame is not silently accepted) and never panics.
    #[test]
    fn truncated_switch_frames_decode_to_err(
        xid in any::<u32>(),
        generation in any::<u64>(),
        counters in proptest::collection::vec(0.0f64..1e15, 1..32),
        cut in any::<proptest::sample::Index>(),
    ) {
        let full = SwitchMsg::StatsReply { xid, generation, counters }
            .encode()
            .to_vec();
        let keep = cut.index(full.len()); // 0..len, always a strict prefix
        let res = SwitchMsg::decode(Bytes::from(full[..keep].to_vec()));
        prop_assert!(res.is_err(), "prefix of {keep}/{} bytes decoded", full.len());
    }

    /// Same for controller requests: truncation is always an error.
    #[test]
    fn truncated_controller_frames_decode_to_err(
        xid in any::<u32>(),
        cut in any::<proptest::sample::Index>(),
    ) {
        let full = ControllerMsg::TableDumpRequest { xid }.encode().to_vec();
        let keep = cut.index(full.len());
        let res = ControllerMsg::decode(Bytes::from(full[..keep].to_vec()));
        prop_assert!(res.is_err(), "prefix of {keep}/{} bytes decoded", full.len());
    }

    /// Cross-decoding: a switch reply fed to the controller-side decoder
    /// (and vice versa) must return Err or a message, never panic.
    #[test]
    fn cross_direction_decoding_never_panics(
        xid in any::<u32>(),
        generation in any::<u64>(),
        counters in proptest::collection::vec(0.0f64..1e9, 0..16),
    ) {
        let reply = SwitchMsg::StatsReply { xid, generation, counters }.encode();
        let _ = ControllerMsg::decode(reply);
        let request = ControllerMsg::StatsRequest { xid }.encode();
        let _ = SwitchMsg::decode(request);
    }
}
