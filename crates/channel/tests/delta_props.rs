//! Property tests for [`DeltaTracker`]: the layout of the counter vector
//! can change between epochs (rules added, FCM rebuilt, switches lost),
//! and the tracker must never difference an index against history that
//! belonged to a *different* vector layout — in particular, after the
//! vector shrinks and then regrows, the regrown tail must be treated as
//! a fresh start, not differenced against the stale pre-shrink tail.

use foces_channel::DeltaTracker;
use proptest::prelude::*;

fn counters(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0f64..1e12, 0..max_len)
}

proptest! {
    /// The delta vector always has the snapshot's length, regardless of
    /// what lengths came before.
    #[test]
    fn output_length_tracks_the_snapshot(
        snaps in proptest::collection::vec(counters(32), 1..8),
    ) {
        let mut t = DeltaTracker::new();
        for s in &snaps {
            prop_assert_eq!(t.delta(s).len(), s.len());
        }
    }

    /// The first delta is the snapshot itself (no history yet).
    #[test]
    fn first_delta_is_the_snapshot(s in counters(64)) {
        let mut t = DeltaTracker::new();
        prop_assert_eq!(t.delta(&s), s);
    }

    /// With monotonically growing counters the delta is the elementwise
    /// difference, exactly.
    #[test]
    fn monotone_counters_difference_exactly(
        base in counters(32),
        grow in proptest::collection::vec(0.0f64..1e9, 0..32),
    ) {
        let mut t = DeltaTracker::new();
        t.delta(&base);
        let n = base.len().min(grow.len());
        let next: Vec<f64> = (0..n).map(|i| base[i] + grow[i]).collect();
        let d = t.delta(&next);
        for i in 0..n {
            // (base + grow) - base rounds at the ulp of `base`.
            let tol = 1e-9 + base[i].abs() * 1e-12;
            prop_assert!((d[i] - grow[i]).abs() < tol, "index {i}: {} vs {}", d[i], grow[i]);
        }
    }

    /// Shrink, then regrow: the regrown tail must equal the raw snapshot
    /// values (fresh start), NOT the difference against the pre-shrink
    /// tail. A tracker that kept the old tail around would report
    /// `tail[i] - old_tail[i]` here.
    #[test]
    fn regrown_tail_is_fresh_not_differenced_against_stale_history(
        head in proptest::collection::vec(0.0f64..1e9, 1..16),
        old_tail in proptest::collection::vec(1.0f64..1e9, 1..16),
        new_tail in proptest::collection::vec(0.0f64..1e9, 1..16),
    ) {
        let mut t = DeltaTracker::new();
        let mut long = head.clone();
        long.extend_from_slice(&old_tail);
        t.delta(&long);          // full layout
        t.delta(&head);          // shrink: tail rules disappeared
        let mut regrown = head.clone();
        regrown.extend_from_slice(&new_tail);
        let d = t.delta(&regrown); // regrow with a fresh tail
        prop_assert_eq!(d.len(), regrown.len());
        // Head was unchanged between the last two snapshots → delta 0.
        for (i, hd) in d.iter().take(head.len()).enumerate() {
            prop_assert!(hd.abs() < 1e-9, "head index {} moved: {}", i, hd);
        }
        // Tail indices were absent from the previous snapshot → raw value.
        for (i, &v) in new_tail.iter().enumerate() {
            let j = head.len() + i;
            prop_assert!(
                (d[j] - v).abs() < 1e-9,
                "tail index {j}: got {}, want fresh {v}",
                d[j]
            );
        }
    }

    /// A counter that goes backwards (switch reboot) restarts from the
    /// raw value instead of producing a negative delta.
    #[test]
    fn backwards_counters_restart_fresh(
        before in 1.0f64..1e9,
        after in 0.0f64..1e9,
    ) {
        prop_assume!(after < before);
        let mut t = DeltaTracker::new();
        t.delta(&[before]);
        let d = t.delta(&[after]);
        prop_assert_eq!(d, vec![after]);
        prop_assert!(d[0] >= 0.0);
    }

    /// `reset` really forgets: the next delta is the snapshot itself.
    #[test]
    fn reset_forgets_all_history(a in counters(32), b in counters(32)) {
        let mut t = DeltaTracker::new();
        t.delta(&a);
        t.reset();
        prop_assert_eq!(t.delta(&b), b);
    }

    /// Deltas are never negative, whatever the snapshot sequence.
    #[test]
    fn deltas_are_never_negative(
        snaps in proptest::collection::vec(counters(16), 1..10),
    ) {
        let mut t = DeltaTracker::new();
        for s in &snaps {
            for (i, d) in t.delta(s).iter().enumerate() {
                prop_assert!(*d >= 0.0, "negative delta {} at index {}", d, i);
            }
        }
    }

    /// `delta_report` flags exactly the rows whose counter went backwards
    /// while present in both snapshots — reset/wraparound detection.
    #[test]
    fn reset_rows_are_exactly_the_backwards_rows(
        a in proptest::collection::vec(0.0f64..1e9, 1..24),
        b in proptest::collection::vec(0.0f64..1e9, 1..24),
    ) {
        let mut t = DeltaTracker::new();
        t.delta(&a);
        let rep = t.delta_report(&b);
        let expected: Vec<usize> = b
            .iter()
            .enumerate()
            .filter(|&(i, &now)| a.get(i).is_some_and(|&before| now < before))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(&rep.resets, &expected);
        // Reset rows restart from the raw snapshot value.
        for &i in &rep.resets {
            prop_assert!((rep.deltas[i] - b[i]).abs() < 1e-9);
        }
    }

    /// Shrink + reset interleaving: after the vector shrinks, a head row
    /// that ALSO went backwards is still detected as a reset, while the
    /// regrown tail is a layout change — fresh rows, never flagged.
    #[test]
    fn shrink_then_reset_then_regrow_flags_only_surviving_rows(
        head in proptest::collection::vec(1.0f64..1e9, 2..12),
        old_tail in proptest::collection::vec(0.0f64..1e9, 1..12),
        new_tail in proptest::collection::vec(0.0f64..1e9, 1..12),
        reset_idx in 0usize..12,
    ) {
        let reset_idx = reset_idx % head.len();
        let mut t = DeltaTracker::new();
        let mut long = head.clone();
        long.extend_from_slice(&old_tail);
        t.delta(&long);          // full layout
        t.delta(&head);          // shrink: tail rules disappeared
        // Regrow, with one surviving head row rebooted to below its
        // previous reading.
        let mut regrown = head.clone();
        regrown[reset_idx] = head[reset_idx] / 2.0;
        regrown.extend_from_slice(&new_tail);
        let rep = t.delta_report(&regrown);
        prop_assert_eq!(rep.deltas.len(), regrown.len());
        // Exactly the rebooted head row is flagged; the fresh tail is not.
        prop_assert_eq!(&rep.resets, &vec![reset_idx]);
        prop_assert!((rep.deltas[reset_idx] - regrown[reset_idx]).abs() < 1e-9);
        for (i, &v) in new_tail.iter().enumerate() {
            let j = head.len() + i;
            prop_assert!((rep.deltas[j] - v).abs() < 1e-9, "tail row {j} not fresh");
        }
        // Nothing is ever negative, reboots included.
        for d in &rep.deltas {
            prop_assert!(*d >= 0.0);
        }
    }

    /// Interleaving `reset()` with shrinks and reboots: an explicit reset
    /// clears history, so the next report never flags resets even when
    /// values went backwards relative to pre-reset snapshots.
    #[test]
    fn explicit_reset_forgets_reset_detection_history(
        a in proptest::collection::vec(1.0f64..1e9, 1..16),
        b in proptest::collection::vec(0.0f64..1e9, 1..16),
    ) {
        let mut t = DeltaTracker::new();
        t.delta(&a);
        t.reset();
        let rep = t.delta_report(&b);
        prop_assert!(rep.resets.is_empty(), "fresh history cannot reset");
        prop_assert_eq!(&rep.deltas, &b);
    }

    /// Corrupt negative snapshot values are clamped to zero on fresh
    /// starts and reboots — the never-negative invariant holds even for
    /// adversarial inputs outside the counters' domain.
    #[test]
    fn negative_snapshots_never_produce_negative_fresh_starts(
        before in 1.0f64..1e9,
        corrupt in -1e9f64..-1.0,
    ) {
        let mut t = DeltaTracker::new();
        t.delta(&[before]);
        let rep = t.delta_report(&[corrupt]);
        prop_assert_eq!(rep.resets, vec![0]);
        prop_assert_eq!(rep.deltas, vec![0.0]);
    }
}
