//! Per-switch channel endpoints.
//!
//! An agent is the software on a switch that answers the controller's
//! requests — the piece the adversary owns on a compromised switch.

use crate::message::{ControllerMsg, SwitchMsg, WireRule};
use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use std::collections::HashMap;

/// A switch's side of the control channel: turns a decoded request into a
/// reply, given (read) access to the local data-plane state.
///
/// Implementations decide what to *report* — honesty is a property of the
/// agent, not of the channel.
pub trait SwitchAgent {
    /// The switch this agent runs on.
    fn switch(&self) -> SwitchId;

    /// Answers one controller request.
    fn handle(&self, dp: &DataPlane, msg: &ControllerMsg) -> SwitchMsg;
}

/// The well-behaved agent: reports true counters and the live flow table.
#[derive(Debug, Clone, Copy)]
pub struct HonestAgent {
    switch: SwitchId,
}

impl HonestAgent {
    /// Creates an honest agent for `switch`.
    pub fn new(switch: SwitchId) -> Self {
        HonestAgent { switch }
    }
}

impl SwitchAgent for HonestAgent {
    fn switch(&self) -> SwitchId {
        self.switch
    }

    fn handle(&self, dp: &DataPlane, msg: &ControllerMsg) -> SwitchMsg {
        match msg {
            ControllerMsg::StatsRequest { xid } => SwitchMsg::StatsReply {
                xid: *xid,
                generation: dp.table_generation(self.switch),
                counters: (0..dp.table(self.switch).len())
                    .map(|i| dp.counter(self.switch, i))
                    .collect(),
            },
            ControllerMsg::TableDumpRequest { xid } => SwitchMsg::TableDumpReply {
                xid: *xid,
                rules: dp
                    .table(self.switch)
                    .iter()
                    .map(|(i, r)| WireRule::from_rule(r, dp.counter(self.switch, i)))
                    .collect(),
            },
        }
    }
}

/// The compromised agent of the paper's threat model (§II-B): answers
/// table dumps with the **original** rules (as installed by the
/// controller, before the adversary rewrote actions) and overlays forged
/// counter values for chosen rules — "the adversary … can modify the
/// counters of rules at compromised switches, so as to pretend to have
/// correctly forwarded packets."
#[derive(Debug, Clone)]
pub struct ForgingAgent {
    switch: SwitchId,
    /// The table as the controller installed it (what dumps will claim).
    original_rules: Vec<foces_dataplane::Rule>,
    /// Rule-index → counter value to report instead of the truth.
    forged_counters: HashMap<usize, f64>,
}

impl ForgingAgent {
    /// Creates a forging agent. `original_rules` is the switch's table as
    /// the controller knows it (snapshot it *before* injecting anomalies).
    pub fn new(switch: SwitchId, original_rules: Vec<foces_dataplane::Rule>) -> Self {
        ForgingAgent {
            switch,
            original_rules,
            forged_counters: HashMap::new(),
        }
    }

    /// Forges the reported counter of rule `index`.
    pub fn forge_counter(&mut self, index: usize, value: f64) {
        self.forged_counters.insert(index, value);
    }

    fn reported_counter(&self, dp: &DataPlane, index: usize) -> f64 {
        self.forged_counters
            .get(&index)
            .copied()
            .unwrap_or_else(|| dp.counter(self.switch, index))
    }
}

impl SwitchAgent for ForgingAgent {
    fn switch(&self) -> SwitchId {
        self.switch
    }

    fn handle(&self, dp: &DataPlane, msg: &ControllerMsg) -> SwitchMsg {
        match msg {
            // The generation stamp is copied from the data plane even by
            // the forging agent: claiming an unacknowledged generation
            // would only draw the collector's attention.
            ControllerMsg::StatsRequest { xid } => SwitchMsg::StatsReply {
                xid: *xid,
                generation: dp.table_generation(self.switch),
                counters: (0..dp.table(self.switch).len())
                    .map(|i| self.reported_counter(dp, i))
                    .collect(),
            },
            ControllerMsg::TableDumpRequest { xid } => SwitchMsg::TableDumpReply {
                xid: *xid,
                rules: self
                    .original_rules
                    .iter()
                    .enumerate()
                    .map(|(i, r)| WireRule::from_rule(r, self.reported_counter(dp, i)))
                    .collect(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_dataplane::{Action, LossModel, Rule, HEADER_WIDTH};
    use foces_headerspace::Wildcard;
    use foces_net::{Node, Port, Topology};

    fn plane() -> (DataPlane, SwitchId, foces_net::HostId) {
        let mut t = Topology::new();
        let s0 = t.add_switch("s0");
        let s1 = t.add_switch("s1");
        let h0 = t.add_host();
        let h1 = t.add_host();
        t.connect(Node::Switch(s0), Node::Switch(s1)).unwrap();
        t.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        t.connect(Node::Host(h1), Node::Switch(s1)).unwrap();
        let mut dp = DataPlane::new(t);
        dp.install(
            s0,
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(0))),
        );
        dp.install(
            s1,
            Rule::new(Wildcard::any(HEADER_WIDTH), 0, Action::Forward(Port(1))),
        );
        (dp, s0, h0)
    }

    #[test]
    fn honest_agent_reports_truth() {
        let (mut dp, s0, h0) = plane();
        dp.inject(h0, 0, 500.0, &mut LossModel::none());
        let agent = HonestAgent::new(s0);
        let SwitchMsg::StatsReply {
            counters,
            xid,
            generation,
        } = agent.handle(&dp, &ControllerMsg::StatsRequest { xid: 9 })
        else {
            panic!("wrong reply type")
        };
        assert_eq!(xid, 9);
        assert_eq!(generation, 0, "provisioning-time generation");
        assert_eq!(counters, vec![500.0]);
        let SwitchMsg::TableDumpReply { rules, .. } =
            agent.handle(&dp, &ControllerMsg::TableDumpRequest { xid: 1 })
        else {
            panic!("wrong reply type")
        };
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].action, Action::Forward(Port(0)));
    }

    #[test]
    fn agents_stamp_the_acknowledged_table_generation() {
        let (mut dp, s0, _) = plane();
        dp.set_table_generation(s0, 3);
        let original: Vec<Rule> = dp.table(s0).iter().map(|(_, r)| r.clone()).collect();
        for agent in [
            Box::new(HonestAgent::new(s0)) as Box<dyn SwitchAgent>,
            Box::new(ForgingAgent::new(s0, original)),
        ] {
            let SwitchMsg::StatsReply { generation, .. } =
                agent.handle(&dp, &ControllerMsg::StatsRequest { xid: 1 })
            else {
                panic!("wrong reply type")
            };
            assert_eq!(generation, 3);
        }
    }

    #[test]
    fn forging_agent_reports_original_table_after_compromise() {
        let (mut dp, s0, h0) = plane();
        // Snapshot the original table, then compromise the rule.
        let original: Vec<Rule> = dp.table(s0).iter().map(|(_, r)| r.clone()).collect();
        dp.modify_rule_action(
            foces_dataplane::RuleRef {
                switch: s0,
                index: 0,
            },
            Action::Drop,
        )
        .unwrap();
        dp.inject(h0, 0, 500.0, &mut LossModel::none());
        let agent = ForgingAgent::new(s0, original);
        let SwitchMsg::TableDumpReply { rules, .. } =
            agent.handle(&dp, &ControllerMsg::TableDumpRequest { xid: 2 })
        else {
            panic!("wrong reply type")
        };
        // The dump claims the ORIGINAL forward action, not the drop.
        assert_eq!(rules[0].action, Action::Forward(Port(0)));
    }

    #[test]
    fn forged_counters_override_truth() {
        let (mut dp, s0, h0) = plane();
        dp.inject(h0, 0, 500.0, &mut LossModel::none());
        let original: Vec<Rule> = dp.table(s0).iter().map(|(_, r)| r.clone()).collect();
        let mut agent = ForgingAgent::new(s0, original);
        agent.forge_counter(0, 9999.0);
        let SwitchMsg::StatsReply { counters, .. } =
            agent.handle(&dp, &ControllerMsg::StatsRequest { xid: 3 })
        else {
            panic!("wrong reply type")
        };
        assert_eq!(counters, vec![9999.0]);
    }
}
