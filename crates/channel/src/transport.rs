//! Delivery-policy hook for the control channel.
//!
//! The collector and any runtime built on top of it talk to switches
//! through a [`Transport`]: a policy deciding whether (and how late) each
//! request/reply exchange completes. The wire codec is *not* negotiable —
//! every delivered exchange still round-trips through
//! [`ControllerMsg::encode`] / [`SwitchMsg::decode`] via [`wire_exchange`]
//! — only delivery is. [`PerfectTransport`] is the ideal channel the rest
//! of the workspace assumed before this hook existed; fault-injecting
//! transports (latency, jitter, drops, offline windows) live in
//! `foces-runtime`, which owns the randomness.

use crate::agent::SwitchAgent;
use crate::collector::ChannelError;
use crate::message::{ControllerMsg, SwitchMsg};
use foces_dataplane::DataPlane;

/// Outcome of one attempted request/reply exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The reply arrived, `latency_ms` of simulated channel time after the
    /// request was sent.
    Delivered {
        /// The decoded reply.
        reply: SwitchMsg,
        /// Simulated round-trip latency in milliseconds.
        latency_ms: f64,
    },
    /// The request or the reply was lost in flight; retrying may succeed.
    Dropped,
    /// The switch is offline (crashed or partitioned); retrying within the
    /// same epoch will not help.
    Offline,
}

/// A [`Delivery`] stamped with the simulated instant the reply lands.
///
/// The asynchronous face of the channel: an event-driven consumer sends a
/// request at `now_ms`, gets back *when* the outcome materialises, and
/// schedules a future event instead of blocking on the exchange. Lost and
/// offline outcomes carry the instant the sender can *know* the attempt
/// failed (i.e. when its local timeout machinery may fire), which for
/// simulated channels is the send instant itself.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedDelivery {
    /// What happened to the exchange.
    pub delivery: Delivery,
    /// Absolute simulated time (ms) at which `delivery` is observable at
    /// the controller: arrival time for a delivered reply, the send
    /// instant for drops/offline.
    pub at_ms: f64,
}

/// A delivery policy for controller ↔ switch exchanges.
///
/// `exchange` takes `&mut self` so implementations can hold RNG state,
/// in-flight reorder buffers, or per-switch clocks. Errors are reserved
/// for *protocol* failures (malformed bytes); loss is data
/// ([`Delivery::Dropped`] / [`Delivery::Offline`]), not an error.
pub trait Transport {
    /// Attempts one request/reply exchange with `agent`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] only for wire-level protocol violations.
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError>;

    /// Timestamped exchange for event-driven consumers: the request is
    /// sent at absolute simulated time `now_ms` and the returned
    /// [`TimedDelivery`] says when its outcome lands. The default adapts
    /// [`Transport::exchange`] by offsetting the sampled round-trip
    /// latency from `now_ms`; transports modelling per-link serialization
    /// or queueing override this to make arrival depend on channel state
    /// at the send instant.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] only for wire-level protocol violations.
    fn exchange_at(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
        now_ms: f64,
    ) -> Result<TimedDelivery, ChannelError> {
        let delivery = self.exchange(dp, agent, msg)?;
        let at_ms = match &delivery {
            Delivery::Delivered { latency_ms, .. } => now_ms + latency_ms,
            Delivery::Dropped | Delivery::Offline => now_ms,
        };
        Ok(TimedDelivery { delivery, at_ms })
    }

    /// Advances simulated time to `epoch`. Time-dependent policies
    /// (offline windows, crash-restart cycles) override this; the default
    /// is a no-op.
    fn on_epoch(&mut self, _epoch: u64) {}
}

/// The ideal channel: always delivers, zero latency — but still pushes
/// every message through the wire codec, so the format is exercised on
/// every exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectTransport;

impl Transport for PerfectTransport {
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError> {
        Ok(Delivery::Delivered {
            reply: wire_exchange(dp, agent, msg)?,
            latency_ms: 0.0,
        })
    }
}

/// One full wire round-trip: encode the request, decode it on the switch
/// side, let the agent answer, encode the reply, decode it on the
/// controller side. Transports that deliver at all should deliver through
/// this, so no simulated path skips the codec.
///
/// # Errors
///
/// Returns [`ChannelError::Wire`] if either direction fails to decode.
pub fn wire_exchange(
    dp: &DataPlane,
    agent: &dyn SwitchAgent,
    msg: &ControllerMsg,
) -> Result<SwitchMsg, ChannelError> {
    let decoded_req = ControllerMsg::decode(msg.encode())?;
    let reply = agent.handle(dp, &decoded_req);
    Ok(SwitchMsg::decode(reply.encode())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HonestAgent;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    #[test]
    fn perfect_transport_delivers_the_truth() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let sw = foces_net::SwitchId(0);
        let agent = HonestAgent::new(sw);
        let mut t = PerfectTransport;
        t.on_epoch(3); // default hook: no-op, must not panic
        let d = t
            .exchange(
                &dep.dataplane,
                &agent,
                &ControllerMsg::StatsRequest { xid: 5 },
            )
            .unwrap();
        let Delivery::Delivered { reply, latency_ms } = d else {
            panic!("perfect transport dropped")
        };
        assert_eq!(latency_ms, 0.0);
        let SwitchMsg::StatsReply { xid, counters, .. } = reply else {
            panic!("wrong reply type")
        };
        assert_eq!(xid, 5);
        let expected: Vec<f64> = (0..dep.dataplane.table(sw).len())
            .map(|i| dep.dataplane.counter(sw, i))
            .collect();
        assert_eq!(counters, expected);
    }

    #[test]
    fn default_exchange_at_offsets_latency_from_now() {
        let topo = ring(3);
        let flows = uniform_flows(&topo, 500.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let agent = HonestAgent::new(foces_net::SwitchId(1));
        let mut t = PerfectTransport;
        let td = t
            .exchange_at(
                &dep.dataplane,
                &agent,
                &ControllerMsg::StatsRequest { xid: 9 },
                123.5,
            )
            .unwrap();
        // PerfectTransport has zero latency, so the reply lands at send time.
        assert_eq!(td.at_ms, 123.5);
        assert!(matches!(td.delivery, Delivery::Delivered { .. }));
    }
}
