//! Delivery-policy hook for the control channel.
//!
//! The collector and any runtime built on top of it talk to switches
//! through a [`Transport`]: a policy deciding whether (and how late) each
//! request/reply exchange completes. The wire codec is *not* negotiable —
//! every delivered exchange still round-trips through
//! [`ControllerMsg::encode`] / [`SwitchMsg::decode`] via [`wire_exchange`]
//! — only delivery is. [`PerfectTransport`] is the ideal channel the rest
//! of the workspace assumed before this hook existed; fault-injecting
//! transports (latency, jitter, drops, offline windows) live in
//! `foces-runtime`, which owns the randomness.

use crate::agent::SwitchAgent;
use crate::collector::ChannelError;
use crate::message::{ControllerMsg, SwitchMsg};
use foces_dataplane::DataPlane;

/// Outcome of one attempted request/reply exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum Delivery {
    /// The reply arrived, `latency_ms` of simulated channel time after the
    /// request was sent.
    Delivered {
        /// The decoded reply.
        reply: SwitchMsg,
        /// Simulated round-trip latency in milliseconds.
        latency_ms: f64,
    },
    /// The request or the reply was lost in flight; retrying may succeed.
    Dropped,
    /// The switch is offline (crashed or partitioned); retrying within the
    /// same epoch will not help.
    Offline,
}

/// A delivery policy for controller ↔ switch exchanges.
///
/// `exchange` takes `&mut self` so implementations can hold RNG state,
/// in-flight reorder buffers, or per-switch clocks. Errors are reserved
/// for *protocol* failures (malformed bytes); loss is data
/// ([`Delivery::Dropped`] / [`Delivery::Offline`]), not an error.
pub trait Transport {
    /// Attempts one request/reply exchange with `agent`.
    ///
    /// # Errors
    ///
    /// Returns [`ChannelError`] only for wire-level protocol violations.
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError>;

    /// Advances simulated time to `epoch`. Time-dependent policies
    /// (offline windows, crash-restart cycles) override this; the default
    /// is a no-op.
    fn on_epoch(&mut self, _epoch: u64) {}
}

/// The ideal channel: always delivers, zero latency — but still pushes
/// every message through the wire codec, so the format is exercised on
/// every exchange.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfectTransport;

impl Transport for PerfectTransport {
    fn exchange(
        &mut self,
        dp: &DataPlane,
        agent: &dyn SwitchAgent,
        msg: &ControllerMsg,
    ) -> Result<Delivery, ChannelError> {
        Ok(Delivery::Delivered {
            reply: wire_exchange(dp, agent, msg)?,
            latency_ms: 0.0,
        })
    }
}

/// One full wire round-trip: encode the request, decode it on the switch
/// side, let the agent answer, encode the reply, decode it on the
/// controller side. Transports that deliver at all should deliver through
/// this, so no simulated path skips the codec.
///
/// # Errors
///
/// Returns [`ChannelError::Wire`] if either direction fails to decode.
pub fn wire_exchange(
    dp: &DataPlane,
    agent: &dyn SwitchAgent,
    msg: &ControllerMsg,
) -> Result<SwitchMsg, ChannelError> {
    let decoded_req = ControllerMsg::decode(msg.encode())?;
    let reply = agent.handle(dp, &decoded_req);
    Ok(SwitchMsg::decode(reply.encode())?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HonestAgent;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::LossModel;
    use foces_net::generators::ring;

    #[test]
    fn perfect_transport_delivers_the_truth() {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 1000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let sw = foces_net::SwitchId(0);
        let agent = HonestAgent::new(sw);
        let mut t = PerfectTransport;
        t.on_epoch(3); // default hook: no-op, must not panic
        let d = t
            .exchange(
                &dep.dataplane,
                &agent,
                &ControllerMsg::StatsRequest { xid: 5 },
            )
            .unwrap();
        let Delivery::Delivered { reply, latency_ms } = d else {
            panic!("perfect transport dropped")
        };
        assert_eq!(latency_ms, 0.0);
        let SwitchMsg::StatsReply { xid, counters, .. } = reply else {
            panic!("wrong reply type")
        };
        assert_eq!(xid, 5);
        let expected: Vec<f64> = (0..dep.dataplane.table(sw).len())
            .map(|i| dep.dataplane.counter(sw, i))
            .collect();
        assert_eq!(counters, expected);
    }
}
