//! Wire format for the control channel.
//!
//! A deliberately OpenFlow-flavoured binary encoding: every message is
//! `[type: u8][xid: u32][body…]`, integers big-endian, counters as `f64`
//! bits. Decoding is strict — trailing bytes, truncated bodies, and
//! unknown types are errors, never silently ignored (a control channel is
//! a security boundary).

use bytes::{Buf, BufMut, Bytes, BytesMut};
use foces_dataplane::{Action, Rule};
use foces_headerspace::Wildcard;
use foces_net::Port;
use std::error::Error;
use std::fmt;

/// Wire-format errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer ended before the message did.
    Truncated,
    /// Unknown message or action type byte.
    UnknownType(u8),
    /// A decoded field was semantically invalid.
    Invalid(String),
    /// Bytes remained after the message body.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "message truncated"),
            WireError::UnknownType(t) => write!(f, "unknown type byte {t:#04x}"),
            WireError::Invalid(msg) => write!(f, "invalid field: {msg}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for WireError {}

/// A rule as it crosses the wire in a table dump.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRule {
    /// Ternary match (width + planes on the wire).
    pub match_fields: Wildcard,
    /// Priority.
    pub priority: u16,
    /// Action (`0` = drop, `1 + port`).
    pub action: Action,
    /// The counter value reported alongside the rule.
    pub counter: f64,
}

impl WireRule {
    /// Builds a wire rule from a live rule and its counter.
    pub fn from_rule(rule: &Rule, counter: f64) -> Self {
        WireRule {
            match_fields: rule.match_fields().clone(),
            priority: rule.priority(),
            action: rule.action(),
            counter,
        }
    }
}

/// Controller → switch messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControllerMsg {
    /// Request all rule counters of the switch.
    StatsRequest {
        /// Transaction id echoed in the reply.
        xid: u32,
    },
    /// Request a full flow-table dump (rules + counters).
    TableDumpRequest {
        /// Transaction id echoed in the reply.
        xid: u32,
    },
}

/// Switch → controller messages.
#[derive(Debug, Clone, PartialEq)]
pub enum SwitchMsg {
    /// Counter values in table-index order.
    StatsReply {
        /// Echoed transaction id.
        xid: u32,
        /// The rule-table **generation** the switch acknowledges — the
        /// version stamp of the last control-plane update it applied. The
        /// collector compares it against the generation its FCM was built
        /// from to detect mid-epoch rule churn (the two-phase read).
        generation: u64,
        /// `counters[i]` belongs to rule index `i`.
        counters: Vec<f64>,
    },
    /// Full table dump in table-index order.
    TableDumpReply {
        /// Echoed transaction id.
        xid: u32,
        /// The rules as reported by the switch (possibly forged!).
        rules: Vec<WireRule>,
    },
}

const T_STATS_REQ: u8 = 0x01;
const T_DUMP_REQ: u8 = 0x02;
const T_STATS_REP: u8 = 0x81;
const T_DUMP_REP: u8 = 0x82;

const A_DROP: u8 = 0x00;
const A_FWD: u8 = 0x01;

impl ControllerMsg {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(5);
        match self {
            ControllerMsg::StatsRequest { xid } => {
                b.put_u8(T_STATS_REQ);
                b.put_u32(*xid);
            }
            ControllerMsg::TableDumpRequest { xid } => {
                b.put_u8(T_DUMP_REQ);
                b.put_u32(*xid);
            }
        }
        b.freeze()
    }

    /// Decodes from wire bytes (strict).
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let ty = take_u8(&mut buf)?;
        let xid = take_u32(&mut buf)?;
        let msg = match ty {
            T_STATS_REQ => ControllerMsg::StatsRequest { xid },
            T_DUMP_REQ => ControllerMsg::TableDumpRequest { xid },
            other => return Err(WireError::UnknownType(other)),
        };
        finish(&buf)?;
        Ok(msg)
    }
}

impl SwitchMsg {
    /// Encodes to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::new();
        match self {
            SwitchMsg::StatsReply {
                xid,
                generation,
                counters,
            } => {
                b.put_u8(T_STATS_REP);
                b.put_u32(*xid);
                b.put_u64(*generation);
                b.put_u32(counters.len() as u32);
                for c in counters {
                    b.put_f64(*c);
                }
            }
            SwitchMsg::TableDumpReply { xid, rules } => {
                b.put_u8(T_DUMP_REP);
                b.put_u32(*xid);
                b.put_u32(rules.len() as u32);
                for r in rules {
                    encode_rule(&mut b, r);
                }
            }
        }
        b.freeze()
    }

    /// Decodes from wire bytes (strict).
    ///
    /// # Errors
    ///
    /// See [`WireError`].
    pub fn decode(mut buf: Bytes) -> Result<Self, WireError> {
        let ty = take_u8(&mut buf)?;
        let xid = take_u32(&mut buf)?;
        let msg = match ty {
            T_STATS_REP => {
                let generation = take_u64(&mut buf)?;
                let n = take_u32(&mut buf)? as usize;
                let mut counters = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    counters.push(take_f64(&mut buf)?);
                }
                SwitchMsg::StatsReply {
                    xid,
                    generation,
                    counters,
                }
            }
            T_DUMP_REP => {
                let n = take_u32(&mut buf)? as usize;
                let mut rules = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    rules.push(decode_rule(&mut buf)?);
                }
                SwitchMsg::TableDumpReply { xid, rules }
            }
            other => return Err(WireError::UnknownType(other)),
        };
        finish(&buf)?;
        Ok(msg)
    }
}

fn encode_rule(b: &mut BytesMut, r: &WireRule) {
    b.put_u16(r.match_fields.width() as u16);
    let (mask, value) = r.match_fields.planes();
    for w in mask {
        b.put_u64(*w);
    }
    for w in value {
        b.put_u64(*w);
    }
    b.put_u16(r.priority);
    match r.action {
        Action::Drop => b.put_u8(A_DROP),
        Action::Forward(Port(p)) => {
            b.put_u8(A_FWD);
            b.put_u32(p as u32);
        }
    }
    b.put_f64(r.counter);
}

fn decode_rule(buf: &mut Bytes) -> Result<WireRule, WireError> {
    let width = take_u16(buf)? as usize;
    let blocks = width.div_ceil(64);
    let mut mask = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        mask.push(take_u64(buf)?);
    }
    let mut value = Vec::with_capacity(blocks);
    for _ in 0..blocks {
        value.push(take_u64(buf)?);
    }
    let match_fields = Wildcard::from_planes(width, &mask, &value)
        .map_err(|e| WireError::Invalid(e.to_string()))?;
    let priority = take_u16(buf)?;
    let action = match take_u8(buf)? {
        A_DROP => Action::Drop,
        A_FWD => Action::Forward(Port(take_u32(buf)? as usize)),
        other => return Err(WireError::UnknownType(other)),
    };
    let counter = take_f64(buf)?;
    Ok(WireRule {
        match_fields,
        priority,
        action,
        counter,
    })
}

fn take_u8(b: &mut Bytes) -> Result<u8, WireError> {
    if b.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u8())
}

fn take_u16(b: &mut Bytes) -> Result<u16, WireError> {
    if b.remaining() < 2 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u16())
}

fn take_u32(b: &mut Bytes) -> Result<u32, WireError> {
    if b.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u32())
}

fn take_u64(b: &mut Bytes) -> Result<u64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_u64())
}

fn take_f64(b: &mut Bytes) -> Result<f64, WireError> {
    if b.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(b.get_f64())
}

fn finish(b: &Bytes) -> Result<(), WireError> {
    if b.remaining() == 0 {
        Ok(())
    } else {
        Err(WireError::TrailingBytes(b.remaining()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_dataplane::HEADER_WIDTH;

    fn sample_rule() -> WireRule {
        WireRule {
            match_fields: Wildcard::prefix(HEADER_WIDTH, 0xDEAD_0000, 16).unwrap(),
            priority: 10,
            action: Action::Forward(Port(3)),
            counter: 1234.5,
        }
    }

    #[test]
    fn controller_messages_round_trip() {
        for msg in [
            ControllerMsg::StatsRequest { xid: 0 },
            ControllerMsg::StatsRequest { xid: u32::MAX },
            ControllerMsg::TableDumpRequest { xid: 7 },
        ] {
            let back = ControllerMsg::decode(msg.encode()).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn switch_messages_round_trip() {
        let msgs = [
            SwitchMsg::StatsReply {
                xid: 3,
                generation: 0,
                counters: vec![0.0, 1.5, f64::MAX],
            },
            SwitchMsg::StatsReply {
                xid: 4,
                generation: u64::MAX,
                counters: vec![],
            },
            SwitchMsg::TableDumpReply {
                xid: 5,
                rules: vec![
                    sample_rule(),
                    WireRule {
                        match_fields: Wildcard::any(HEADER_WIDTH),
                        priority: 0,
                        action: Action::Drop,
                        counter: 0.0,
                    },
                ],
            },
        ];
        for msg in msgs {
            let back = SwitchMsg::decode(msg.encode()).unwrap();
            assert_eq!(msg, back);
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        let full = SwitchMsg::TableDumpReply {
            xid: 9,
            rules: vec![sample_rule()],
        }
        .encode();
        for cut in 0..full.len() {
            let err = SwitchMsg::decode(full.slice(0..cut));
            assert!(err.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn stats_reply_truncation_detected_inside_the_generation_stamp() {
        let full = SwitchMsg::StatsReply {
            xid: 9,
            generation: 0xDEAD_BEEF_0BAD_F00D,
            counters: vec![1.0],
        }
        .encode();
        for cut in 0..full.len() {
            assert!(SwitchMsg::decode(full.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn generation_stamp_round_trips_at_the_extremes() {
        for generation in [0, 1, u64::MAX / 2, u64::MAX] {
            let msg = SwitchMsg::StatsReply {
                xid: 1,
                generation,
                counters: vec![2.5],
            };
            assert_eq!(SwitchMsg::decode(msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = ControllerMsg::StatsRequest { xid: 1 }.encode().to_vec();
        bytes.push(0xFF);
        assert!(matches!(
            ControllerMsg::decode(Bytes::from(bytes)),
            Err(WireError::TrailingBytes(1))
        ));
    }

    #[test]
    fn unknown_types_rejected() {
        let bytes = Bytes::from_static(&[0x77, 0, 0, 0, 1]);
        assert!(matches!(
            ControllerMsg::decode(bytes.clone()),
            Err(WireError::UnknownType(0x77))
        ));
        assert!(matches!(
            SwitchMsg::decode(bytes),
            Err(WireError::UnknownType(0x77))
        ));
    }

    #[test]
    fn cross_decoding_fails() {
        // A controller message is not a switch message and vice versa.
        let c = ControllerMsg::StatsRequest { xid: 1 }.encode();
        assert!(SwitchMsg::decode(c).is_err());
        let s = SwitchMsg::StatsReply {
            xid: 1,
            generation: 0,
            counters: vec![],
        }
        .encode();
        assert!(ControllerMsg::decode(s).is_err());
    }

    #[test]
    fn wire_rule_from_live_rule() {
        let rule = Rule::new(Wildcard::any(HEADER_WIDTH), 5, Action::Forward(Port(1)));
        let w = WireRule::from_rule(&rule, 42.0);
        assert_eq!(w.priority, 5);
        assert_eq!(w.counter, 42.0);
        assert_eq!(w.action, Action::Forward(Port(1)));
    }
}
