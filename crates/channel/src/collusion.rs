//! Coordinated counter-forging strategies — the upgraded adversary of the
//! redteam harness.
//!
//! [`ForgingAgent`] can overlay any per-rule value;
//! this module decides *what values a rational adversary would choose*.
//! Two attack postures exist:
//!
//! * **Fabrication** ([`FakeStrategy::Naive`]): the lie *is* the anomaly —
//!   the switch inflates its counters with no forwarding change. This is
//!   the baseline the liar-localization goldens measure against.
//! * **Evasion** (the other strategies): a real forwarding anomaly exists
//!   at the liar, and the forged counters try to *hide* it by reporting
//!   values consistent with what the controller expects. The `magnitude`
//!   knob (λ ∈ [0, 1]) interpolates between telling the truth (λ = 0) and
//!   the strategy's full forgery (λ = 1); the redteam sweep's *evasion
//!   cost* is the smallest λ that escapes detection.
//!
//! The planner is pure data-in/data-out — it never touches the data plane
//! or the FCM, so the channel crate stays free of detection-side
//! dependencies. The harness gathers [`RuleFacts`] (truth, expectation,
//! stale snapshot, whether the rule is on the compromised path) and applies
//! the resulting [`CollusionPlan`] to its forging agents.

use crate::{ForgingAgent, SwitchAgent};
use foces_net::SwitchId;
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// How a (set of) compromised switches coordinates its counter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FakeStrategy {
    /// Fabrication: inflate every counter (`forged = truth·(1+λ) + 1000·λ`).
    /// Creates an inconsistency out of thin air — the detectable baseline.
    Naive,
    /// Evasion: scale *all* of the switch's counters by one consistent
    /// factor chosen so their total matches the controller's expectation.
    /// Preserves the switch's internal ratios, so per-switch sanity checks
    /// (monotonicity, conservation across its own table) stay clean.
    ScaleConsistent,
    /// Evasion: report the last honest snapshot (`forged = stale`),
    /// interpolated by λ. Costs the adversary nothing to compute but the
    /// replayed values go stale as traffic drifts.
    Replay,
    /// Evasion: forge *only* the rules on the compromised flow's path
    /// through the liar, pinning them to the controller's expectation and
    /// telling the truth everywhere else — the minimum-touch lie.
    PathConsistent,
    /// Evasion: path-consistent forging applied across *several* colluding
    /// switches (the culprit plus its neighbors), so that no single
    /// switch's removal explains the remaining inconsistency.
    CoverUp,
}

impl FakeStrategy {
    /// Every strategy, in sweep order.
    pub const ALL: [FakeStrategy; 5] = [
        FakeStrategy::Naive,
        FakeStrategy::ScaleConsistent,
        FakeStrategy::Replay,
        FakeStrategy::PathConsistent,
        FakeStrategy::CoverUp,
    ];

    /// Whether the strategy fabricates an anomaly (vs hiding a real one).
    pub fn is_fabrication(self) -> bool {
        matches!(self, FakeStrategy::Naive)
    }
}

impl fmt::Display for FakeStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FakeStrategy::Naive => "naive",
            FakeStrategy::ScaleConsistent => "scale",
            FakeStrategy::Replay => "replay",
            FakeStrategy::PathConsistent => "path",
            FakeStrategy::CoverUp => "coverup",
        };
        f.write_str(s)
    }
}

impl FromStr for FakeStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(FakeStrategy::Naive),
            "scale" | "scale-consistent" => Ok(FakeStrategy::ScaleConsistent),
            "replay" => Ok(FakeStrategy::Replay),
            "path" | "path-consistent" => Ok(FakeStrategy::PathConsistent),
            "coverup" | "cover-up" => Ok(FakeStrategy::CoverUp),
            other => Err(format!(
                "unknown fake strategy '{other}' (naive|scale|replay|path|coverup)"
            )),
        }
    }
}

/// What the adversary knows about one rule on a compromised switch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleFacts {
    /// Rule index within the switch's table.
    pub index: usize,
    /// What the live register actually holds.
    pub truth: f64,
    /// What the controller would expect an honest switch to report
    /// (pre-anomaly / controller-view value).
    pub expected: f64,
    /// The last honest snapshot the adversary kept for replay.
    pub stale: f64,
    /// Whether this rule lies on the compromised flow's path (the rows a
    /// forwarding anomaly perturbs at this switch).
    pub affected: bool,
}

/// Per-liar rule facts, keyed by switch (deterministic iteration).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollusionInputs {
    /// Facts for every rule on every compromised switch.
    pub rules_by_switch: BTreeMap<SwitchId, Vec<RuleFacts>>,
}

/// The planned forgeries: per switch, `(rule index, reported value)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CollusionPlan {
    /// Forgeries to install, keyed by switch.
    pub forgeries: BTreeMap<SwitchId, Vec<(usize, f64)>>,
}

impl CollusionPlan {
    /// Total forged rules across all switches.
    pub fn forged_rules(&self) -> usize {
        self.forgeries.values().map(Vec::len).sum()
    }

    /// Total absolute distortion `Σ |forged − truth|` against `inputs` —
    /// the perturbation mass the evasion-cost metric prices.
    pub fn distortion(&self, inputs: &CollusionInputs) -> f64 {
        let mut total = 0.0;
        for (s, forged) in &self.forgeries {
            let Some(facts) = inputs.rules_by_switch.get(s) else {
                continue;
            };
            for &(index, value) in forged {
                if let Some(f) = facts.iter().find(|f| f.index == index) {
                    total += (value - f.truth).abs();
                }
            }
        }
        total
    }

    /// Installs this switch's share of the plan into a forging agent.
    pub fn forge_into(&self, agent: &mut ForgingAgent) {
        if let Some(forged) = self.forgeries.get(&agent.switch()) {
            for &(index, value) in forged {
                agent.forge_counter(index, value);
            }
        }
    }
}

/// Plans the coordinated forgery for `strategy` at interpolation `magnitude`
/// (clamped to [0, 1]). A magnitude of 0 yields an empty plan — the
/// adversary tells the truth.
pub fn plan_collusion(
    strategy: FakeStrategy,
    magnitude: f64,
    inputs: &CollusionInputs,
) -> CollusionPlan {
    let lambda = magnitude.clamp(0.0, 1.0);
    let mut plan = CollusionPlan::default();
    if lambda == 0.0 {
        return plan;
    }
    for (&switch, facts) in &inputs.rules_by_switch {
        let mut forged: Vec<(usize, f64)> = Vec::new();
        match strategy {
            FakeStrategy::Naive => {
                // Inflate everything: an unsubtle fabrication.
                for f in facts {
                    forged.push((f.index, f.truth * (1.0 + lambda) + 1000.0 * lambda));
                }
            }
            FakeStrategy::ScaleConsistent => {
                let truth_total: f64 = facts.iter().map(|f| f.truth).sum();
                let expected_total: f64 = facts.iter().map(|f| f.expected).sum();
                let full_scale = if truth_total > 0.0 {
                    expected_total / truth_total
                } else {
                    1.0
                };
                let scale = 1.0 + lambda * (full_scale - 1.0);
                if (scale - 1.0).abs() > f64::EPSILON {
                    for f in facts {
                        forged.push((f.index, f.truth * scale));
                    }
                }
            }
            FakeStrategy::Replay => {
                for f in facts {
                    let value = f.truth + lambda * (f.stale - f.truth);
                    if (value - f.truth).abs() > f64::EPSILON {
                        forged.push((f.index, value));
                    }
                }
            }
            FakeStrategy::PathConsistent | FakeStrategy::CoverUp => {
                // Identical per-switch math; CoverUp differs in *which*
                // switches appear in `inputs` (culprit + accomplices).
                for f in facts.iter().filter(|f| f.affected) {
                    let value = f.truth + lambda * (f.expected - f.truth);
                    if (value - f.truth).abs() > f64::EPSILON {
                        forged.push((f.index, value));
                    }
                }
            }
        }
        if !forged.is_empty() {
            plan.forgeries.insert(switch, forged);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs_one(switch: SwitchId, facts: Vec<RuleFacts>) -> CollusionInputs {
        let mut rules_by_switch = BTreeMap::new();
        rules_by_switch.insert(switch, facts);
        CollusionInputs { rules_by_switch }
    }

    fn facts() -> Vec<RuleFacts> {
        vec![
            RuleFacts {
                index: 0,
                truth: 100.0,
                expected: 200.0,
                stale: 190.0,
                affected: true,
            },
            RuleFacts {
                index: 1,
                truth: 50.0,
                expected: 50.0,
                stale: 55.0,
                affected: false,
            },
        ]
    }

    #[test]
    fn strategy_round_trips_through_strings() {
        for s in FakeStrategy::ALL {
            assert_eq!(s.to_string().parse::<FakeStrategy>().unwrap(), s);
        }
        assert!("bogus".parse::<FakeStrategy>().is_err());
    }

    #[test]
    fn zero_magnitude_is_the_truth() {
        let inputs = inputs_one(SwitchId(3), facts());
        for s in FakeStrategy::ALL {
            let plan = plan_collusion(s, 0.0, &inputs);
            assert_eq!(plan.forged_rules(), 0, "{s}");
        }
    }

    #[test]
    fn naive_inflates_every_rule() {
        let inputs = inputs_one(SwitchId(3), facts());
        let plan = plan_collusion(FakeStrategy::Naive, 1.0, &inputs);
        let forged = &plan.forgeries[&SwitchId(3)];
        assert_eq!(forged, &vec![(0, 1200.0), (1, 1100.0)]);
    }

    #[test]
    fn path_consistent_touches_only_affected_rules() {
        let inputs = inputs_one(SwitchId(3), facts());
        let plan = plan_collusion(FakeStrategy::PathConsistent, 1.0, &inputs);
        let forged = &plan.forgeries[&SwitchId(3)];
        assert_eq!(forged, &vec![(0, 200.0)]);
        // Half magnitude lands halfway between truth and expectation.
        let half = plan_collusion(FakeStrategy::PathConsistent, 0.5, &inputs);
        assert_eq!(half.forgeries[&SwitchId(3)], vec![(0, 150.0)]);
    }

    #[test]
    fn scale_consistent_preserves_ratios() {
        let inputs = inputs_one(SwitchId(3), facts());
        let plan = plan_collusion(FakeStrategy::ScaleConsistent, 1.0, &inputs);
        let forged = &plan.forgeries[&SwitchId(3)];
        // 250/150 scale applied to both rules: ratios preserved.
        let scale = 250.0 / 150.0;
        assert!((forged[0].1 - 100.0 * scale).abs() < 1e-9);
        assert!((forged[1].1 - 50.0 * scale).abs() < 1e-9);
        assert!((forged[0].1 / forged[1].1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn replay_reports_the_stale_snapshot() {
        let inputs = inputs_one(SwitchId(3), facts());
        let plan = plan_collusion(FakeStrategy::Replay, 1.0, &inputs);
        let forged = &plan.forgeries[&SwitchId(3)];
        assert_eq!(forged, &vec![(0, 190.0), (1, 55.0)]);
    }

    #[test]
    fn distortion_prices_the_perturbation() {
        let inputs = inputs_one(SwitchId(3), facts());
        let plan = plan_collusion(FakeStrategy::PathConsistent, 1.0, &inputs);
        assert!((plan.distortion(&inputs) - 100.0).abs() < 1e-9);
        let half = plan_collusion(FakeStrategy::PathConsistent, 0.5, &inputs);
        assert!((half.distortion(&inputs) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn magnitude_is_clamped() {
        let inputs = inputs_one(SwitchId(3), facts());
        let over = plan_collusion(FakeStrategy::PathConsistent, 7.0, &inputs);
        assert_eq!(over.forgeries[&SwitchId(3)], vec![(0, 200.0)]);
    }
}
