//! The controller side of the channel: the Statistics Collector of the
//! FOCES architecture (paper Fig. 6), plus a table-dump auditor that
//! demonstrates why dump-checking cannot replace counter analysis.

use crate::agent::SwitchAgent;
use crate::message::{ControllerMsg, SwitchMsg};
use crate::transport::{Delivery, PerfectTransport, Transport};
use foces_controlplane::ControllerView;
use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use std::error::Error;
use std::fmt;

/// Channel-level failures the collector can observe.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChannelError {
    /// A reply's transaction id did not match the request.
    XidMismatch {
        /// The offending switch.
        switch: SwitchId,
        /// Transaction id sent.
        sent: u32,
        /// Transaction id received.
        received: u32,
    },
    /// A reply had the wrong message type for the request.
    WrongReplyType {
        /// The offending switch.
        switch: SwitchId,
    },
    /// A wire decode failure.
    Wire(crate::message::WireError),
    /// The switch could not be reached (message dropped or switch
    /// offline). Only produced when the collector runs over a faulty
    /// [`Transport`]; the default [`PerfectTransport`] never raises it.
    Unreachable {
        /// The unreachable switch.
        switch: SwitchId,
    },
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::XidMismatch {
                switch,
                sent,
                received,
            } => write!(
                f,
                "s{}: xid mismatch (sent {sent}, received {received})",
                switch.0
            ),
            ChannelError::WrongReplyType { switch } => {
                write!(f, "s{}: wrong reply type", switch.0)
            }
            ChannelError::Wire(e) => write!(f, "wire error: {e}"),
            ChannelError::Unreachable { switch } => {
                write!(f, "s{}: unreachable", switch.0)
            }
        }
    }
}

impl Error for ChannelError {}

impl From<crate::message::WireError> for ChannelError {
    fn from(e: crate::message::WireError) -> Self {
        ChannelError::Wire(e)
    }
}

/// Result of auditing one switch's table dump against the controller view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpAudit {
    /// The audited switch.
    pub switch: SwitchId,
    /// `true` if the dump matched the view rule-for-rule.
    pub consistent: bool,
    /// Indices where the dump disagreed with the view (match, priority, or
    /// action).
    pub mismatches: Vec<usize>,
}

/// The controller's statistics collector: owns one agent per switch and
/// polls them over the encoded wire format.
///
/// Every request/reply actually round-trips through
/// [`ControllerMsg::encode`] / [`SwitchMsg::decode`], so the wire format is
/// exercised on every collection — there is no shortcut path that a real
/// deployment wouldn't have.
pub struct ChannelCollector {
    agents: Vec<Box<dyn SwitchAgent>>,
    next_xid: std::cell::Cell<u32>,
    transport: std::cell::RefCell<Box<dyn Transport>>,
}

impl fmt::Debug for ChannelCollector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChannelCollector({} agents)", self.agents.len())
    }
}

impl ChannelCollector {
    /// Creates a collector over the given agents (one per switch, in
    /// ascending switch order for canonical counter-vector assembly),
    /// using the ideal [`PerfectTransport`].
    pub fn new(agents: Vec<Box<dyn SwitchAgent>>) -> Self {
        ChannelCollector::with_transport(agents, Box::new(PerfectTransport))
    }

    /// Creates a collector whose exchanges go through `transport` — the
    /// hook for latency/loss/offline simulation. An exchange the transport
    /// reports as [`Delivery::Dropped`] or [`Delivery::Offline`] surfaces
    /// as [`ChannelError::Unreachable`] (the collector itself does not
    /// retry; retry policy belongs to the caller).
    pub fn with_transport(
        mut agents: Vec<Box<dyn SwitchAgent>>,
        transport: Box<dyn Transport>,
    ) -> Self {
        agents.sort_by_key(|a| a.switch());
        ChannelCollector {
            agents,
            next_xid: std::cell::Cell::new(1),
            transport: std::cell::RefCell::new(transport),
        }
    }

    /// Advances the transport's simulated clock (see
    /// [`Transport::on_epoch`]).
    pub fn advance_epoch(&self, epoch: u64) {
        self.transport.borrow_mut().on_epoch(epoch);
    }

    /// Replaces the agent for one switch (e.g. after a compromise, swap the
    /// honest agent for a [`crate::ForgingAgent`]).
    pub fn replace_agent(&mut self, agent: Box<dyn SwitchAgent>) {
        let sw = agent.switch();
        if let Some(slot) = self.agents.iter_mut().find(|a| a.switch() == sw) {
            *slot = agent;
        } else {
            self.agents.push(agent);
            self.agents.sort_by_key(|a| a.switch());
        }
    }

    fn xid(&self) -> u32 {
        let x = self.next_xid.get();
        self.next_xid.set(x.wrapping_add(1));
        x
    }

    /// One round-trip to one agent, through the transport (and therefore
    /// through the wire format both ways).
    fn exchange(
        &self,
        agent: &dyn SwitchAgent,
        dp: &DataPlane,
        msg: ControllerMsg,
    ) -> Result<SwitchMsg, ChannelError> {
        match self.transport.borrow_mut().exchange(dp, agent, &msg)? {
            Delivery::Delivered { reply, .. } => Ok(reply),
            Delivery::Dropped | Delivery::Offline => Err(ChannelError::Unreachable {
                switch: agent.switch(),
            }),
        }
    }

    /// Polls every switch for its counters and assembles the network-wide
    /// counter vector in canonical (switch-major, table-index) order — the
    /// FCM row order.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] on any protocol violation.
    pub fn collect_counters(&self, dp: &DataPlane) -> Result<Vec<f64>, ChannelError> {
        Ok(self
            .collect_counters_stamped(dp)?
            .into_iter()
            .flat_map(|reply| reply.counters)
            .collect())
    }

    /// Like [`ChannelCollector::collect_counters`], but keeps the replies
    /// separated per switch together with their generation stamps — the
    /// first phase of the runtime's **two-phase read**: collect, then
    /// compare every stamp against the FCM's build generation before
    /// trusting the assembled vector.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] on any protocol violation.
    pub fn collect_counters_stamped(
        &self,
        dp: &DataPlane,
    ) -> Result<Vec<StampedCounters>, ChannelError> {
        let mut out = Vec::with_capacity(self.agents.len());
        for agent in &self.agents {
            let xid = self.xid();
            let reply = self.exchange(agent.as_ref(), dp, ControllerMsg::StatsRequest { xid })?;
            match reply {
                SwitchMsg::StatsReply {
                    xid: rxid,
                    generation,
                    counters,
                } => {
                    if rxid != xid {
                        return Err(ChannelError::XidMismatch {
                            switch: agent.switch(),
                            sent: xid,
                            received: rxid,
                        });
                    }
                    out.push(StampedCounters {
                        switch: agent.switch(),
                        generation,
                        counters,
                    });
                }
                _ => {
                    return Err(ChannelError::WrongReplyType {
                        switch: agent.switch(),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Dumps every switch's table and audits it against the controller's
    /// view. In the paper's threat model this audit **passes even when
    /// switches are compromised** (forged dumps) — the executable argument
    /// for counter-based detection.
    ///
    /// # Errors
    ///
    /// Returns a [`ChannelError`] on any protocol violation.
    pub fn audit_dumps(
        &self,
        dp: &DataPlane,
        view: &ControllerView,
    ) -> Result<Vec<DumpAudit>, ChannelError> {
        let mut out = Vec::new();
        for agent in &self.agents {
            let xid = self.xid();
            let reply =
                self.exchange(agent.as_ref(), dp, ControllerMsg::TableDumpRequest { xid })?;
            let SwitchMsg::TableDumpReply { rules, .. } = reply else {
                return Err(ChannelError::WrongReplyType {
                    switch: agent.switch(),
                });
            };
            let sw = agent.switch();
            let table = view.table(sw);
            let mut mismatches = Vec::new();
            if rules.len() != table.len() {
                mismatches.push(usize::MAX);
            } else {
                for (i, wire) in rules.iter().enumerate() {
                    let expected = table.get(i).expect("lengths equal");
                    if wire.match_fields != *expected.match_fields()
                        || wire.priority != expected.priority()
                        || wire.action != expected.action()
                    {
                        mismatches.push(i);
                    }
                }
            }
            out.push(DumpAudit {
                switch: sw,
                consistent: mismatches.is_empty(),
                mismatches,
            });
        }
        Ok(out)
    }
}

/// One switch's stats reply, with its generation stamp kept alongside the
/// counters (see [`ChannelCollector::collect_counters_stamped`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StampedCounters {
    /// The replying switch.
    pub switch: SwitchId,
    /// The rule-table generation the switch acknowledges.
    pub generation: u64,
    /// Counter values in table-index order.
    pub counters: Vec<f64>,
}

/// Delta extraction over **cumulative** counters.
///
/// Real OpenFlow counters are monotone since switch boot — the controller
/// cannot reset them. FOCES detects on per-interval volumes, so the
/// collector must difference consecutive snapshots itself. `DeltaTracker`
/// wraps that bookkeeping: feed it each raw snapshot, get the per-interval
/// delta back. Rules added since the last poll (reactive installation,
/// lengthening the vector) start from zero; a *shrinking* counter is
/// reported as a fresh start (switch reboot semantics), never a negative
/// volume.
///
/// # Example
///
/// ```
/// use foces_channel::DeltaTracker;
///
/// let mut t = DeltaTracker::new();
/// assert_eq!(t.delta(&[100.0, 50.0]), vec![100.0, 50.0]); // first poll
/// assert_eq!(t.delta(&[150.0, 80.0]), vec![50.0, 30.0]);
/// assert_eq!(t.delta(&[10.0, 90.0]), vec![10.0, 10.0]); // rule 0 rebooted
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeltaTracker {
    last: Vec<f64>,
}

impl DeltaTracker {
    /// Creates a tracker with no history (the first delta equals the first
    /// snapshot).
    pub fn new() -> Self {
        DeltaTracker::default()
    }

    /// Differences `snapshot` against the previous one and stores it.
    ///
    /// Shorthand for [`DeltaTracker::delta_report`] when the caller does
    /// not care *which* rows rebooted.
    pub fn delta(&mut self, snapshot: &[f64]) -> Vec<f64> {
        self.delta_report(snapshot).deltas
    }

    /// Differences `snapshot` against the previous one and reports, per
    /// row, whether the counter went **backwards** (reset/wraparound — a
    /// rebooted switch, a reinstalled rule, or a u64 counter wrapping).
    ///
    /// A backwards row is treated as a reboot: its delta restarts from the
    /// raw snapshot value (clamped at zero against corrupt negative
    /// reports) instead of emitting a garbage negative difference, and its
    /// index is listed in [`DeltaReport::resets`]. Rows beyond the previous
    /// snapshot's length are a *layout change* (fresh rules), not a reset,
    /// and are not listed.
    pub fn delta_report(&mut self, snapshot: &[f64]) -> DeltaReport {
        let mut resets = Vec::new();
        let deltas = snapshot
            .iter()
            .enumerate()
            .map(|(i, &now)| {
                let before = self.last.get(i).copied();
                match before {
                    Some(b) if now < b => {
                        // Existing row went backwards: reboot semantics.
                        resets.push(i);
                        now.max(0.0)
                    }
                    Some(b) => now - b,
                    // Row absent from the previous layout: fresh start.
                    None => now.max(0.0),
                }
            })
            .collect();
        self.last = snapshot.to_vec();
        DeltaReport { deltas, resets }
    }

    /// Forgets history (e.g. after the FCM was rebuilt with a new rule
    /// universe whose vector layout changed).
    pub fn reset(&mut self) {
        self.last.clear();
    }
}

/// Output of [`DeltaTracker::delta_report`]: the per-interval volumes plus
/// which rows were detected as reset/wrapped since the previous snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaReport {
    /// Per-interval volume per row (never negative).
    pub deltas: Vec<f64>,
    /// Indices whose counter went backwards (ascending). These rows'
    /// deltas restarted from the raw snapshot value.
    pub resets: Vec<usize>,
}

/// Builds the default honest collector for a deployment: one
/// [`crate::HonestAgent`] per switch.
pub fn honest_collector(view: &ControllerView) -> ChannelCollector {
    let agents: Vec<Box<dyn SwitchAgent>> = view
        .topology()
        .switches()
        .map(|s| Box::new(crate::HonestAgent::new(s)) as Box<dyn SwitchAgent>)
        .collect();
    ChannelCollector::new(agents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ForgingAgent, HonestAgent};
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{Action, LossModel, Rule, RuleRef};
    use foces_net::generators::ring;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = ring(4);
        let flows = uniform_flows(&topo, 12_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    #[test]
    fn collected_counters_match_ground_truth_when_honest() {
        let mut dep = deployment();
        dep.replay_traffic(&mut LossModel::none());
        let collector = honest_collector(&dep.view);
        let via_channel = collector.collect_counters(&dep.dataplane).unwrap();
        assert_eq!(via_channel, dep.dataplane.collect_counters());
    }

    #[test]
    fn honest_dumps_audit_clean() {
        let dep = deployment();
        let collector = honest_collector(&dep.view);
        let audits = collector.audit_dumps(&dep.dataplane, &dep.view).unwrap();
        assert!(audits.iter().all(|a| a.consistent));
        assert_eq!(audits.len(), dep.view.topology().switch_count());
    }

    #[test]
    fn honest_dump_exposes_a_naive_compromise() {
        // A compromised switch that does NOT forge its dump is caught by
        // dump auditing (which is why real adversaries forge).
        let mut dep = deployment();
        let victim = RuleRef {
            switch: foces_net::SwitchId(0),
            index: 0,
        };
        dep.dataplane
            .modify_rule_action(victim, Action::Drop)
            .unwrap();
        let collector = honest_collector(&dep.view);
        let audits = collector.audit_dumps(&dep.dataplane, &dep.view).unwrap();
        let s0 = &audits[0];
        assert!(!s0.consistent);
        assert_eq!(s0.mismatches, vec![0]);
    }

    #[test]
    fn forged_dump_defeats_auditing() {
        // The paper's point: the adversary reports the original table, so
        // dump auditing passes while forwarding is compromised.
        let mut dep = deployment();
        let sw = foces_net::SwitchId(0);
        let original: Vec<Rule> = dep.view.table(sw).iter().map(|(_, r)| r.clone()).collect();
        dep.dataplane
            .modify_rule_action(
                RuleRef {
                    switch: sw,
                    index: 0,
                },
                Action::Drop,
            )
            .unwrap();
        let mut collector = honest_collector(&dep.view);
        collector.replace_agent(Box::new(ForgingAgent::new(sw, original)));
        let audits = collector.audit_dumps(&dep.dataplane, &dep.view).unwrap();
        assert!(
            audits.iter().all(|a| a.consistent),
            "forged dumps must pass the audit: {audits:?}"
        );
    }

    #[test]
    fn replace_agent_swaps_in_place() {
        let dep = deployment();
        let mut collector = honest_collector(&dep.view);
        let n_before = format!("{collector:?}");
        collector.replace_agent(Box::new(HonestAgent::new(foces_net::SwitchId(2))));
        assert_eq!(n_before, format!("{collector:?}"), "count unchanged");
    }

    #[test]
    fn delta_tracker_over_cumulative_rounds() {
        // Simulate never-reset counters across three collection rounds and
        // check the deltas match per-round traffic.
        let mut dep = deployment();
        let collector = honest_collector(&dep.view);
        let mut tracker = DeltaTracker::new();
        let mut expected_round = Vec::new();
        for round in 0..3 {
            // Accumulate WITHOUT resetting (cumulative semantics).
            dep.replay_traffic(&mut LossModel::none());
            let snapshot = collector.collect_counters(&dep.dataplane).unwrap();
            let delta = tracker.delta(&snapshot);
            if round == 0 {
                expected_round = delta.clone();
            }
            assert_eq!(delta, expected_round, "round {round} delta");
        }
        // Growing vector (reactive rule added) starts at zero history.
        let mut grown = collector.collect_counters(&dep.dataplane).unwrap();
        grown.push(7.0);
        let delta = tracker.delta(&grown);
        assert_eq!(*delta.last().unwrap(), 7.0);
        tracker.reset();
        assert_eq!(tracker.delta(&[5.0]), vec![5.0]);
    }

    #[test]
    fn stamped_collection_surfaces_mid_epoch_churn() {
        let mut dep = deployment();
        dep.replay_traffic(&mut LossModel::none());
        let collector = honest_collector(&dep.view);
        // Before any update every stamp is the provisioning generation.
        let stamped = collector.collect_counters_stamped(&dep.dataplane).unwrap();
        assert!(stamped.iter().all(|s| s.generation == 0));
        // A journaled reroute bumps exactly the updated switches' stamps.
        let (generation, new_rules) = dep.reroute_flow_via(0, &[]).unwrap();
        assert_eq!(generation, 1);
        let stamped = collector.collect_counters_stamped(&dep.dataplane).unwrap();
        let updated: Vec<SwitchId> = new_rules.iter().map(|r| r.switch).collect();
        for s in &stamped {
            let expected = if updated.contains(&s.switch) { 1 } else { 0 };
            assert_eq!(s.generation, expected, "switch s{}", s.switch.0);
        }
        // The flat assembly still matches ground truth (reply order and
        // lengths are unchanged by the stamps).
        assert_eq!(
            collector.collect_counters(&dep.dataplane).unwrap(),
            dep.dataplane.collect_counters()
        );
    }

    #[test]
    fn dropping_transport_surfaces_unreachable() {
        use crate::transport::{Delivery, Transport};

        /// Drops every exchange aimed at one victim switch.
        struct Blackhole {
            victim: SwitchId,
        }
        impl Transport for Blackhole {
            fn exchange(
                &mut self,
                dp: &DataPlane,
                agent: &dyn SwitchAgent,
                msg: &ControllerMsg,
            ) -> Result<Delivery, ChannelError> {
                if agent.switch() == self.victim {
                    return Ok(Delivery::Dropped);
                }
                Ok(Delivery::Delivered {
                    reply: crate::transport::wire_exchange(dp, agent, msg)?,
                    latency_ms: 1.5,
                })
            }
        }

        let mut dep = deployment();
        dep.replay_traffic(&mut LossModel::none());
        let victim = foces_net::SwitchId(2);
        let agents: Vec<Box<dyn SwitchAgent>> = dep
            .view
            .topology()
            .switches()
            .map(|s| Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>)
            .collect();
        let collector = ChannelCollector::with_transport(agents, Box::new(Blackhole { victim }));
        collector.advance_epoch(1);
        let err = collector.collect_counters(&dep.dataplane).unwrap_err();
        assert_eq!(err, ChannelError::Unreachable { switch: victim });
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn counter_order_is_canonical() {
        let mut dep = deployment();
        dep.replay_traffic(&mut LossModel::none());
        // Build the collector in scrambled order; assembly must still be
        // switch-major.
        let mut agents: Vec<Box<dyn SwitchAgent>> = dep
            .view
            .topology()
            .switches()
            .map(|s| Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>)
            .collect();
        agents.reverse();
        let collector = ChannelCollector::new(agents);
        assert_eq!(
            collector.collect_counters(&dep.dataplane).unwrap(),
            dep.dataplane.collect_counters()
        );
    }
}
