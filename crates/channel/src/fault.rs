//! The channel-level fault vocabulary: per-switch delivery profiles and a
//! seeded sampler turning them into [`Delivery`](crate::Delivery)-shaped
//! fates.
//!
//! Historically this logic lived in `foces-runtime`'s `SimTransport`;
//! every transport that wanted faults re-implemented the same
//! profile-lookup + RNG-draw dance. It now lives next to the
//! [`Transport`](crate::Transport) trait so *all* delivery policies —
//! the epoch-lockstep `SimTransport` and the event-driven ingest link
//! models alike — speak one fault language: a [`FaultProfile`] per switch
//! and a [`FaultModel`] that samples it deterministically.
//!
//! The sampler draws from its RNG in a **fixed order** (drop, reorder,
//! jitter — each only when its knob is non-zero), so a given seed replays
//! the exact same fault sequence regardless of which transport consumes
//! it. Tests that pin byte-identical event logs rely on this.

use foces_net::SwitchId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Per-switch channel behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Base round-trip latency per exchange, in simulated milliseconds.
    pub latency_ms: f64,
    /// Uniform jitter added on top of `latency_ms` (`[0, jitter_ms)`).
    pub jitter_ms: f64,
    /// Probability that an exchange (request or reply) is lost in flight.
    pub drop_prob: f64,
    /// Probability that a *stale* reply (from an earlier exchange with this
    /// switch) is delivered instead of the fresh one — the scheduler sees a
    /// transaction-id mismatch and must retry.
    pub reorder_prob: f64,
    /// Half-open windows `[start, end)` during which the switch is offline
    /// (crashed or partitioned). The unit is whatever clock the consuming
    /// transport feeds [`FaultModel::fate`]: the lockstep scheduler passes
    /// epochs, the event-driven ingest loop passes whole simulated
    /// milliseconds. Multiple windows model crash-restart cycles.
    pub offline: Vec<(u64, u64)>,
}

impl Default for FaultProfile {
    /// A well-behaved 1 ms channel: no jitter, no drops, no reordering,
    /// never offline.
    fn default() -> Self {
        FaultProfile {
            latency_ms: 1.0,
            jitter_ms: 0.0,
            drop_prob: 0.0,
            reorder_prob: 0.0,
            offline: Vec::new(),
        }
    }
}

impl FaultProfile {
    /// Is the switch offline at `at` (epoch or simulated-ms, see
    /// [`FaultProfile::offline`])?
    pub fn offline_at(&self, at: u64) -> bool {
        self.offline.iter().any(|&(s, e)| s <= at && at < e)
    }
}

/// The sampled fate of one exchange attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fate {
    /// The switch is offline; retrying now cannot help.
    Offline,
    /// The message (request or reply) was lost in flight.
    Dropped,
    /// The exchange completes.
    Deliver {
        /// Sampled round-trip latency (base + jitter), milliseconds.
        latency_ms: f64,
        /// Whether a stale reply should be delivered in place of the
        /// fresh one (the consuming transport owns the stale buffer).
        reorder: bool,
    },
}

/// A deterministic per-switch fault sampler: every switch follows the
/// default profile unless overridden, and all randomness comes from one
/// seeded [`StdRng`], so identical seeds replay identical fault sequences.
#[derive(Debug, Clone)]
pub struct FaultModel {
    default_profile: FaultProfile,
    per_switch: HashMap<SwitchId, FaultProfile>,
    rng: StdRng,
}

impl FaultModel {
    /// Creates a sampler where every switch follows `default_profile`.
    pub fn new(seed: u64, default_profile: FaultProfile) -> Self {
        FaultModel {
            default_profile,
            per_switch: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Overrides the profile of one switch (e.g. an offline window for the
    /// crash victim).
    pub fn set_profile(&mut self, switch: SwitchId, profile: FaultProfile) {
        self.per_switch.insert(switch, profile);
    }

    /// The profile governing `switch`.
    pub fn profile(&self, switch: SwitchId) -> &FaultProfile {
        self.per_switch
            .get(&switch)
            .unwrap_or(&self.default_profile)
    }

    /// Samples the fate of one exchange with `switch` at clock `at`.
    ///
    /// RNG draws happen in a fixed order — drop, reorder, jitter — and
    /// each draw happens only when its knob is non-zero, so adding an
    /// unused fault dimension never perturbs the sequence of another.
    pub fn fate(&mut self, switch: SwitchId, at: u64) -> Fate {
        let p = self.profile(switch).clone();
        if p.offline_at(at) {
            return Fate::Offline;
        }
        if p.drop_prob > 0.0 && self.rng.gen_bool(p.drop_prob.min(1.0)) {
            return Fate::Dropped;
        }
        let reorder = p.reorder_prob > 0.0 && self.rng.gen_bool(p.reorder_prob.min(1.0));
        let jitter = if p.jitter_ms > 0.0 {
            self.rng.gen_range(0.0..p.jitter_ms)
        } else {
            0.0
        };
        Fate::Deliver {
            latency_ms: p.latency_ms + jitter,
            reorder,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_fate_sequence() {
        let profile = FaultProfile {
            drop_prob: 0.4,
            jitter_ms: 2.0,
            reorder_prob: 0.2,
            ..FaultProfile::default()
        };
        let run = |seed: u64| -> Vec<Fate> {
            let mut m = FaultModel::new(seed, profile.clone());
            (0..64).map(|i| m.fate(SwitchId(0), i)).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds should diverge");
    }

    #[test]
    fn offline_windows_and_overrides() {
        let mut m = FaultModel::new(0, FaultProfile::default());
        let victim = SwitchId(2);
        m.set_profile(
            victim,
            FaultProfile {
                offline: vec![(5, 8), (10, 11)],
                ..FaultProfile::default()
            },
        );
        assert!(matches!(m.fate(victim, 5), Fate::Offline));
        assert!(matches!(m.fate(victim, 7), Fate::Offline));
        assert!(matches!(m.fate(victim, 8), Fate::Deliver { .. }));
        assert!(matches!(m.fate(victim, 10), Fate::Offline));
        // Other switches keep the default profile.
        assert!(matches!(m.fate(SwitchId(0), 5), Fate::Deliver { .. }));
        assert_eq!(m.profile(victim).offline.len(), 2);
    }

    #[test]
    fn quiet_profile_never_draws() {
        // With every probabilistic knob at zero the RNG is never touched,
        // so latency is exactly the base for every attempt.
        let mut m = FaultModel::new(9, FaultProfile::default());
        for i in 0..32 {
            match m.fate(SwitchId(1), i) {
                Fate::Deliver {
                    latency_ms,
                    reorder,
                } => {
                    assert_eq!(latency_ms, 1.0);
                    assert!(!reorder);
                }
                other => panic!("unexpected fate {other:?}"),
            }
        }
    }
}
