//! The simulated **control channel** between the FOCES controller and its
//! switches — the part of the paper's stack that OpenFlow/Floodlight-REST
//! played (§II-A: "the controller … can request counters of rules from
//! switches"; §VI-A: "the Statistics Collector periodically queries
//! switches for flow statistics").
//!
//! Why this matters for fidelity: in the rest of this workspace the
//! detector reads counters straight out of the [`foces_dataplane::DataPlane`]
//! — omniscient ground truth. In the paper's threat model the controller
//! only ever sees what switches **report**, and a compromised switch lies:
//! it answers table dumps with the original (pre-modification) rules and
//! may forge its own counters (§II-B: "simply dumping flow tables is not
//! effective"). This crate restores that boundary:
//!
//! * [`message`] — a compact binary wire format ([`bytes`]-based) for
//!   stats requests/replies and table dumps, with strict decoding;
//! * [`agent`] — per-switch endpoints: [`HonestAgent`] reports the truth,
//!   [`ForgingAgent`] reports the controller's own expectations back at it;
//! * [`collector`] — the controller side: polls every agent over the wire,
//!   reassembles the network-wide counter vector in canonical (FCM row)
//!   order, and can audit table dumps against the controller view —
//!   demonstrating exactly why dump-auditing fails and counter analysis
//!   (FOCES) is needed;
//! * [`transport`] — the delivery-policy hook: every exchange goes through
//!   a [`Transport`] ([`PerfectTransport`] by default), so fault models
//!   (latency, loss, offline switches — see `foces-runtime`) plug in
//!   without touching the codec or the agents. Event-driven consumers use
//!   the timestamped surface ([`Transport::exchange_at`]) instead of the
//!   blocking one;
//! * [`fault`] — the shared fault vocabulary: a per-switch
//!   [`FaultProfile`] (latency/jitter/drop/reorder/offline windows) and
//!   the seeded [`FaultModel`] sampler, consumed by both the lockstep
//!   `SimTransport` in `foces-runtime` and the per-link channel models in
//!   `foces-ingest`.
//!
//! # Example
//!
//! ```
//! use foces_channel::{ChannelCollector, HonestAgent, SwitchAgent};
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_dataplane::LossModel;
//! use foces_net::generators::ring;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = ring(4);
//! let flows = uniform_flows(&topo, 12_000.0);
//! let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
//! dep.replay_traffic(&mut LossModel::none());
//!
//! // One honest agent per switch, polled over the wire.
//! let agents: Vec<Box<dyn SwitchAgent>> = dep
//!     .view
//!     .topology()
//!     .switches()
//!     .map(|s| Box::new(HonestAgent::new(s)) as Box<dyn SwitchAgent>)
//!     .collect();
//! let collector = ChannelCollector::new(agents);
//! let counters = collector.collect_counters(&dep.dataplane)?;
//! assert_eq!(counters, dep.dataplane.collect_counters());
//! # Ok(())
//! # }
//! ```

pub mod agent;
pub mod collector;
pub mod collusion;
pub mod fault;
pub mod message;
pub mod transport;

pub use agent::{ForgingAgent, HonestAgent, SwitchAgent};
pub use collector::{
    honest_collector, ChannelCollector, ChannelError, DeltaReport, DeltaTracker, DumpAudit,
    StampedCounters,
};
pub use collusion::{plan_collusion, CollusionInputs, CollusionPlan, FakeStrategy, RuleFacts};
pub use fault::{Fate, FaultModel, FaultProfile};
pub use message::{ControllerMsg, SwitchMsg, WireError, WireRule};
pub use transport::{wire_exchange, Delivery, PerfectTransport, TimedDelivery, Transport};
