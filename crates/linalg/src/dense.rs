use crate::LinalgError;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense, column-major `f64` matrix.
///
/// Column-major layout is chosen deliberately: the hot kernel in FOCES is the
/// normal-equation assembly `HᵀH`, which walks pairs of *columns* of `H`;
/// keeping each column contiguous makes that a sequence of dot products over
/// contiguous slices.
///
/// # Example
///
/// ```
/// use foces_linalg::DenseMatrix;
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// assert_eq!(a.get(1, 0), 3.0);
/// assert_eq!(a.transpose().get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    /// Column-major storage: element `(i, j)` lives at `data[j * rows + i]`.
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Hard cap (in bytes) on a single guarded dense allocation: 256 MiB,
    /// i.e. a square matrix of dimension 5792.
    ///
    /// Chosen to admit every dense system the repo's benches actually
    /// solve (the FatTree(8) basis Gram is well under it) while refusing
    /// the FatTree(16)-class Grams that would otherwise OOM-kill the
    /// process. Infallible constructors ([`DenseMatrix::zeros`] and
    /// friends) are *not* guarded — only [`DenseMatrix::try_zeros`] and
    /// the solve-path entry points that can meaningfully fall back to
    /// sparse storage (e.g. `CsrMatrix::gram_dense`).
    pub const MAX_ALLOC_BYTES: usize = 1 << 28;

    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Guarded [`DenseMatrix::zeros`]: refuses allocations above
    /// [`DenseMatrix::MAX_ALLOC_BYTES`] with a typed error instead of
    /// aborting the process.
    ///
    /// # Errors
    ///
    /// [`LinalgError::AllocationTooLarge`] if `rows·cols·8` exceeds the
    /// cap (or overflows `usize`).
    pub fn try_zeros(rows: usize, cols: usize) -> Result<Self, LinalgError> {
        let bytes = rows
            .checked_mul(cols)
            .and_then(|n| n.checked_mul(std::mem::size_of::<f64>()))
            .unwrap_or(usize::MAX);
        if bytes > Self::MAX_ALLOC_BYTES {
            return Err(LinalgError::AllocationTooLarge {
                rows,
                cols,
                bytes,
                cap: Self::MAX_ALLOC_BYTES,
            });
        }
        Ok(Self::zeros(rows, cols))
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if the rows have differing
    /// lengths or if `rows` is empty with the intent of a non-empty matrix.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(DenseMatrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidInput(format!(
                    "row {i} has length {} but row 0 has length {cols}",
                    r.len()
                )));
            }
        }
        let mut m = DenseMatrix::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }

    /// Builds a matrix from a flat column-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if `data.len() != rows * cols`.
    pub fn from_column_major(
        rows: usize,
        cols: usize,
        data: Vec<f64>,
    ) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidInput(format!(
                "data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.rows + i]
    }

    /// Element mutator.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows` or `j >= cols`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[j * self.rows + i] = v;
    }

    /// Borrows column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column {j} out of bounds");
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Mutably borrows column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column {j} out of bounds");
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Borrows two distinct columns at once: `a` immutably, `b` mutably.
    /// Used by the in-place Cholesky trailing update.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of bounds.
    pub(crate) fn two_cols_mut(&mut self, a: usize, b: usize) -> (&[f64], &mut [f64]) {
        assert!(a != b, "two_cols_mut requires distinct columns");
        assert!(a < self.cols && b < self.cols, "column out of bounds");
        let rows = self.rows;
        if a < b {
            let (left, right) = self.data.split_at_mut(b * rows);
            (&left[a * rows..(a + 1) * rows], &mut right[..rows])
        } else {
            let (left, right) = self.data.split_at_mut(a * rows);
            let col_b = &mut left[b * rows..(b + 1) * rows];
            (&right[..rows], col_b)
        }
    }

    /// Copies row `i` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.rows, "row {i} out of bounds");
        (0..self.cols).map(|j| self.get(i, j)).collect()
    }

    /// Returns the transposed matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t.set(j, i, self.get(i, j));
            }
        }
        t
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (j, &xj) in x.iter().enumerate() {
            if xj == 0.0 {
                continue;
            }
            let col = self.col(j);
            for (yi, &aij) in y.iter_mut().zip(col) {
                *yi += aij * xj;
            }
        }
        Ok(y)
    }

    /// Transposed matrix-vector product `Aᵀ y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != rows`.
    pub fn transpose_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "transpose_matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                y.len()
            )));
        }
        let mut x = vec![0.0; self.cols];
        for (j, xj) in x.iter_mut().enumerate() {
            *xj = dot(self.col(j), y);
        }
        Ok(x)
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != b.rows`.
    pub fn matmul(&self, b: &DenseMatrix) -> Result<DenseMatrix, LinalgError> {
        if self.cols != b.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "matmul: {}x{} times {}x{}",
                self.rows, self.cols, b.rows, b.cols
            )));
        }
        let mut c = DenseMatrix::zeros(self.rows, b.cols);
        for j in 0..b.cols {
            let bcol = b.col(j);
            let ccol = &mut c.data[j * self.rows..(j + 1) * self.rows];
            for (k, &bkj) in bcol.iter().enumerate() {
                if bkj == 0.0 {
                    continue;
                }
                let acol = &self.data[k * self.rows..(k + 1) * self.rows];
                for (ci, &aik) in ccol.iter_mut().zip(acol) {
                    *ci += aik * bkj;
                }
            }
        }
        Ok(c)
    }

    /// Computes the Gram matrix `AᵀA` (symmetric `cols x cols`).
    ///
    /// This is the normal-equation matrix for least squares; it exploits
    /// symmetry and contiguous column storage.
    pub fn gram(&self) -> DenseMatrix {
        let n = self.cols;
        let mut g = DenseMatrix::zeros(n, n);
        for j in 0..n {
            let cj = self.col(j);
            for i in 0..=j {
                let v = dot(self.col(i), cj);
                g.set(i, j, v);
                g.set(j, i, v);
            }
        }
        g
    }

    /// The Frobenius norm `sqrt(Σ a_ij²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute element, or 0.0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// Returns `true` if every element differs from `other`'s by at most `tol`.
    ///
    /// Returns `false` when shapes differ.
    pub fn approx_eq(&self, other: &DenseMatrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Extracts the sub-matrix selecting `row_idx` rows and `col_idx` columns,
    /// in the given order (used by the FCM slicer).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(row_idx.len(), col_idx.len());
        for (jj, &j) in col_idx.iter().enumerate() {
            for (ii, &i) in row_idx.iter().enumerate() {
                m.set(ii, jj, self.get(i, j));
            }
        }
        m
    }

    /// Deletes the rows **and** columns at `skip` (strictly ascending, in
    /// range) in place — no allocation, just segment moves within the
    /// column-major storage. Used for the symmetric deletions the cached
    /// Gram matrix absorbs each churn epoch, where a copy-out/copy-in
    /// would double the memory traffic of the whole batch.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `skip` is not strictly ascending; out of
    /// range indices panic via slice bounds.
    pub(crate) fn delete_rows_cols_in_place(&mut self, skip: &[usize]) {
        if skip.is_empty() {
            return;
        }
        debug_assert!(skip.windows(2).all(|w| w[0] < w[1]));
        let stride = self.rows;
        let kept_rows = self.rows - skip.len();
        let mut dst_col = 0;
        for col in 0..self.cols {
            if skip.binary_search(&col).is_ok() {
                continue;
            }
            // Compact the surviving rows to the top of this column…
            let base = col * stride;
            let mut r = skip[0];
            let mut prev = skip[0] + 1;
            for &d in &skip[1..] {
                self.data.copy_within(base + prev..base + d, base + r);
                r += d - prev;
                prev = d + 1;
            }
            self.data.copy_within(base + prev..base + stride, base + r);
            // …then move the column to its final (re-strided) position.
            // Writes always trail reads, so ascending order is safe.
            self.data
                .copy_within(base..base + kept_rows, dst_col * kept_rows);
            dst_col += 1;
        }
        self.data.truncate(kept_rows * dst_col);
        self.rows = kept_rows;
        self.cols = dst_col;
    }

    /// Appends a column, growing the matrix in place.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `col.len() != rows`
    /// (unless the matrix is empty, in which case the column defines `rows`).
    pub fn push_col(&mut self, col: &[f64]) -> Result<(), LinalgError> {
        if self.cols == 0 && self.rows == 0 {
            self.rows = col.len();
        } else if col.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "push_col: matrix has {} rows but column has length {}",
                self.rows,
                col.len()
            )));
        }
        self.data.extend_from_slice(col);
        self.cols += 1;
        Ok(())
    }

    /// Consumes the matrix and returns its column-major data.
    pub fn into_column_major(self) -> Vec<f64> {
        self.data
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        let show_rows = self.rows.min(8);
        for i in 0..show_rows {
            write!(f, "  [")?;
            let show_cols = self.cols.min(10);
            for j in 0..show_cols {
                write!(f, "{:8.3}", self.get(i, j))?;
                if j + 1 < show_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > show_cols {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show_rows {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

impl Add for &DenseMatrix {
    type Output = DenseMatrix;

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ (operator form cannot return a `Result`; use
    /// shapes you have already validated).
    fn add(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &DenseMatrix {
    type Output = DenseMatrix;

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    fn sub(self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &DenseMatrix {
    type Output = DenseMatrix;

    /// Scalar multiplication.
    fn mul(self, rhs: f64) -> DenseMatrix {
        let data = self.data.iter().map(|a| a * rhs).collect();
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics (via `debug_assert`) in debug builds if lengths differ; in release
/// builds the shorter length wins, which internal callers never rely on.
#[inline]
pub(crate) fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Unrolled-by-4 accumulation: measurably faster than a naive fold and
    // keeps results deterministic across calls (no SIMD reassociation).
    let mut acc0 = 0.0;
    let mut acc1 = 0.0;
    let mut acc2 = 0.0;
    let mut acc3 = 0.0;
    let chunks = a.len() / 4;
    for k in 0..chunks {
        let i = k * 4;
        acc0 += a[i] * b[i];
        acc1 += a[i + 1] * b[i + 1];
        acc2 += a[i + 2] * b[i + 2];
        acc3 += a[i + 3] * b[i + 3];
    }
    let mut acc = acc0 + acc1 + acc2 + acc3;
    for i in chunks * 4..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]).unwrap()
    }

    #[test]
    fn construction_and_access() {
        let m = sample();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(1, 2), 6.0);
        assert_eq!(m.row(1), vec![4., 5., 6.]);
        assert_eq!(m.col(1), &[2., 5.]);
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[&[1., 2.], &[1.]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidInput(_)));
    }

    #[test]
    fn from_rows_empty_gives_empty_matrix() {
        let m = DenseMatrix::from_rows(&[]).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.rows(), 0);
    }

    #[test]
    fn from_column_major_checks_length() {
        assert!(DenseMatrix::from_column_major(2, 2, vec![1.0; 3]).is_err());
        let m = DenseMatrix::from_column_major(2, 2, vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(m.get(0, 1), 3.0);
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn matvec_matches_hand_computation() {
        let m = sample();
        let y = m.matvec(&[1., 1., 1.]).unwrap();
        assert_eq!(y, vec![6., 15.]);
        assert!(m.matvec(&[1., 2.]).is_err());
    }

    #[test]
    fn transpose_matvec_matches_transpose_then_matvec() {
        let m = sample();
        let direct = m.transpose_matvec(&[1., 2.]).unwrap();
        let via_transpose = m.transpose().matvec(&[1., 2.]).unwrap();
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        let i3 = DenseMatrix::identity(3);
        assert_eq!(m.matmul(&i3).unwrap(), m);
        let i2 = DenseMatrix::identity(2);
        assert_eq!(i2.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_rejects_mismatched_shapes() {
        let m = sample();
        assert!(m.matmul(&m).is_err());
    }

    #[test]
    fn gram_equals_transpose_matmul() {
        let m = sample();
        let g = m.gram();
        let expected = m.transpose().matmul(&m).unwrap();
        assert!(g.approx_eq(&expected, 1e-12));
        // Gram matrix is symmetric.
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.get(i, j), g.get(j, i));
            }
        }
    }

    #[test]
    fn select_extracts_submatrix() {
        let m = sample();
        let s = m.select(&[1], &[0, 2]);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 2);
        assert_eq!(s.get(0, 0), 4.0);
        assert_eq!(s.get(0, 1), 6.0);
    }

    #[test]
    fn push_col_grows_and_validates() {
        let mut m = sample();
        m.push_col(&[7., 8.]).unwrap();
        assert_eq!(m.cols(), 4);
        assert_eq!(m.get(1, 3), 8.0);
        assert!(m.push_col(&[1.]).is_err());

        let mut empty = DenseMatrix::default();
        empty.push_col(&[1., 2., 3.]).unwrap();
        assert_eq!(empty.rows(), 3);
        assert_eq!(empty.cols(), 1);
    }

    #[test]
    fn operators_work_elementwise() {
        let m = sample();
        let sum = &m + &m;
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = &sum - &m;
        assert_eq!(diff, m);
        let scaled = &m * 2.0;
        assert_eq!(scaled.get(0, 0), 2.0);
    }

    #[test]
    fn norms() {
        let m = DenseMatrix::from_rows(&[&[3., 4.]]).unwrap();
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert_eq!(DenseMatrix::default().max_abs(), 0.0);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f64> = (0..7).map(|i| i as f64).collect();
        let b = vec![2.0; 7];
        assert_eq!(dot(&a, &b), 2.0 * (0..7).sum::<i32>() as f64);
    }

    #[test]
    fn debug_output_is_nonempty_and_truncates() {
        let m = DenseMatrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("20x20"));
        assert!(s.contains('…'));
        let tiny = format!("{:?}", DenseMatrix::default());
        assert!(!tiny.is_empty());
    }
}
