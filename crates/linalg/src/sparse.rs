use crate::{DenseMatrix, LinalgError};
use std::fmt;

/// A `(row, col, value)` entry used to build a [`CsrMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Triplet {
    /// Row index.
    pub row: usize,
    /// Column index.
    pub col: usize,
    /// Value (duplicates at the same position are summed).
    pub value: f64,
}

/// Compressed-sparse-row matrix.
///
/// Real flow-counter matrices are extremely sparse: a flow contributes one
/// nonzero per rule on its path, so a FatTree(8) FCM with ~12 K flows and
/// tens of thousands of rules has well under 0.1 % density. CSR storage makes
/// `A x` and `Aᵀ y` linear in the nonzero count, which is what the iterative
/// [`cgls`] solver and the sliced detector need to scale (paper Fig. 12).
///
/// # Example
///
/// ```
/// use foces_linalg::{CsrMatrix, Triplet};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let m = CsrMatrix::from_triplets(2, 2, &[
///     Triplet { row: 0, col: 0, value: 1.0 },
///     Triplet { row: 1, col: 1, value: 2.0 },
/// ])?;
/// assert_eq!(m.matvec(&[3.0, 4.0])?, vec![3.0, 8.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// `indptr[i]..indptr[i+1]` is the slice of `indices`/`data` for row `i`.
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from triplets; duplicates are summed.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidInput`] if any triplet index is out of
    /// bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[Triplet],
    ) -> Result<Self, LinalgError> {
        for t in triplets {
            if t.row >= rows || t.col >= cols {
                return Err(LinalgError::InvalidInput(format!(
                    "triplet ({}, {}) out of bounds for {rows}x{cols} matrix",
                    t.row, t.col
                )));
            }
        }
        // Counting sort by row, then sort each row's entries by column and
        // merge duplicates.
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for t in triplets {
            per_row[t.row].push((t.col, t.value));
        }
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(triplets.len());
        let mut data = Vec::with_capacity(triplets.len());
        indptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut it = row.iter().peekable();
            while let Some(&(c, v)) = it.next() {
                let mut sum = v;
                while let Some(&&(c2, v2)) = it.peek() {
                    if c2 == c {
                        sum += v2;
                        it.next();
                    } else {
                        break;
                    }
                }
                if sum != 0.0 {
                    indices.push(c);
                    data.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            data,
        })
    }

    /// Converts a dense matrix to CSR, dropping exact zeros.
    pub fn from_dense(m: &DenseMatrix) -> Self {
        let mut triplets = Vec::new();
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                let v = m.get(i, j);
                if v != 0.0 {
                    triplets.push(Triplet {
                        row: i,
                        col: j,
                        value: v,
                    });
                }
            }
        }
        // Indices are in bounds by construction.
        CsrMatrix::from_triplets(m.rows(), m.cols(), &triplets)
            .expect("in-bounds triplets from dense matrix")
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Iterates over the `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(i < self.rows, "row {i} out of bounds");
        let range = self.indptr[i]..self.indptr[i + 1];
        self.indices[range.clone()]
            .iter()
            .copied()
            .zip(self.data[range].iter().copied())
    }

    /// Element lookup (O(log nnz-per-row)).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        let range = self.indptr[i]..self.indptr[i + 1];
        match self.indices[range.clone()].binary_search(&j) {
            Ok(pos) => self.data[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Sparse matrix-vector product `A x`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if x.len() != self.cols {
            return Err(LinalgError::DimensionMismatch(format!(
                "sparse matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                x.len()
            )));
        }
        let mut y = vec![0.0; self.rows];
        for (i, yi) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for k in self.indptr[i]..self.indptr[i + 1] {
                acc += self.data[k] * x[self.indices[k]];
            }
            *yi = acc;
        }
        Ok(y)
    }

    /// Transposed sparse matrix-vector product `Aᵀ y`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `y.len() != rows`.
    pub fn transpose_matvec(&self, y: &[f64]) -> Result<Vec<f64>, LinalgError> {
        if y.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(format!(
                "sparse transpose_matvec: matrix is {}x{} but vector has length {}",
                self.rows,
                self.cols,
                y.len()
            )));
        }
        let mut x = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            if yi == 0.0 {
                continue;
            }
            for k in self.indptr[i]..self.indptr[i + 1] {
                x[self.indices[k]] += self.data[k] * yi;
            }
        }
        Ok(x)
    }

    /// Read-only view of the row-pointer array (`len == rows + 1`).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Read-only view of the column indices, row by row, each row sorted.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Read-only view of the stored values (parallel to
    /// [`CsrMatrix::indices`]).
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// The transpose as a new CSR matrix (i.e. the CSC form of `self`),
    /// built by counting sort in `O(nnz + rows + cols)`. Row entries of
    /// the result are sorted by construction.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut indptr = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            indptr[j + 1] += 1;
        }
        for j in 0..self.cols {
            indptr[j + 1] += indptr[j];
        }
        let mut next = indptr.clone();
        let mut indices = vec![0usize; nnz];
        let mut data = vec![0.0f64; nnz];
        for i in 0..self.rows {
            for k in self.indptr[i]..self.indptr[i + 1] {
                let p = next[self.indices[k]];
                next[self.indices[k]] += 1;
                indices[p] = i;
                data[p] = self.data[k];
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            data,
        }
    }

    /// Assembles the Gram matrix `AᵀA` in sparse (CSR) form: the CSRᵀ·CSR
    /// product via a sparse accumulator, `O(Σ_i nnz(row i)²)` time but —
    /// unlike [`CsrMatrix::gram_dense`] — only `O(nnz(AᵀA))` memory, so it
    /// scales to basis sizes where a dense Gram cannot even allocate.
    ///
    /// This is the Gram entry point for large systems; keep
    /// [`CsrMatrix::gram_dense`] for small ones (its documented threshold is
    /// [`DenseMatrix::MAX_ALLOC_BYTES`], enforced by the allocation guard).
    pub fn gram_csr(&self) -> CsrMatrix {
        let t = self.transpose();
        let n = self.cols;
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices: Vec<usize> = Vec::new();
        let mut data: Vec<f64> = Vec::new();
        // Sparse accumulator: `stamp[j] == i` marks column j live in row i.
        let mut stamp = vec![usize::MAX; n];
        let mut acc = vec![0.0f64; n];
        indptr.push(0);
        for i in 0..n {
            let row_start = indices.len();
            for (k, tv) in t.row_iter(i) {
                for (j, hv) in self.row_iter(k) {
                    if stamp[j] != i {
                        stamp[j] = i;
                        acc[j] = 0.0;
                        indices.push(j);
                    }
                    acc[j] += tv * hv;
                }
            }
            indices[row_start..].sort_unstable();
            for idx in row_start..indices.len() {
                data.push(acc[indices[idx]]);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: n,
            cols: n,
            indptr,
            indices,
            data,
        }
    }

    /// Assembles the dense Gram matrix `AᵀA` directly from sparse storage.
    ///
    /// Each row of `A` contributes the outer product of its (few) nonzeros,
    /// so the cost is `Σ_i nnz(row i)²` — far below the dense `m·n²`.
    ///
    /// Dense Gram storage is quadratic in the column count, so this is the
    /// small-system path: above [`DenseMatrix::MAX_ALLOC_BYTES`] (square
    /// dimension ≈ 5792) the allocation guard refuses and callers must use
    /// [`CsrMatrix::gram_csr`] instead.
    ///
    /// # Errors
    ///
    /// [`LinalgError::AllocationTooLarge`] if the `cols × cols` result
    /// exceeds the dense allocation cap.
    pub fn gram_dense(&self) -> Result<DenseMatrix, LinalgError> {
        let mut g = DenseMatrix::try_zeros(self.cols, self.cols)?;
        for i in 0..self.rows {
            let range = self.indptr[i]..self.indptr[i + 1];
            let idx = &self.indices[range.clone()];
            let val = &self.data[range];
            for (a, &ja) in idx.iter().enumerate() {
                for (b, &jb) in idx.iter().enumerate().skip(a) {
                    let v = val[a] * val[b];
                    g.set(ja, jb, g.get(ja, jb) + v);
                    if ja != jb {
                        g.set(jb, ja, g.get(jb, ja) + v);
                    }
                }
            }
        }
        Ok(g)
    }

    /// Builds a new CSR matrix keeping only the given columns, renumbered
    /// to `0..cols.len()` in the given order. Used by the FOCES solver to
    /// extract a duplicate-free column basis without densifying.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or repeated.
    pub fn select_columns(&self, cols: &[usize]) -> CsrMatrix {
        let mut remap = vec![usize::MAX; self.cols];
        for (new, &old) in cols.iter().enumerate() {
            assert!(old < self.cols, "column {old} out of bounds");
            assert!(remap[old] == usize::MAX, "column {old} selected twice");
            remap[old] = new;
        }
        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::new();
        let mut data = Vec::new();
        indptr.push(0);
        for i in 0..self.rows {
            // Row entries are sorted by old column id; after remapping the
            // order may change, so collect and re-sort per row.
            let mut row: Vec<(usize, f64)> = self
                .row_iter(i)
                .filter_map(|(j, v)| {
                    let nj = remap[j];
                    (nj != usize::MAX).then_some((nj, v))
                })
                .collect();
            row.sort_unstable_by_key(|&(j, _)| j);
            for (j, v) in row {
                indices.push(j);
                data.push(v);
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: cols.len(),
            indptr,
            indices,
            data,
        }
    }

    /// Materializes the matrix densely (test/debug helper; O(rows·cols)).
    pub fn to_dense(&self) -> DenseMatrix {
        let mut m = DenseMatrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m.set(i, j, v);
            }
        }
        m
    }

    /// Guarded [`CsrMatrix::to_dense`]: used by solve paths (e.g. the QR
    /// fallback on rank-deficient bases) that must fail typed rather than
    /// OOM on large systems.
    ///
    /// # Errors
    ///
    /// [`LinalgError::AllocationTooLarge`] if the dense form exceeds the
    /// allocation cap.
    pub fn try_to_dense(&self) -> Result<DenseMatrix, LinalgError> {
        let mut m = DenseMatrix::try_zeros(self.rows, self.cols)?;
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m.set(i, j, v);
            }
        }
        Ok(m)
    }
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} ({} nonzeros)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

/// Result of a [`cgls`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct CglsOutcome {
    /// The least-squares solution estimate.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final normal-equation residual norm `‖Aᵀ(b - Ax)‖`.
    pub residual_norm: f64,
}

/// Conjugate-gradient least squares: iteratively solves `min ‖A x - b‖₂`.
///
/// CGLS applies conjugate gradients to the normal equations without ever
/// forming `AᵀA`, so each iteration costs two sparse mat-vecs. On FOCES
/// matrices (integer entries, well-clustered spectra) it converges in far
/// fewer iterations than the column count, which is what makes the
/// "12 K flows" end of the paper's Fig. 12 tractable without slicing.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != a.rows()`.
/// * [`LinalgError::DidNotConverge`] if the normal-equation residual has not
///   dropped below `tol * ‖Aᵀb‖` within `max_iter` iterations.
pub fn cgls(
    a: &CsrMatrix,
    b: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<CglsOutcome, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "cgls: matrix is {}x{} but rhs has length {}",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    let n = a.cols();
    let mut x = vec![0.0; n];
    // r = b - A x = b initially.
    let mut r = b.to_vec();
    // s = Aᵀ r.
    let mut s = a.transpose_matvec(&r)?;
    let mut p = s.clone();
    let mut gamma: f64 = s.iter().map(|v| v * v).sum();
    let target = tol * gamma.sqrt().max(f64::MIN_POSITIVE);

    for iter in 0..max_iter {
        if gamma.sqrt() <= target {
            return Ok(CglsOutcome {
                x,
                iterations: iter,
                residual_norm: gamma.sqrt(),
            });
        }
        let q = a.matvec(&p)?;
        let qq: f64 = q.iter().map(|v| v * v).sum();
        if qq == 0.0 {
            // p is in the null space; nothing more to gain.
            return Ok(CglsOutcome {
                x,
                iterations: iter,
                residual_norm: gamma.sqrt(),
            });
        }
        let alpha = gamma / qq;
        for (xi, pi) in x.iter_mut().zip(&p) {
            *xi += alpha * pi;
        }
        for (ri, qi) in r.iter_mut().zip(&q) {
            *ri -= alpha * qi;
        }
        s = a.transpose_matvec(&r)?;
        let gamma_new: f64 = s.iter().map(|v| v * v).sum();
        let beta = gamma_new / gamma;
        for (pi, si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        gamma = gamma_new;
    }
    if gamma.sqrt() <= target {
        Ok(CglsOutcome {
            x,
            iterations: max_iter,
            residual_norm: gamma.sqrt(),
        })
    } else {
        Err(LinalgError::DidNotConverge {
            iterations: max_iter,
            residual: gamma.sqrt(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    value: 1.0,
                },
                Triplet {
                    row: 1,
                    col: 0,
                    value: 2.0,
                },
                Triplet {
                    row: 1,
                    col: 1,
                    value: 3.0,
                },
                Triplet {
                    row: 2,
                    col: 1,
                    value: 4.0,
                },
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_triplets_sums_duplicates_and_drops_zero_sums() {
        let m = CsrMatrix::from_triplets(
            1,
            2,
            &[
                Triplet {
                    row: 0,
                    col: 0,
                    value: 1.0,
                },
                Triplet {
                    row: 0,
                    col: 0,
                    value: 2.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    value: 5.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    value: -5.0,
                },
            ],
        )
        .unwrap();
        assert_eq!(m.get(0, 0), 3.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn from_triplets_validates_bounds() {
        let err = CsrMatrix::from_triplets(
            1,
            1,
            &[Triplet {
                row: 1,
                col: 0,
                value: 1.0,
            }],
        );
        assert!(err.is_err());
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let m2 = CsrMatrix::from_dense(&d);
        assert_eq!(m, m2);
        assert_eq!(d.get(1, 1), 3.0);
    }

    #[test]
    fn matvec_agrees_with_dense() {
        let m = sample();
        let x = [2.0, -1.0];
        let sparse = m.matvec(&x).unwrap();
        let dense = m.to_dense().matvec(&x).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn transpose_matvec_agrees_with_dense() {
        let m = sample();
        let y = [1.0, 2.0, 3.0];
        let sparse = m.transpose_matvec(&y).unwrap();
        let dense = m.to_dense().transpose_matvec(&y).unwrap();
        assert_eq!(sparse, dense);
    }

    #[test]
    fn gram_dense_agrees_with_dense_gram() {
        let m = sample();
        assert!(m
            .gram_dense()
            .unwrap()
            .approx_eq(&m.to_dense().gram(), 1e-12));
    }

    #[test]
    fn transpose_round_trips() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), m.cols());
        assert_eq!(t.cols(), m.rows());
        for i in 0..m.rows() {
            for j in 0..m.cols() {
                assert_eq!(m.get(i, j), t.get(j, i));
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn gram_csr_matches_gram_dense() {
        let m = sample();
        assert!(m
            .gram_csr()
            .to_dense()
            .approx_eq(&m.gram_dense().unwrap(), 1e-12));
    }

    #[test]
    fn oversized_gram_returns_typed_error() {
        // A 1-nonzero matrix with a huge column count: nothing to compute,
        // but the dense Gram would need cols² doubles.
        let wide = CsrMatrix::from_triplets(
            1,
            100_000,
            &[Triplet {
                row: 0,
                col: 0,
                value: 1.0,
            }],
        )
        .unwrap();
        let err = wide.gram_dense().unwrap_err();
        assert!(
            matches!(err, LinalgError::AllocationTooLarge { cols: 100_000, .. }),
            "got {err:?}"
        );
        // The sparse Gram of the same matrix is trivial.
        assert_eq!(wide.gram_csr().nnz(), 1);
    }

    #[test]
    fn dimension_checks() {
        let m = sample();
        assert!(m.matvec(&[1.0; 3]).is_err());
        assert!(m.transpose_matvec(&[1.0; 2]).is_err());
    }

    #[test]
    fn row_iter_yields_sorted_columns() {
        let m = CsrMatrix::from_triplets(
            1,
            4,
            &[
                Triplet {
                    row: 0,
                    col: 3,
                    value: 3.0,
                },
                Triplet {
                    row: 0,
                    col: 1,
                    value: 1.0,
                },
            ],
        )
        .unwrap();
        let cols: Vec<usize> = m.row_iter(0).map(|(c, _)| c).collect();
        assert_eq!(cols, vec![1, 3]);
    }

    #[test]
    fn select_columns_matches_dense_select() {
        let m = sample();
        let sel = m.select_columns(&[1]);
        assert_eq!(sel.cols(), 1);
        assert_eq!(sel.rows(), 3);
        let dense = m.to_dense().select(&[0, 1, 2], &[1]);
        assert!(sel.to_dense().approx_eq(&dense, 0.0));
        // Reordering columns reorders the result.
        let swapped = m.select_columns(&[1, 0]);
        assert_eq!(swapped.get(1, 0), 3.0);
        assert_eq!(swapped.get(1, 1), 2.0);
    }

    #[test]
    #[should_panic(expected = "selected twice")]
    fn select_columns_rejects_duplicates() {
        sample().select_columns(&[0, 0]);
    }

    #[test]
    fn cgls_solves_consistent_system() {
        let m = sample();
        let x_true = [1.5, -2.0];
        let b = m.matvec(&x_true).unwrap();
        let out = cgls(&m, &b, 1e-12, 100).unwrap();
        for (xi, ti) in out.x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-8, "{xi} vs {ti}");
        }
    }

    #[test]
    fn cgls_matches_qr_on_inconsistent_system() {
        // The paper's Eq. (6)-(7) worked example.
        let d = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let y = [3., 3., 4., 3., 8., 12.];
        let sparse = CsrMatrix::from_dense(&d);
        let out = cgls(&sparse, &y, 1e-12, 1000).unwrap();
        assert!((out.x[0] - 3.0).abs() < 1e-6);
        assert!((out.x[1] - 1.0).abs() < 1e-6);
        assert!((out.x[2] - 8.0).abs() < 1e-6);
    }

    #[test]
    fn cgls_rejects_bad_rhs() {
        let m = sample();
        assert!(cgls(&m, &[1.0; 2], 1e-9, 10).is_err());
    }

    #[test]
    fn cgls_zero_rhs_returns_zero_immediately() {
        let m = sample();
        let out = cgls(&m, &[0.0; 3], 1e-9, 10).unwrap();
        assert_eq!(out.x, vec![0.0, 0.0]);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn debug_shows_shape_and_nnz() {
        let s = format!("{:?}", sample());
        assert!(s.contains("3x2"));
        assert!(s.contains("4 nonzeros"));
    }
}
