use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra kernels.
///
/// Every fallible public function in this crate returns this type so callers
/// (the FOCES detector) can distinguish between misuse (dimension mismatch)
/// and genuinely degenerate inputs (a rank-deficient flow-counter matrix).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Two operands had incompatible dimensions.
    ///
    /// Carries a human-readable description of the operation and the shapes
    /// involved, e.g. `"matvec: matrix is 6x3 but vector has length 4"`.
    DimensionMismatch(String),
    /// A matrix expected to be square was not.
    NotSquare {
        /// Number of rows of the offending matrix.
        rows: usize,
        /// Number of columns of the offending matrix.
        cols: usize,
    },
    /// Cholesky factorization failed because the matrix is not positive
    /// definite (within tolerance). For FOCES this happens when the FCM has
    /// linearly dependent columns, i.e. two logical flows traverse exactly
    /// the same rule set.
    NotPositiveDefinite {
        /// Index of the pivot that was non-positive.
        pivot: usize,
        /// Value of the offending pivot.
        value: f64,
    },
    /// A triangular solve hit a (near-)zero diagonal entry.
    SingularTriangular {
        /// Index of the zero diagonal entry.
        index: usize,
    },
    /// The least-squares system is rank deficient and the requested method
    /// cannot handle that.
    RankDeficient {
        /// Estimated numerical rank.
        rank: usize,
        /// Number of columns (full rank would equal this).
        cols: usize,
    },
    /// An iterative solver failed to converge within its iteration budget.
    DidNotConverge {
        /// Number of iterations performed.
        iterations: usize,
        /// Residual norm at the final iteration.
        residual: f64,
    },
    /// Construction input was invalid (e.g. a triplet index out of bounds).
    InvalidInput(String),
    /// A dense allocation was refused because it exceeds
    /// [`crate::DenseMatrix::MAX_ALLOC_BYTES`].
    ///
    /// Dense storage grows quadratically with the basis size while the FCM
    /// itself stays ~0.03 % dense, so on FatTree(16)-class systems a dense
    /// Gram would OOM-kill the process long before the solve starts. The
    /// guard turns that abort into a typed, testable error the caller can
    /// route to the sparse backend.
    AllocationTooLarge {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
        /// Requested size in bytes (`rows·cols·8`, saturating).
        bytes: usize,
        /// The configured cap ([`crate::DenseMatrix::MAX_ALLOC_BYTES`]).
        cap: usize,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch(msg) => write!(f, "dimension mismatch: {msg}"),
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is {rows}x{cols}, expected square")
            }
            LinalgError::NotPositiveDefinite { pivot, value } => write!(
                f,
                "matrix is not positive definite: pivot {pivot} has value {value:e}"
            ),
            LinalgError::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
            LinalgError::RankDeficient { rank, cols } => {
                write!(f, "matrix is rank deficient: rank {rank} of {cols} columns")
            }
            LinalgError::DidNotConverge {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (residual {residual:e})"
            ),
            LinalgError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            LinalgError::AllocationTooLarge {
                rows,
                cols,
                bytes,
                cap,
            } => write!(
                f,
                "dense allocation of {rows}x{cols} ({bytes} bytes) exceeds the \
                 {cap}-byte cap; use the sparse backend for systems this large"
            ),
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = LinalgError::NotPositiveDefinite {
            pivot: 3,
            value: -1.5,
        };
        let s = e.to_string();
        assert!(s.contains("pivot 3"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(LinalgError::SingularTriangular { index: 0 });
        assert!(e.to_string().contains("singular"));
    }
}
