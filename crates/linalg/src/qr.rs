use crate::{DenseMatrix, LinalgError};

/// Householder QR factorization of a (possibly tall) matrix `A = Q R`.
///
/// Used as the numerically robust least-squares path: solving `min ‖Ax - b‖`
/// via QR avoids squaring the condition number the way the normal equations
/// do. The FOCES detector uses QR as a fallback whenever the Cholesky of the
/// Gram matrix fails (near-dependent flow columns), and the test suite uses
/// it to cross-validate the Cholesky path.
///
/// The factorization is stored compactly: Householder vectors in the lower
/// trapezoid of `qr` plus the `beta` scalars, and `R` in the upper triangle.
///
/// # Example
///
/// ```
/// use foces_linalg::{DenseMatrix, Qr};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[1., 0.], &[1., 1.], &[1., 2.]])?;
/// let qr = Qr::factor(&a)?;
/// // Fit y = c0 + c1 t through (0,1), (1,2), (2,3): exact line.
/// let x = qr.solve_least_squares(&[1., 2., 3.])?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed factors: `R` above the diagonal (inclusive), Householder
    /// vectors below (with implicit leading 1).
    qr: DenseMatrix,
    /// Householder scalars, one per reflection.
    beta: Vec<f64>,
}

impl Qr {
    /// Factors `a` (must satisfy `rows >= cols` for least-squares use).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `rows < cols`; the
    /// FOCES equation system is always overdetermined (more rules than
    /// flows), so an underdetermined input indicates a caller bug.
    pub fn factor(a: &DenseMatrix) -> Result<Self, LinalgError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr: matrix is {m}x{n}; least-squares factorization requires rows >= cols"
            )));
        }
        let mut qr = a.clone();
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build the Householder reflector for column k, rows k..m.
            let col = qr.col(k);
            let norm_x = col[k..].iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm_x == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            let alpha = if col[k] >= 0.0 { -norm_x } else { norm_x };
            let v0 = col[k] - alpha;
            // v = x - alpha e1, normalized so v[0] = 1.
            let mut v = vec![0.0; m - k];
            v[0] = 1.0;
            for i in 1..m - k {
                v[i] = col[k + i] / v0;
            }
            // With v normalized so v[0] = 1, the reflector is
            // H = I - (2 / vᵀv) v vᵀ.
            let vtv: f64 = v.iter().map(|x| x * x).sum();
            let beta_k = if vtv == 0.0 { 0.0 } else { 2.0 / vtv };
            // Apply H = I - beta v vᵀ to columns k..n of qr.
            for j in k..n {
                let cj = qr.col(j);
                let mut s = 0.0;
                for i in 0..m - k {
                    s += v[i] * cj[k + i];
                }
                s *= beta_k;
                let cjm = qr.col_mut(j);
                for i in 0..m - k {
                    cjm[k + i] -= s * v[i];
                }
            }
            // R's diagonal entry is now alpha (stored by the update above);
            // store the Householder vector below the diagonal.
            let ck = qr.col_mut(k);
            ck[k + 1..m].copy_from_slice(&v[1..m - k]);
            beta[k] = beta_k;
        }
        Ok(Qr { qr, beta })
    }

    /// Number of rows of the factored matrix.
    pub fn rows(&self) -> usize {
        self.qr.rows()
    }

    /// Number of columns of the factored matrix.
    pub fn cols(&self) -> usize {
        self.qr.cols()
    }

    /// Extracts the upper-triangular factor `R` (`cols x cols`).
    pub fn r(&self) -> DenseMatrix {
        let n = self.cols();
        let mut r = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..=j {
                r.set(i, j, self.qr.get(i, j));
            }
        }
        r
    }

    /// Applies `Qᵀ` to a vector in place (the sequence of reflections).
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.rows(), self.cols());
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            // v[0] = 1 implicit, v[i] stored in qr(k+i, k).
            let mut s = b[k];
            for i in 1..m - k {
                s += self.qr.get(k + i, k) * b[k + i];
            }
            s *= self.beta[k];
            b[k] -= s;
            for i in 1..m - k {
                b[k + i] -= s * self.qr.get(k + i, k);
            }
        }
    }

    /// Solves the least-squares problem `min ‖A x - b‖₂`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != rows`.
    /// * [`LinalgError::SingularTriangular`] if `R` has a (near-)zero
    ///   diagonal, i.e. `A` is rank deficient.
    pub fn solve_least_squares(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let (m, n) = (self.rows(), self.cols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch(format!(
                "qr solve: matrix has {m} rows but rhs has length {}",
                b.len()
            )));
        }
        let mut qtb = b.to_vec();
        self.apply_qt(&mut qtb);
        // Back substitution on R x = (Qᵀ b)[..n].
        let tol = crate::DEFAULT_TOL * self.qr.max_abs().max(1.0);
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let rii = self.qr.get(i, i);
            if rii.abs() <= tol {
                return Err(LinalgError::SingularTriangular { index: i });
            }
            let mut s = qtb[i];
            for (j, xj) in x.iter().enumerate().take(n).skip(i + 1) {
                s -= self.qr.get(i, j) * xj;
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r_is_upper_triangular_and_reconstructs_norms() {
        let a = DenseMatrix::from_rows(&[&[1., 2.], &[3., 4.], &[5., 6.]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        let r = qr.r();
        // |r00| must equal the norm of A's first column.
        let n0 = (1.0f64 + 9.0 + 25.0).sqrt();
        assert!((r.get(0, 0).abs() - n0).abs() < 1e-12);
        assert_eq!(r.get(1, 0), 0.0);
    }

    #[test]
    fn exact_system_is_solved_exactly() {
        let a = DenseMatrix::from_rows(&[&[2., 1.], &[1., 3.], &[0., 1.]]).unwrap();
        let x_true = [3.0, -1.0];
        let b = a.matvec(&x_true).unwrap();
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn inconsistent_system_minimizes_residual() {
        // Overdetermined inconsistent system; least-squares answer known.
        let a = DenseMatrix::from_rows(&[&[1.], &[1.], &[1.]]).unwrap();
        let b = [1.0, 2.0, 6.0];
        let x = Qr::factor(&a).unwrap().solve_least_squares(&b).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12); // mean minimizes ‖x·1 - b‖
    }

    #[test]
    fn agrees_with_cholesky_normal_equations() {
        let a = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let y = [3., 3., 4., 3., 8., 12.];
        let x_qr = Qr::factor(&a).unwrap().solve_least_squares(&y).unwrap();
        let g = a.gram();
        let rhs = a.transpose_matvec(&y).unwrap();
        let x_ch = crate::Cholesky::factor(&g).unwrap().solve(&rhs).unwrap();
        for (q, c) in x_qr.iter().zip(&x_ch) {
            assert!((q - c).abs() < 1e-9, "qr {q} vs cholesky {c}");
        }
        // Paper Eq. (7): X̂ = (3, 1, 8).
        assert!((x_qr[0] - 3.0).abs() < 1e-9);
        assert!((x_qr[1] - 1.0).abs() < 1e-9);
        assert!((x_qr[2] - 8.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_wide_matrix() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(Qr::factor(&a).is_err());
    }

    #[test]
    fn detects_rank_deficiency() {
        let a = DenseMatrix::from_rows(&[&[1., 1.], &[1., 1.], &[2., 2.]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(matches!(
            qr.solve_least_squares(&[1., 2., 3.]),
            Err(LinalgError::SingularTriangular { .. })
        ));
    }

    #[test]
    fn validates_rhs_length() {
        let a = DenseMatrix::identity(2);
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1.0; 3]).is_err());
    }

    #[test]
    fn zero_column_yields_zero_beta_and_singular_solve() {
        let a = DenseMatrix::from_rows(&[&[0., 1.], &[0., 2.], &[0., 3.]]).unwrap();
        let qr = Qr::factor(&a).unwrap();
        assert!(qr.solve_least_squares(&[1., 1., 1.]).is_err());
    }
}
