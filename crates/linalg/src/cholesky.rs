use crate::{DenseMatrix, LinalgError};

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// FOCES solves the normal equations `(HᵀH) x = Hᵀ y'` on every detection
/// round; `HᵀH` is symmetric positive definite whenever the flow-counter
/// matrix `H` has full column rank (i.e. no two logical flows traverse an
/// identical rule set), so Cholesky is the natural direct solver — half the
/// flops of LU and unconditionally stable on SPD input.
///
/// # Example
///
/// ```
/// use foces_linalg::{Cholesky, DenseMatrix};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[4., 2.], &[2., 3.]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[8., 7.])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part is zero).
    l: DenseMatrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` actually being symmetric (the FOCES Gram matrices are by
    /// construction).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive
    ///   within tolerance — for FOCES this signals linearly dependent flow
    ///   columns and the caller falls back to a rank-revealing method.
    pub fn factor(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        // Right-looking, in-place on the lower triangle: after processing
        // column k, columns 0..=k hold L and the trailing submatrix holds
        // the updated Schur complement. All inner loops walk contiguous
        // column slices of the column-major storage, which is what lets the
        // FOCES Fig.-12 experiment factor 10⁴-column Gram matrices.
        let mut l = a.clone();
        // Scale-aware pivot tolerance: treat pivots below `tol` as zero.
        let tol = crate::DEFAULT_TOL * a.max_abs().max(1.0);
        for k in 0..n {
            let d = l.get(k, k);
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite { pivot: k, value: d });
            }
            let d = d.sqrt();
            l.set(k, k, d);
            let inv_d = 1.0 / d;
            for i in k + 1..n {
                let v = l.get(i, k) * inv_d;
                l.set(i, k, v);
            }
            // Trailing update: for j > k, col_j[j..] -= L[j][k] * col_k[j..].
            for j in k + 1..n {
                let ljk = l.get(j, k);
                if ljk == 0.0 {
                    continue;
                }
                // Split borrows: column k (read) and column j (write).
                let (ck, cj) = l.two_cols_mut(k, j);
                for i in j..n {
                    cj[i] -= ljk * ck[i];
                }
            }
        }
        // Zero the strict upper triangle so `l()` is a clean factor.
        for j in 1..n {
            for i in 0..j {
                l.set(i, j, 0.0);
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Solves `A x = b` using the precomputed factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len()` differs from
    /// the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: system is {n}x{n} but rhs has length {}",
                b.len()
            )));
        }
        // Forward substitution: L z = b.
        let mut z = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                z[i] -= self.l.get(i, k) * z[k];
            }
            z[i] /= self.l.get(i, i);
        }
        // Back substitution: Lᵀ x = z.
        let mut x = z;
        for i in (0..n).rev() {
            for k in i + 1..n {
                x[i] -= self.l.get(k, i) * x[k];
            }
            x[i] /= self.l.get(i, i);
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column. Exposed because the paper's
    /// complexity analysis (§IV-B) is phrased in terms of explicit matrix
    /// inversion; the detector itself uses [`Cholesky::solve`] instead.
    pub fn inverse(&self) -> Result<DenseMatrix, LinalgError> {
        let n = self.l.rows();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.col_mut(j).copy_from_slice(&col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        // A = Bᵀ B + I for a random-ish B, guaranteed SPD.
        DenseMatrix::from_rows(&[&[5., 2., 1.], &[2., 6., 2.], &[1., 2., 4.]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1., 2.], &[2., 1.]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_singular_gram_matrix() {
        // Two identical columns -> Gram matrix singular.
        let h = DenseMatrix::from_rows(&[&[1., 1.], &[1., 1.], &[0., 0.]]).unwrap();
        let g = h.gram();
        assert!(Cholesky::factor(&g).is_err());
    }

    #[test]
    fn solve_validates_rhs_length() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve(&[1.0; 2]).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(3), 1e-10));
    }

    #[test]
    fn one_by_one_system() {
        let a = DenseMatrix::from_rows(&[&[4.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.solve(&[8.0]).unwrap()[0] - 2.0).abs() < 1e-14);
    }
}
