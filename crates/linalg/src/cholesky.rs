use crate::dense::dot;
use crate::{DenseMatrix, LinalgError};

/// Column-oriented forward substitution `w ← L⁻¹ w` on the leading
/// `m×m` block of `l`, where `m = w.len()` (so the same kernel serves
/// both full solves and the growing system inside a batched append).
/// Inner loops are axpy sweeps over contiguous column slices — the
/// access pattern that makes the column-major storage pay off.
///
/// # Errors
///
/// [`LinalgError::SingularTriangular`] on a (near-)zero diagonal.
fn forward_sub(l: &DenseMatrix, w: &mut [f64]) -> Result<(), LinalgError> {
    let m = w.len();
    for k in 0..m {
        let col = l.col(k);
        let d = col[k];
        if d.abs() <= f64::MIN_POSITIVE {
            return Err(LinalgError::SingularTriangular { index: k });
        }
        let wk = w[k] / d;
        w[k] = wk;
        if wk != 0.0 {
            for (wi, &lik) in w[k + 1..].iter_mut().zip(&col[k + 1..m]) {
                *wi -= lik * wk;
            }
        }
    }
    Ok(())
}

/// Cholesky factorization `A = L Lᵀ` of a symmetric positive-definite matrix.
///
/// FOCES solves the normal equations `(HᵀH) x = Hᵀ y'` on every detection
/// round; `HᵀH` is symmetric positive definite whenever the flow-counter
/// matrix `H` has full column rank (i.e. no two logical flows traverse an
/// identical rule set), so Cholesky is the natural direct solver — half the
/// flops of LU and unconditionally stable on SPD input.
///
/// # Example
///
/// ```
/// use foces_linalg::{Cholesky, DenseMatrix};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[4., 2.], &[2., 3.]])?;
/// let chol = Cholesky::factor(&a)?;
/// let x = chol.solve(&[8., 7.])?;
/// assert!((x[0] - 1.25).abs() < 1e-12);
/// assert!((x[1] - 1.5).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor, stored densely (upper part is zero).
    l: DenseMatrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; the caller is responsible for
    /// `a` actually being symmetric (the FOCES Gram matrices are by
    /// construction).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a pivot is non-positive
    ///   within tolerance — for FOCES this signals linearly dependent flow
    ///   columns and the caller falls back to a rank-revealing method.
    pub fn factor(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let n = a.rows();
        // Right-looking, in-place on the lower triangle: after processing
        // column k, columns 0..=k hold L and the trailing submatrix holds
        // the updated Schur complement. All inner loops walk contiguous
        // column slices of the column-major storage, which is what lets the
        // FOCES Fig.-12 experiment factor 10⁴-column Gram matrices.
        let mut l = a.clone();
        // Scale-aware pivot tolerance: treat pivots below `tol` as zero.
        let tol = crate::DEFAULT_TOL * a.max_abs().max(1.0);
        for k in 0..n {
            let d = l.get(k, k);
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite { pivot: k, value: d });
            }
            let d = d.sqrt();
            l.set(k, k, d);
            let inv_d = 1.0 / d;
            for i in k + 1..n {
                let v = l.get(i, k) * inv_d;
                l.set(i, k, v);
            }
            // Trailing update: for j > k, col_j[j..] -= L[j][k] * col_k[j..].
            for j in k + 1..n {
                let ljk = l.get(j, k);
                if ljk == 0.0 {
                    continue;
                }
                // Split borrows: column k (read) and column j (write).
                let (ck, cj) = l.two_cols_mut(k, j);
                for i in j..n {
                    cj[i] -= ljk * ck[i];
                }
            }
        }
        // Zero the strict upper triangle so `l()` is a clean factor.
        for j in 1..n {
            for i in 0..j {
                l.set(i, j, 0.0);
            }
        }
        Ok(Cholesky { l })
    }

    /// Borrows the lower-triangular factor `L`.
    pub fn l(&self) -> &DenseMatrix {
        &self.l
    }

    /// Dimension of the factored system.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// In-place rank-one **update**: replaces the factor of `A` with the
    /// factor of `A + v·vᵀ`, in `O(n²)` instead of the `O(n³)` of a fresh
    /// factorization. This is the epoch-to-epoch workhorse of the
    /// incremental FOCES solver: a changed FCM row perturbs the Gram
    /// matrix `HᵀH` by exactly such an outer product.
    ///
    /// Uses the classic LINPACK `dchud` sweep of Givens rotations; the
    /// update of an SPD matrix by a positive-semidefinite term is
    /// unconditionally stable, so this cannot fail for finite input.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `v.len()` differs from the
    /// factored dimension.
    pub fn rank_one_update(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        let n = self.l.rows();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "rank-one update: system is {n}x{n} but vector has length {}",
                v.len()
            )));
        }
        let mut w = v.to_vec();
        for k in 0..n {
            let lkk = self.l.get(k, k);
            let r = (lkk * lkk + w[k] * w[k]).sqrt();
            let c = r / lkk;
            let s = w[k] / lkk;
            let col = self.l.col_mut(k);
            col[k] = r;
            for i in k + 1..n {
                let lik = (col[i] + s * w[i]) / c;
                w[i] = c * w[i] - s * lik;
                col[i] = lik;
            }
        }
        Ok(())
    }

    /// In-place rank-one **downdate**: replaces the factor of `A` with the
    /// factor of `A − v·vᵀ`, rejecting the operation when the result would
    /// no longer be positive definite (within tolerance). Rejection is
    /// atomic — the factor is untouched, so the caller can fall back to a
    /// full refactorization of whatever system it actually has.
    ///
    /// Follows LINPACK `dchdd`: solve `L·p = v`, require `pᵀp < 1`, then
    /// apply the hyperbolic-rotation sweep.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `v.len()` differs from the
    ///   factored dimension;
    /// * [`LinalgError::SingularTriangular`] if the factor itself has a
    ///   (near-)zero diagonal;
    /// * [`LinalgError::NotPositiveDefinite`] if `A − v·vᵀ` is singular or
    ///   indefinite within tolerance — for FOCES this means the removed
    ///   row/column carried the last independent constraint on some flow.
    pub fn rank_one_downdate(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        let n = self.l.rows();
        if v.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "rank-one downdate: system is {n}x{n} but vector has length {}",
                v.len()
            )));
        }
        // Phase 1 (fallible, read-only): p = L⁻¹ v and the residual mass
        // q² = 1 − pᵀp that the downdated pivot chain must retain.
        let mut p = v.to_vec();
        forward_sub(&self.l, &mut p)?;
        let qs = 1.0 - dot(&p, &p);
        if qs <= crate::DEFAULT_TOL {
            return Err(LinalgError::NotPositiveDefinite {
                pivot: n.saturating_sub(1),
                value: qs,
            });
        }
        // Phase 2 (infallible): generate the rotation chain bottom-up,
        // then sweep it through the rows of L.
        let mut alpha = qs.sqrt();
        let mut c = vec![0.0; n];
        let mut s = vec![0.0; n];
        for k in (0..n).rev() {
            let scale = alpha + p[k].abs();
            let a = alpha / scale;
            let b = p[k] / scale;
            let norm = (a * a + b * b).sqrt();
            c[k] = a / norm;
            s[k] = b / norm;
            alpha = scale * norm;
        }
        // Each row j consumes rotations k = j..0 with a per-row carry; by
        // keeping one carry per row the sweep runs column-by-column over
        // contiguous slices instead of striding across rows.
        let mut xx = vec![0.0; n];
        for k in (0..n).rev() {
            let (ck, sk) = (c[k], s[k]);
            let col = self.l.col_mut(k);
            for (carry, ljk) in xx[k..n].iter_mut().zip(&mut col[k..n]) {
                let t = ck * *carry + sk * *ljk;
                *ljk = ck * *ljk - sk * *carry;
                *carry = t;
            }
        }
        // The rotations preserve L·Lᵀ but may flip column signs; keep the
        // conventional positive diagonal so factors stay comparable.
        for k in 0..n {
            let col = self.l.col_mut(k);
            if col[k] < 0.0 {
                for v in &mut col[k..] {
                    *v = -*v;
                }
            }
        }
        Ok(())
    }

    /// Rank-k update: applies [`Cholesky::rank_one_update`] for each column
    /// of `vs`.
    ///
    /// # Errors
    ///
    /// As for the rank-one form; applied columns stay applied if a later
    /// one fails its dimension check (callers validate lengths up front).
    pub fn update_rank_k<V: AsRef<[f64]>>(&mut self, vs: &[V]) -> Result<(), LinalgError> {
        for v in vs {
            self.rank_one_update(v.as_ref())?;
        }
        Ok(())
    }

    /// Rank-k downdate: applies [`Cholesky::rank_one_downdate`] per column.
    ///
    /// # Errors
    ///
    /// As for the rank-one form. A singularity rejection aborts the batch;
    /// columns already applied stay applied, so callers that need
    /// atomicity across the whole batch should refactorize on error (the
    /// incremental solver does exactly that).
    pub fn downdate_rank_k<V: AsRef<[f64]>>(&mut self, vs: &[V]) -> Result<(), LinalgError> {
        for v in vs {
            self.rank_one_downdate(v.as_ref())?;
        }
        Ok(())
    }

    /// **Bordered expansion**: grows the factor of `A` (n×n) to the factor
    /// of the (n+1)×(n+1) matrix obtained by appending `cross` as the new
    /// last row/column with `diag` on the diagonal. `O(n²)`.
    ///
    /// This is how the incremental solver absorbs a *new* FCM basis
    /// column: `cross = Hᵀh_new`, `diag = h_newᵀh_new`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `cross.len()` differs from
    ///   the current dimension;
    /// * [`LinalgError::NotPositiveDefinite`] if the expanded matrix would
    ///   not be positive definite (the new column is linearly dependent on
    ///   the existing ones) — the factor is untouched.
    pub fn append_row_col(&mut self, cross: &[f64], diag: f64) -> Result<(), LinalgError> {
        let n = self.l.rows();
        if cross.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "append: system is {n}x{n} but cross column has length {}",
                cross.len()
            )));
        }
        self.append_rows_cols(&[cross], &[diag])
    }

    /// Batched bordered expansion: appends `crosses.len()` trailing
    /// rows/columns in one pass. `crosses[i]` must have length `n + i`
    /// (each new column's cross terms include the columns appended before
    /// it in the same batch). The grown factor is allocated and copied
    /// **once** for the whole batch — the per-call allocation is what made
    /// chained [`Cholesky::append_row_col`] calls quadratic in practice.
    ///
    /// # Errors
    ///
    /// As for [`Cholesky::append_row_col`], with the failing batch index's
    /// dimension in the error; rejection anywhere in the batch leaves the
    /// factor untouched.
    pub fn append_rows_cols<V: AsRef<[f64]>>(
        &mut self,
        crosses: &[V],
        diags: &[f64],
    ) -> Result<(), LinalgError> {
        let n = self.l.rows();
        let k = crosses.len();
        if k != diags.len() {
            return Err(LinalgError::DimensionMismatch(format!(
                "append batch: {k} cross columns but {} diagonals",
                diags.len()
            )));
        }
        for (i, cross) in crosses.iter().enumerate() {
            if cross.as_ref().len() != n + i {
                return Err(LinalgError::DimensionMismatch(format!(
                    "append batch: cross column {i} has length {} but the system is {m}x{m} at that step",
                    cross.as_ref().len(),
                    m = n + i
                )));
            }
        }
        if k == 0 {
            return Ok(());
        }
        // Each new row of the grown factor is w_i = L_i⁻¹ cross_i where
        // L_i already contains the rows appended earlier in the batch.
        // Phase A runs the part against the *existing* factor as one
        // multi-RHS forward substitution — one pass over L serves every
        // cross column, which is what makes a churn epoch's appends cost
        // a single sweep instead of k.
        let mut ws: Vec<Vec<f64>> = crosses.iter().map(|c| c.as_ref().to_vec()).collect();
        for j in 0..n {
            let col = self.l.col(j);
            let d = col[j];
            if d.abs() <= f64::MIN_POSITIVE {
                return Err(LinalgError::SingularTriangular { index: j });
            }
            for w in &mut ws {
                let wj = w[j] / d;
                w[j] = wj;
                if wj != 0.0 {
                    for (wi, &lij) in w[j + 1..n].iter_mut().zip(&col[j + 1..n]) {
                        *wi -= lij * wj;
                    }
                }
            }
        }
        // Phase B: the remaining rows of each forward substitution run
        // against the rows appended earlier in the batch (row n+j of the
        // grown factor *is* w_j), then the new pivot is validated. Nothing
        // is committed until the whole batch passes, so rejection leaves
        // the factor untouched.
        let mut new_diags = Vec::with_capacity(k);
        for (i, &diag) in diags.iter().enumerate() {
            let (done, rest) = ws.split_at_mut(i);
            let wi = &mut rest[0];
            for (j, wj) in done.iter().enumerate() {
                let m = n + j;
                let s = dot(&wj[..m], &wi[..m]);
                wi[m] = (wi[m] - s) / new_diags[j];
            }
            let d2 = diag - dot(wi, wi);
            let tol = crate::DEFAULT_TOL * diag.abs().max(1.0);
            if d2 <= tol {
                return Err(LinalgError::NotPositiveDefinite {
                    pivot: n + i,
                    value: d2,
                });
            }
            new_diags.push(d2.sqrt());
        }
        // Commit: one grown allocation for the whole batch.
        let mut grown = DenseMatrix::zeros(n + k, n + k);
        for j in 0..n {
            grown.col_mut(j)[j..n].copy_from_slice(&self.l.col(j)[j..]);
        }
        for (i, w) in ws.iter().enumerate() {
            let row = n + i;
            for (j, &wj) in w.iter().enumerate() {
                grown.set(row, j, wj);
            }
            grown.set(row, row, new_diags[i]);
        }
        self.l = grown;
        Ok(())
    }

    /// **Contraction**: shrinks the factor of `A` to the factor of `A`
    /// with row and column `j` deleted, via a Givens re-triangularization
    /// sweep — `O((n−j)·n)`, against `O(n³)` for refactorizing. This is
    /// how the incremental solver evicts a departed FCM basis column.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn remove_row_col(&mut self, j: usize) {
        let n = self.l.rows();
        assert!(j < n, "remove_row_col: index {j} out of range for dim {n}");
        self.remove_rows_cols(&[j]);
    }

    /// Batched contraction: deletes every row/column in `positions`
    /// (strictly ascending) with **one** compaction pass and one Givens
    /// re-triangularization sweep, instead of a full matrix copy per
    /// deletion.
    ///
    /// Deleting the rows of `A = L·Lᵀ` deletes the same rows of `L`,
    /// leaving a "staircase": surviving row `r` still reaches its original
    /// column index, overhanging the diagonal by (at most) the number of
    /// deletions before it. The overhang is folded away row by row with
    /// adjacent-column rotations; rows above `r` are already zero in both
    /// touched columns, so earlier work is preserved.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not strictly ascending or any index is out
    /// of range.
    pub fn remove_rows_cols(&mut self, positions: &[usize]) {
        let n = self.l.rows();
        let k = positions.len();
        if k == 0 {
            return;
        }
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]) && positions[k - 1] < n,
            "remove_rows_cols: positions must be strictly ascending and < dim {n}"
        );
        let kept = n - k;
        // Original row index of each surviving row (the staircase bound).
        let mut keep = Vec::with_capacity(kept);
        let mut del = positions.iter().peekable();
        for i in 0..n {
            if del.peek() == Some(&&i) {
                del.next();
            } else {
                keep.push(i);
            }
        }
        // All three phases run in place on the raw column-major storage
        // (stride `n` until the final repack): for a large cached factor
        // the batch is memory-bound, and avoiding the scratch copies is
        // worth more than any flop-level tuning.
        let l = std::mem::replace(&mut self.l, DenseMatrix::zeros(0, 0));
        let mut data = l.into_column_major();
        // Phase 1: compact the surviving rows to the top of every column.
        for col in 0..n {
            let base = col * n;
            let mut r = positions[0];
            let mut prev = positions[0] + 1;
            for &d in &positions[1..] {
                data.copy_within(base + prev..base + d, base + r);
                r += d - prev;
                prev = d + 1;
            }
            data.copy_within(base + prev..base + n, base + r);
        }
        // Phase 2: fold each surviving row's overhang away right-to-left.
        // Eliminating entry (r, t) with the (t−1, t) column pair keeps
        // every column index involved ≤ keep[r], so later (longer) rows
        // stay inside their own staircase bound and rows above r are zero
        // in both touched columns.
        for r in 0..kept {
            for t in (r + 1..=keep[r]).rev() {
                let (left, right) = data.split_at_mut(t * n);
                let ca = &mut left[(t - 1) * n..t * n];
                let cb = &mut right[..n];
                let (a, b) = (ca[r], cb[r]);
                // Nothing to eliminate and the pivot sign is fine: the
                // rotation would be the identity. (With `a < 0` it still
                // runs — the degenerate rotation is what flips the column
                // back to the conventional positive diagonal.)
                if b == 0.0 && a >= 0.0 {
                    continue;
                }
                let rad = (a * a + b * b).sqrt();
                let (c, s) = (a / rad, b / rad);
                for (x, y) in ca[r..kept].iter_mut().zip(&mut cb[r..kept]) {
                    let (xv, yv) = (*x, *y);
                    *x = c * xv + s * yv;
                    *y = c * yv - s * xv;
                }
            }
        }
        // Phase 3: columns ≥ kept are now zero; repack the survivors to
        // stride `kept` (writes always trail reads) and truncate.
        for col in 0..kept {
            data.copy_within(col * n..col * n + kept, col * kept);
        }
        data.truncate(kept * kept);
        self.l = DenseMatrix::from_column_major(kept, kept, data)
            .expect("kept*kept elements remain after truncation");
    }

    /// Solves `A x = b` using the precomputed factorization.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len()` differs from the
    ///   factored dimension;
    /// * [`LinalgError::SingularTriangular`] if the factor has a
    ///   (near-)zero diagonal (possible only on a patched factor that has
    ///   collapsed — a fresh [`Cholesky::factor`] guarantees positive
    ///   pivots).
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "cholesky solve: system is {n}x{n} but rhs has length {}",
                b.len()
            )));
        }
        // Forward substitution: L z = b (column-oriented axpy sweeps).
        let mut x = b.to_vec();
        forward_sub(&self.l, &mut x)?;
        // Back substitution: Lᵀ x = z. Row i of Lᵀ is column i of L, so
        // each step is one dot product over a contiguous column tail.
        for i in (0..n).rev() {
            let col = self.l.col(i);
            let s = dot(&col[i + 1..], &x[i + 1..]);
            x[i] = (x[i] - s) / col[i];
        }
        Ok(x)
    }

    /// Computes `A⁻¹` column by column. Exposed because the paper's
    /// complexity analysis (§IV-B) is phrased in terms of explicit matrix
    /// inversion; the detector itself uses [`Cholesky::solve`] instead.
    pub fn inverse(&self) -> Result<DenseMatrix, LinalgError> {
        let n = self.l.rows();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.solve(&e)?;
            inv.col_mut(j).copy_from_slice(&col);
            e[j] = 0.0;
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> DenseMatrix {
        // A = Bᵀ B + I for a random-ish B, guaranteed SPD.
        DenseMatrix::from_rows(&[&[5., 2., 1.], &[2., 6., 2.], &[1., 2., 4.]]).unwrap()
    }

    #[test]
    fn factor_reconstructs_input() {
        let a = spd3();
        let c = Cholesky::factor(&a).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_known_solution() {
        let a = spd3();
        let x_true = [1.0, -2.0, 3.0];
        let b = a.matvec(&x_true).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        let x = c.solve(&b).unwrap();
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10);
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1., 2.], &[2., 1.]]).unwrap(); // eigenvalues 3, -1
        assert!(matches!(
            Cholesky::factor(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_singular_gram_matrix() {
        // Two identical columns -> Gram matrix singular.
        let h = DenseMatrix::from_rows(&[&[1., 1.], &[1., 1.], &[0., 0.]]).unwrap();
        let g = h.gram();
        assert!(Cholesky::factor(&g).is_err());
    }

    #[test]
    fn solve_validates_rhs_length() {
        let c = Cholesky::factor(&spd3()).unwrap();
        assert!(c.solve(&[1.0; 2]).is_err());
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = spd3();
        let inv = Cholesky::factor(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!(prod.approx_eq(&DenseMatrix::identity(3), 1e-10));
    }

    #[test]
    fn batched_removal_matches_sequential_removal() {
        // A 6x6 SPD matrix; delete {1, 3, 4} in one batch and compare
        // against three chained single removals (descending so indices
        // stay valid) and against a fresh factor of the submatrix.
        let mut g = DenseMatrix::identity(6);
        for j in 0..6 {
            for i in 0..6 {
                let v =
                    g.get(i, j) + 1.0 / (1.0 + (i + 2 * j) as f64) + if i == j { 6.0 } else { 0.0 };
                g.set(i, j, v);
            }
        }
        // Symmetrize (the fill above is not symmetric on its own).
        for j in 0..6 {
            for i in 0..j {
                let v = 0.5 * (g.get(i, j) + g.get(j, i));
                g.set(i, j, v);
                g.set(j, i, v);
            }
        }
        let mut batched = Cholesky::factor(&g).unwrap();
        batched.remove_rows_cols(&[1, 3, 4]);

        let mut chained = Cholesky::factor(&g).unwrap();
        for &j in [4, 3, 1].iter() {
            chained.remove_row_col(j);
        }
        assert!(batched.l().approx_eq(chained.l(), 1e-12));

        let keep = [0usize, 2, 5];
        let sub = g.select(&keep, &keep);
        let fresh = Cholesky::factor(&sub).unwrap();
        assert!(batched.l().approx_eq(fresh.l(), 1e-10));
    }

    #[test]
    fn batched_append_matches_sequential_append() {
        let g = spd3();
        let mut batched = Cholesky::factor(&g).unwrap();
        let c0 = vec![0.5, -0.25, 1.0];
        let c1 = vec![0.1, 0.2, -0.3, 0.4];
        batched
            .append_rows_cols(&[c0.clone(), c1.clone()], &[7.0, 9.0])
            .unwrap();

        let mut chained = Cholesky::factor(&g).unwrap();
        chained.append_row_col(&c0, 7.0).unwrap();
        chained.append_row_col(&c1, 9.0).unwrap();
        assert_eq!(batched.dim(), 5);
        assert!(batched.l().approx_eq(chained.l(), 1e-12));
    }

    #[test]
    fn batched_append_rejects_atomically() {
        let g = spd3();
        let mut c = Cholesky::factor(&g).unwrap();
        let before = c.l().clone();
        // Second column is linearly dependent on the first appended one
        // (its Gram row equals the expanded system's first appended row),
        // so the batch must fail — and leave the factor untouched.
        let dup = vec![0.5, -0.25, 1.0];
        let mut dup_ext = dup.clone();
        dup_ext.push(7.0);
        let err = c
            .append_rows_cols(&[dup.clone(), dup_ext], &[7.0, 7.0])
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert!(c.l().approx_eq(&before, 0.0));
        assert_eq!(c.dim(), 3);
    }

    #[test]
    fn batched_removal_validates_positions() {
        let g = spd3();
        let mut c = Cholesky::factor(&g).unwrap();
        c.remove_rows_cols(&[]); // no-op
        assert_eq!(c.dim(), 3);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.remove_rows_cols(&[2, 1]);
        }));
        assert!(r.is_err(), "unsorted positions must panic");
    }

    #[test]
    fn one_by_one_system() {
        let a = DenseMatrix::from_rows(&[&[4.0]]).unwrap();
        let c = Cholesky::factor(&a).unwrap();
        assert!((c.solve(&[8.0]).unwrap()[0] - 2.0).abs() < 1e-14);
    }
}
