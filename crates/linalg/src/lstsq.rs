use crate::{cgls, Cholesky, CsrMatrix, DenseMatrix, LinalgError, Qr};

/// Strategy for solving the least-squares problem `min ‖H x - y‖₂`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum LstsqMethod {
    /// Normal equations + Cholesky (the paper's Eq. 4, `(HᵀH)⁻¹Hᵀy`).
    /// Fastest on well-conditioned FCMs; fails on rank-deficient input.
    #[default]
    NormalCholesky,
    /// Householder QR. Roughly 2x the flops but does not square the
    /// condition number; used as the robust fallback.
    Qr,
    /// Try [`LstsqMethod::NormalCholesky`] first and transparently fall back
    /// to [`LstsqMethod::Qr`] when the Gram matrix is not positive definite.
    CholeskyThenQr,
}

/// Result of a least-squares solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LstsqSolution {
    /// The minimizer `x̂` (the estimated flow-volume vector in FOCES).
    pub x: Vec<f64>,
    /// Which method actually produced the solution (relevant for
    /// [`LstsqMethod::CholeskyThenQr`]).
    pub method_used: LstsqMethod,
}

impl LstsqSolution {
    /// Computes the residual vector `y - H x̂` (the paper's `Y' - Ŷ`, before
    /// taking absolute values to obtain Δ).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions of `h`/`y` are inconsistent with `x` — the
    /// caller passes back the same operands it solved with.
    pub fn residual(&self, h: &DenseMatrix, y: &[f64]) -> Vec<f64> {
        let yhat = h
            .matvec(&self.x)
            .expect("solution dimension matches the solved matrix");
        assert_eq!(y.len(), yhat.len(), "rhs length changed since solve");
        y.iter().zip(&yhat).map(|(a, b)| a - b).collect()
    }
}

/// Solves the dense least-squares problem `min ‖h·x - y‖₂`.
///
/// This is the core numeric step of FOCES Algorithm 1: given the flow-counter
/// matrix `H` and the observed counter vector `Y'`, recover the least-squares
/// flow-volume estimate `X̂`.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `y.len() != h.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] /
///   [`LinalgError::SingularTriangular`] when the FCM is rank deficient and
///   the chosen method cannot proceed.
///
/// # Example
///
/// ```
/// use foces_linalg::{lstsq, DenseMatrix, LstsqMethod};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let h = DenseMatrix::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.]])?;
/// let sol = lstsq(&h, &[2., 3., 5.], LstsqMethod::CholeskyThenQr)?;
/// assert!((sol.x[0] - 2.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
pub fn lstsq(
    h: &DenseMatrix,
    y: &[f64],
    method: LstsqMethod,
) -> Result<LstsqSolution, LinalgError> {
    if y.len() != h.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "lstsq: matrix is {}x{} but rhs has length {}",
            h.rows(),
            h.cols(),
            y.len()
        )));
    }
    match method {
        LstsqMethod::NormalCholesky => solve_normal(h, y),
        LstsqMethod::Qr => solve_qr(h, y),
        LstsqMethod::CholeskyThenQr => match solve_normal(h, y) {
            Ok(sol) => Ok(sol),
            Err(
                LinalgError::NotPositiveDefinite { .. } | LinalgError::SingularTriangular { .. },
            ) => solve_qr(h, y),
            Err(e) => Err(e),
        },
    }
}

fn solve_normal(h: &DenseMatrix, y: &[f64]) -> Result<LstsqSolution, LinalgError> {
    let gram = h.gram();
    let rhs = h.transpose_matvec(y)?;
    let chol = Cholesky::factor(&gram)?;
    Ok(LstsqSolution {
        x: chol.solve(&rhs)?,
        method_used: LstsqMethod::NormalCholesky,
    })
}

fn solve_qr(h: &DenseMatrix, y: &[f64]) -> Result<LstsqSolution, LinalgError> {
    let qr = Qr::factor(h)?;
    Ok(LstsqSolution {
        x: qr.solve_least_squares(y)?,
        method_used: LstsqMethod::Qr,
    })
}

/// Solves the least-squares problem for a sparse matrix with CGLS, assembling
/// nothing dense. This is the scalability path for large FCMs: cost per
/// iteration is `O(nnz)`.
///
/// # Errors
///
/// Propagates [`LinalgError::DimensionMismatch`] and
/// [`LinalgError::DidNotConverge`] from [`cgls`].
pub fn lstsq_sparse(
    h: &CsrMatrix,
    y: &[f64],
    tol: f64,
    max_iter: usize,
) -> Result<LstsqSolution, LinalgError> {
    let out = cgls(h, y, tol, max_iter)?;
    Ok(LstsqSolution {
        x: out.x,
        method_used: LstsqMethod::NormalCholesky, // iterative normal-equation solve
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_h() -> DenseMatrix {
        DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap()
    }

    #[test]
    fn reproduces_paper_worked_example() {
        // Eq. (7): Y' = (3,3,4,3,8,12)ᵀ, X̂ = (3,1,8)ᵀ, Δ = (0,0,0,3,0,0)ᵀ.
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let sol = lstsq(&h, &y, LstsqMethod::NormalCholesky).unwrap();
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
        assert!((sol.x[1] - 1.0).abs() < 1e-9);
        assert!((sol.x[2] - 8.0).abs() < 1e-9);
        let delta: Vec<f64> = sol.residual(&h, &y).iter().map(|r| r.abs()).collect();
        let expected = [0., 0., 0., 3., 0., 0.];
        for (d, e) in delta.iter().zip(&expected) {
            assert!((d - e).abs() < 1e-9, "delta {d} vs expected {e}");
        }
    }

    #[test]
    fn all_methods_agree() {
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let a = lstsq(&h, &y, LstsqMethod::NormalCholesky).unwrap();
        let b = lstsq(&h, &y, LstsqMethod::Qr).unwrap();
        let c = lstsq(&h, &y, LstsqMethod::CholeskyThenQr).unwrap();
        for i in 0..3 {
            assert!((a.x[i] - b.x[i]).abs() < 1e-9);
            assert!((a.x[i] - c.x[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fallback_engages_on_duplicate_flows() {
        // Two identical columns: Cholesky of the Gram matrix must fail, and
        // with CholeskyThenQr the QR path reports the singular triangle.
        let h = DenseMatrix::from_rows(&[&[1., 1.], &[1., 1.], &[1., 1.]]).unwrap();
        let y = [1., 1., 1.];
        assert!(lstsq(&h, &y, LstsqMethod::NormalCholesky).is_err());
        // QR also errors (rank deficient), so CholeskyThenQr surfaces it.
        assert!(lstsq(&h, &y, LstsqMethod::CholeskyThenQr).is_err());
    }

    #[test]
    fn fallback_returns_qr_label() {
        // Nearly dependent columns: Gram pivot under tolerance but QR's
        // R diagonal above it is impossible to construct reliably, so test
        // the label on a clean fallback instead: force failure by an exactly
        // singular Gram matrix but full-rank... not possible. Instead verify
        // method_used on the happy Cholesky path.
        let h = paper_h();
        let sol = lstsq(&h, &[0.0; 6], LstsqMethod::CholeskyThenQr).unwrap();
        assert_eq!(sol.method_used, LstsqMethod::NormalCholesky);
    }

    #[test]
    fn sparse_path_matches_dense() {
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let sparse = CsrMatrix::from_dense(&h);
        let dense_sol = lstsq(&h, &y, LstsqMethod::Qr).unwrap();
        let sparse_sol = lstsq_sparse(&sparse, &y, 1e-12, 1000).unwrap();
        for (a, b) in dense_sol.x.iter().zip(&sparse_sol.x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn rhs_length_validated() {
        let h = paper_h();
        assert!(matches!(
            lstsq(&h, &[1.0; 5], LstsqMethod::Qr),
            Err(LinalgError::DimensionMismatch(_))
        ));
    }

    #[test]
    fn zero_rhs_gives_zero_solution_and_zero_residual() {
        let h = paper_h();
        let y = [0.0; 6];
        let sol = lstsq(&h, &y, LstsqMethod::NormalCholesky).unwrap();
        assert!(sol.x.iter().all(|v| v.abs() < 1e-12));
        assert!(sol.residual(&h, &y).iter().all(|v| v.abs() < 1e-12));
    }
}
