use crate::DenseMatrix;

/// Computes the numerical rank of a matrix by Gaussian elimination with
/// partial pivoting, treating pivots below `tol * max|a_ij|` as zero.
///
/// The FOCES detectability oracle (Theorem 1) needs exactly this: an anomaly
/// `FA(hᵢ, hᵢ')` is *undetectable* iff appending the deviated column `hᵢ'`
/// to the FCM does not increase its rank. FCM entries are 0/1, so partial
/// pivoting with a relative tolerance is plenty robust here.
///
/// # Example
///
/// ```
/// use foces_linalg::{rank, DenseMatrix, DEFAULT_TOL};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let m = DenseMatrix::from_rows(&[&[1., 2.], &[2., 4.]])?; // dependent rows
/// assert_eq!(rank(&m, DEFAULT_TOL), 1);
/// # Ok(())
/// # }
/// ```
pub fn rank(a: &DenseMatrix, tol: f64) -> usize {
    let (m, n) = (a.rows(), a.cols());
    if m == 0 || n == 0 {
        return 0;
    }
    let mut w = a.clone();
    let threshold = tol * w.max_abs().max(1.0);
    let mut rank = 0;
    let mut row = 0;
    for col in 0..n {
        // Find pivot: largest |entry| in this column at or below `row`.
        let mut piv = row;
        let mut piv_val = 0.0_f64;
        for i in row..m {
            let v = w.get(i, col).abs();
            if v > piv_val {
                piv_val = v;
                piv = i;
            }
        }
        if piv_val <= threshold {
            continue; // column is dependent on previous ones
        }
        // Swap rows `row` and `piv`.
        if piv != row {
            for j in col..n {
                let tmp = w.get(row, j);
                w.set(row, j, w.get(piv, j));
                w.set(piv, j, tmp);
            }
        }
        // Eliminate below.
        let pivot = w.get(row, col);
        for i in row + 1..m {
            let factor = w.get(i, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                w.set(i, j, w.get(i, j) - factor * w.get(row, j));
            }
        }
        rank += 1;
        row += 1;
        if row == m {
            break;
        }
    }
    rank
}

/// Tests whether vector `v` lies in the column span of `a`.
///
/// This is Theorem 1 of the paper operationalized: `rank([A | v]) == rank(A)`
/// iff `v` is a linear combination of `A`'s columns, i.e. the corresponding
/// forwarding anomaly is **undetectable** by the flow-counter equation
/// system.
///
/// # Panics
///
/// Panics if `v.len() != a.rows()` — span membership is only defined for
/// vectors of matching dimension.
///
/// # Example
///
/// ```
/// use foces_linalg::{in_column_span, DenseMatrix, DEFAULT_TOL};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.]])?;
/// assert!(in_column_span(&a, &[2., 3., 5.], DEFAULT_TOL));   // 2c₀ + 3c₁
/// assert!(!in_column_span(&a, &[1., 0., 0.], DEFAULT_TOL));
/// # Ok(())
/// # }
/// ```
pub fn in_column_span(a: &DenseMatrix, v: &[f64], tol: f64) -> bool {
    assert_eq!(
        v.len(),
        a.rows(),
        "span test: vector length {} but matrix has {} rows",
        v.len(),
        a.rows()
    );
    let base_rank = rank(a, tol);
    let mut augmented = a.clone();
    augmented
        .push_col(v)
        .expect("length checked above, push_col cannot fail");
    rank(&augmented, tol) == base_rank
}

/// A reusable column-span membership tester: orthonormalizes a matrix's
/// columns once (modified Gram–Schmidt, skipping dependent columns), then
/// answers `v ∈ span(A)` queries in `O(rows · rank)` each.
///
/// The FOCES detectability audit asks thousands of span queries against
/// the *same* FCM; recomputing a rank factorization per query (as the
/// plain [`in_column_span`] does) is quadratically wasteful.
///
/// # Example
///
/// ```
/// use foces_linalg::{DenseMatrix, SpanTester, DEFAULT_TOL};
///
/// # fn main() -> Result<(), foces_linalg::LinalgError> {
/// let a = DenseMatrix::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.]])?;
/// let tester = SpanTester::new(&a, DEFAULT_TOL);
/// assert_eq!(tester.rank(), 2);
/// assert!(tester.contains(&[2., 3., 5.]));
/// assert!(!tester.contains(&[1., 0., 0.]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SpanTester {
    /// Orthonormal basis vectors of the column space, each of length `rows`.
    basis: Vec<Vec<f64>>,
    rows: usize,
    tol: f64,
}

impl SpanTester {
    /// Builds the tester from a matrix's columns.
    pub fn new(a: &DenseMatrix, tol: f64) -> Self {
        let mut tester = SpanTester::empty(a.rows(), tol);
        for j in 0..a.cols() {
            tester.absorb(a.col(j));
        }
        tester
    }

    /// An empty tester over `rows`-dimensional vectors; grow it with
    /// [`SpanTester::absorb`]. Lets callers with huge sparse matrices feed
    /// columns one at a time without densifying the whole matrix.
    pub fn empty(rows: usize, tol: f64) -> Self {
        SpanTester {
            basis: Vec::new(),
            rows,
            tol,
        }
    }

    /// Number of independent columns absorbed so far.
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Projects `v` out of the current basis in place, returning the
    /// residual norm (and leaving the residual in `v`).
    fn project_out(&self, v: &mut [f64]) -> f64 {
        for q in &self.basis {
            let dot: f64 = q.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
            for (vi, qi) in v.iter_mut().zip(q) {
                *vi -= dot * qi;
            }
        }
        v.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Whether `v` lies in the span (residual below `tol` relative to the
    /// vector's own norm, or absolutely for near-zero vectors).
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the matrix's row count.
    pub fn contains(&self, v: &[f64]) -> bool {
        assert_eq!(v.len(), self.rows, "span query length mismatch");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut work = v.to_vec();
        let residual = self.project_out(&mut work);
        residual <= self.tol * norm.max(1.0)
    }

    /// Absorbs a new generator column into the basis (no-op if dependent).
    /// Lets the audit grow the span as flows are added.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the matrix's row count.
    pub fn absorb(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.rows, "span absorb length mismatch");
        let norm: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        let mut work = v.to_vec();
        let residual = self.project_out(&mut work);
        if residual > self.tol * norm.max(1.0) {
            // Re-orthogonalize once (classic MGS twice-is-enough) for
            // numerical hygiene, then normalize.
            let r2 = self.project_out(&mut work);
            if r2 > 0.0 {
                for x in &mut work {
                    *x /= r2;
                }
                self.basis.push(work);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DEFAULT_TOL;

    #[test]
    fn full_rank_square() {
        let m = DenseMatrix::identity(4);
        assert_eq!(rank(&m, DEFAULT_TOL), 4);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(rank(&DenseMatrix::zeros(3, 5), DEFAULT_TOL), 0);
        assert_eq!(rank(&DenseMatrix::zeros(0, 0), DEFAULT_TOL), 0);
    }

    #[test]
    fn tall_matrix_rank_bounded_by_cols() {
        let m = DenseMatrix::from_rows(&[&[1., 0.], &[0., 1.], &[1., 1.], &[2., 1.]]).unwrap();
        assert_eq!(rank(&m, DEFAULT_TOL), 2);
    }

    #[test]
    fn dependent_columns_detected() {
        // Third column = first + second.
        let m = DenseMatrix::from_rows(&[&[1., 0., 1.], &[0., 1., 1.], &[1., 1., 2.]]).unwrap();
        assert_eq!(rank(&m, DEFAULT_TOL), 2);
    }

    #[test]
    fn rank_of_paper_fcm() {
        // Paper Eq. (6): H has three independent columns.
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        assert_eq!(rank(&h, DEFAULT_TOL), 3);
    }

    #[test]
    fn span_membership_detects_fig3_counterexample() {
        // Paper Fig. 3 / Eq. (8): the deviated column h2' = h1 - h2 + h3,
        // so the anomaly is undetectable. Columns of H (6 rules, 3 flows):
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 1.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        // H' column 2 (flow b deviated): matches r1?, from Eq. 8 H' col 1 is
        // (0,1,0,... ) — actually the deviated *first* flow: H' col0 = (1,1,0,1,1,1).
        let h_dev = [1., 1., 0., 1., 1., 1.];
        assert!(in_column_span(&h, &h_dev, DEFAULT_TOL));
    }

    #[test]
    fn span_membership_detects_fig2_anomaly_as_detectable() {
        // Paper Fig. 2 / Eq. (6): deviated column (1,1,0,1,1,1) vs FCM with
        // rule r4 unused — there the anomaly IS detectable.
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let h_dev = [1., 1., 0., 1., 1., 1.];
        assert!(!in_column_span(&h, &h_dev, DEFAULT_TOL));
    }

    #[test]
    #[should_panic(expected = "span test")]
    fn span_test_panics_on_length_mismatch() {
        let a = DenseMatrix::identity(2);
        in_column_span(&a, &[1.0; 3], DEFAULT_TOL);
    }

    #[test]
    fn span_tester_agrees_with_rank_test() {
        let h = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 1.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        let tester = SpanTester::new(&h, DEFAULT_TOL);
        assert_eq!(tester.rank(), rank(&h, DEFAULT_TOL));
        // Fig. 3 deviated column: in span.
        let dev = [1., 1., 0., 1., 1., 1.];
        assert_eq!(tester.contains(&dev), in_column_span(&h, &dev, DEFAULT_TOL));
        assert!(tester.contains(&dev));
        // Arbitrary off-span vector.
        let off = [1., 0., 0., 0., 0., 0.];
        assert_eq!(tester.contains(&off), in_column_span(&h, &off, DEFAULT_TOL));
        assert!(!tester.contains(&off));
        // Zero vector is always in the span.
        assert!(tester.contains(&[0.0; 6]));
    }

    #[test]
    fn span_tester_absorb_grows_the_space() {
        let a = DenseMatrix::from_rows(&[&[1., 0.], &[0., 1.], &[0., 0.]]).unwrap();
        let mut tester = SpanTester::new(&a, DEFAULT_TOL);
        assert!(!tester.contains(&[0., 0., 1.]));
        tester.absorb(&[0., 0., 2.]);
        assert_eq!(tester.rank(), 3);
        assert!(tester.contains(&[5., -3., 7.]));
        // Absorbing a dependent vector is a no-op.
        tester.absorb(&[1., 1., 1.]);
        assert_eq!(tester.rank(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn span_tester_validates_query_length() {
        let a = DenseMatrix::identity(2);
        SpanTester::new(&a, DEFAULT_TOL).contains(&[1.0; 3]);
    }

    #[test]
    fn near_dependent_column_respects_tolerance() {
        let m = DenseMatrix::from_rows(&[&[1., 1. + 1e-13], &[1., 1.]]).unwrap();
        // With default tolerance the tiny perturbation is below threshold.
        assert_eq!(rank(&m, 1e-9), 1);
        // With an absurdly small tolerance it counts as full rank.
        assert_eq!(rank(&m, 1e-16), 2);
    }
}
