//! Cached Cholesky factor of a Gram matrix, maintained across epochs.
//!
//! The FOCES detector solves the normal equations `(HᵀH) x = Hᵀy` every
//! collection epoch. Between epochs only a handful of rules change, so the
//! Gram matrix `G = HᵀH` changes by a few rows/columns — [`FactorCache`]
//! owns the factor `L·Lᵀ` (and, on request, `G` itself) and patches it in
//! place:
//!
//! * a **new** basis column appends a bordered row/column (`O(n²)`);
//! * a **departed** basis column is cut out with a Givens sweep (`O(n²)`);
//! * an **entry perturbation** is absorbed as a rank-one update/downdate.
//!
//! With [`FactorCache::factor`] every mutation keeps `G` and `L`
//! consistent, so the cache can run one step of iterative refinement
//! against its own Gram matrix and report how well-conditioned the patched
//! factor still is. With [`FactorCache::factor_lean`] only the factor is
//! kept — half the memory traffic per patch — and the caller verifies
//! solutions against the original sparse system instead (the incremental
//! solver in `foces-core` does exactly that, plus a rank budget, to decide
//! when to stop patching and refactorize from scratch).

use crate::{Cholesky, DenseMatrix, LinalgError};

/// Cumulative-work bookkeeping and factor handle for incremental solving.
///
/// See the module docs for the maintenance operations. [`FactorCache`]
/// deliberately knows nothing about FCMs or flows: it maintains an abstract
/// SPD system. The mapping from FCM deltas to column edits lives in
/// `foces-core`.
#[derive(Debug, Clone)]
pub struct FactorCache {
    /// The Gram matrix the factor represents, when the caller asked for it
    /// to be kept ([`FactorCache::factor`]). [`FactorCache::factor_lean`]
    /// stores `None`: every patch then touches only the factor, halving
    /// the cache's memory traffic — the right trade for callers that
    /// verify solutions against the original sparse system instead of the
    /// Gram copy (the incremental FOCES solver does exactly that).
    gram: Option<DenseMatrix>,
    chol: Cholesky,
    /// Number of rank-one modifications absorbed since the last full
    /// factorization (append/remove count once per column; updates and
    /// downdates once per vector). Drives the caller's drift budget.
    applied_rank: usize,
}

impl FactorCache {
    /// Factors `gram` (symmetric positive definite) from scratch, keeping
    /// the Gram matrix so [`FactorCache::solve_refined`] can refine
    /// against it.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from [`Cholesky::factor`] — notably
    /// [`LinalgError::NotPositiveDefinite`] when `gram` is singular.
    pub fn factor(gram: DenseMatrix) -> Result<Self, LinalgError> {
        let chol = Cholesky::factor(&gram)?;
        Ok(Self {
            gram: Some(gram),
            chol,
            applied_rank: 0,
        })
    }

    /// Factors `gram` and then discards it: the cache holds only the
    /// triangular factor, so patches cost half the memory traffic.
    /// [`FactorCache::solve_refined`] is unavailable on a lean cache —
    /// callers are expected to check their solutions against the system
    /// the Gram matrix was built from.
    ///
    /// # Errors
    ///
    /// As for [`FactorCache::factor`].
    pub fn factor_lean(gram: DenseMatrix) -> Result<Self, LinalgError> {
        let chol = Cholesky::factor(&gram)?;
        Ok(Self {
            gram: None,
            chol,
            applied_rank: 0,
        })
    }

    /// Dimension of the cached system.
    pub fn dim(&self) -> usize {
        self.chol.dim()
    }

    /// Borrows the Gram matrix the factor currently represents, or `None`
    /// for a lean cache ([`FactorCache::factor_lean`]).
    pub fn gram(&self) -> Option<&DenseMatrix> {
        self.gram.as_ref()
    }

    /// Borrows the underlying Cholesky factor.
    pub fn cholesky(&self) -> &Cholesky {
        &self.chol
    }

    /// Rank-one modifications absorbed since the last full factorization.
    pub fn applied_rank(&self) -> usize {
        self.applied_rank
    }

    /// Absorbs `G ← G + v·vᵀ` into both the Gram matrix and the factor.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] on length mismatch; the cache is
    /// untouched in that case.
    pub fn update(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        self.chol.rank_one_update(v)?;
        if let Some(gram) = &mut self.gram {
            rank_one_accumulate(gram, v, 1.0);
        }
        self.applied_rank += 1;
        Ok(())
    }

    /// Absorbs `G ← G − v·vᵀ`, rejecting the operation if the result would
    /// be singular or indefinite.
    ///
    /// # Errors
    ///
    /// As for [`Cholesky::rank_one_downdate`]; rejection is atomic — both
    /// `gram` and the factor keep their previous values, so the caller can
    /// fall back to refactorizing whatever system it actually holds.
    pub fn downdate(&mut self, v: &[f64]) -> Result<(), LinalgError> {
        self.chol.rank_one_downdate(v)?;
        if let Some(gram) = &mut self.gram {
            rank_one_accumulate(gram, v, -1.0);
        }
        self.applied_rank += 1;
        Ok(())
    }

    /// Appends a new trailing row/column (`cross`, `diag`) to the system —
    /// the Gram image of a freshly added FCM basis column.
    ///
    /// # Errors
    ///
    /// As for [`Cholesky::append_row_col`]; atomic on failure.
    pub fn append(&mut self, cross: &[f64], diag: f64) -> Result<(), LinalgError> {
        self.append_batch(&[cross.to_vec()], &[diag])
    }

    /// Batched append: absorbs `crosses.len()` new trailing rows/columns
    /// with **one** factor expansion and **one** Gram reallocation.
    /// `crosses[i]` must have length `dim + i` — each new column's cross
    /// terms include the columns appended earlier in the same batch. This
    /// is the shape the incremental solver produces naturally, and batching
    /// is what keeps a churn epoch's worth of appends `O(k·n²)` instead of
    /// `k` full-matrix copies.
    ///
    /// # Errors
    ///
    /// As for [`Cholesky::append_rows_cols`]; rejection anywhere in the
    /// batch leaves both the Gram matrix and the factor untouched.
    pub fn append_batch(&mut self, crosses: &[Vec<f64>], diags: &[f64]) -> Result<(), LinalgError> {
        if crosses.is_empty() && diags.is_empty() {
            return Ok(());
        }
        self.chol.append_rows_cols(crosses, diags)?;
        let k = crosses.len();
        if let Some(gram) = &mut self.gram {
            let n = gram.rows();
            let mut grown = DenseMatrix::zeros(n + k, n + k);
            for j in 0..n {
                grown.col_mut(j)[..n].copy_from_slice(gram.col(j));
            }
            for (i, (cross, &diag)) in crosses.iter().zip(diags).enumerate() {
                let m = n + i;
                {
                    let col = grown.col_mut(m);
                    col[..m].copy_from_slice(cross);
                    col[m] = diag;
                }
                // Mirror the cross terms into row m (symmetry).
                for (j, &cj) in cross.iter().enumerate() {
                    grown.set(m, j, cj);
                }
            }
            *gram = grown;
        }
        self.applied_rank += k;
        Ok(())
    }

    /// Deletes row/column `j` from the system — the Gram image of a
    /// departed FCM basis column.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn remove(&mut self, j: usize) {
        self.remove_batch(&[j]);
    }

    /// Batched removal: deletes every row/column in `positions` (strictly
    /// ascending) with one Givens sweep over the factor and one segment-copy
    /// compaction of the Gram matrix.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is not strictly ascending or out of range.
    pub fn remove_batch(&mut self, positions: &[usize]) {
        if positions.is_empty() {
            return;
        }
        // The factor validates `positions` (and panics) before the Gram
        // matrix is touched, so a bad call leaves the cache consistent.
        self.chol.remove_rows_cols(positions);
        if let Some(gram) = &mut self.gram {
            gram.delete_rows_cols_in_place(positions);
        }
        self.applied_rank += positions.len();
    }

    /// Solves `G x = rhs` with the cached factor (no refinement).
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the triangular solves.
    pub fn solve(&self, rhs: &[f64]) -> Result<Vec<f64>, LinalgError> {
        self.chol.solve(rhs)
    }

    /// Solves `G x = rhs` and then applies one step of iterative
    /// refinement against the cached Gram matrix, returning the refined
    /// solution together with the *relative* residual `‖G x − rhs‖ / ‖rhs‖`
    /// after refinement. A patched factor that has drifted numerically
    /// shows up here as a residual the refinement step cannot pull down —
    /// the incremental solver treats that as its cue to refactorize.
    ///
    /// # Errors
    ///
    /// Propagates [`LinalgError`] from the triangular solves;
    /// [`LinalgError::InvalidInput`] on a lean cache
    /// ([`FactorCache::factor_lean`]), which has no Gram matrix to refine
    /// against.
    pub fn solve_refined(&self, rhs: &[f64]) -> Result<(Vec<f64>, f64), LinalgError> {
        let Some(gram) = &self.gram else {
            return Err(LinalgError::InvalidInput(
                "solve_refined needs the cached Gram matrix; this cache was built with \
                 factor_lean — refine against the original system instead"
                    .to_string(),
            ));
        };
        let mut x = self.chol.solve(rhs)?;
        let mut r = residual(gram, &x, rhs)?;
        let dx = self.chol.solve(&r)?;
        for (xi, di) in x.iter_mut().zip(&dx) {
            *xi += di;
        }
        r = residual(gram, &x, rhs)?;
        let rhs_norm = norm(rhs).max(f64::MIN_POSITIVE);
        Ok((x, norm(&r) / rhs_norm))
    }
}

/// `G ← G + sign·v·vᵀ`, exploiting symmetry.
fn rank_one_accumulate(gram: &mut DenseMatrix, v: &[f64], sign: f64) {
    let n = gram.rows();
    for j in 0..n {
        let vj = sign * v[j];
        if vj == 0.0 {
            continue;
        }
        let col = gram.col_mut(j);
        for (i, ci) in col.iter_mut().enumerate() {
            *ci += v[i] * vj;
        }
    }
}

fn residual(gram: &DenseMatrix, x: &[f64], rhs: &[f64]) -> Result<Vec<f64>, LinalgError> {
    let gx = gram.matvec(x)?;
    Ok(rhs.iter().zip(&gx).map(|(b, a)| b - a).collect())
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd(n: usize, seed: u64) -> DenseMatrix {
        // Deterministic SPD test matrix: B·Bᵀ + n·I with a cheap LCG fill.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let mut b = DenseMatrix::zeros(n, n);
        for j in 0..n {
            for i in 0..n {
                b.set(i, j, next());
            }
        }
        let mut g = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            g.set(i, i, g.get(i, i) + n as f64);
        }
        g
    }

    #[test]
    fn refined_solve_matches_direct() {
        let g = spd(8, 3);
        let cache = FactorCache::factor(g.clone()).unwrap();
        let rhs: Vec<f64> = (0..8).map(|i| (i as f64) - 3.5).collect();
        let (x, rel) = cache.solve_refined(&rhs).unwrap();
        assert!(rel < 1e-10, "relative residual {rel}");
        let gx = g.matvec(&x).unwrap();
        for (a, b) in gx.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn update_then_downdate_roundtrips() {
        let g = spd(6, 7);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        let v = [0.5, -1.0, 2.0, 0.0, 1.5, -0.25];
        cache.update(&v).unwrap();
        cache.downdate(&v).unwrap();
        assert_eq!(cache.applied_rank(), 2);
        assert!(cache.gram().unwrap().approx_eq(&g, 1e-9));
        let fresh = Cholesky::factor(&g).unwrap();
        assert!(cache.cholesky().l().approx_eq(fresh.l(), 1e-8));
    }

    #[test]
    fn append_then_remove_roundtrips() {
        let g = spd(5, 11);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        let cross = [0.1, 0.2, -0.3, 0.4, -0.5];
        cache.append(&cross, 9.0).unwrap();
        assert_eq!(cache.dim(), 6);
        cache.remove(5);
        assert_eq!(cache.dim(), 5);
        assert!(cache.gram().unwrap().approx_eq(&g, 1e-9));
        let fresh = Cholesky::factor(&g).unwrap();
        assert!(cache.cholesky().l().approx_eq(fresh.l(), 1e-8));
    }

    #[test]
    fn downdate_to_singular_is_rejected_atomically() {
        let g = spd(4, 19);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        // Removing 2·G's first column's worth of energy along e0 makes the
        // matrix indefinite: v·vᵀ with v = sqrt(2·g00)·e0.
        let v = [(2.0 * g.get(0, 0)).sqrt(), 0.0, 0.0, 0.0];
        let err = cache.downdate(&v).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert!(cache.gram().unwrap().approx_eq(&g, 0.0));
        assert_eq!(cache.applied_rank(), 0);
    }

    #[test]
    fn batched_remove_and_append_match_the_one_at_a_time_path() {
        let g = spd(8, 31);
        let mut batched = FactorCache::factor(g.clone()).unwrap();
        let mut chained = FactorCache::factor(g.clone()).unwrap();

        batched.remove_batch(&[2, 5, 6]);
        for &j in [6, 5, 2].iter() {
            chained.remove(j);
        }
        assert!(batched
            .gram()
            .unwrap()
            .approx_eq(chained.gram().unwrap(), 0.0));
        assert!(batched
            .cholesky()
            .l()
            .approx_eq(chained.cholesky().l(), 1e-12));
        assert_eq!(batched.applied_rank(), 3);

        let c0: Vec<f64> = (0..5).map(|i| 0.1 * (i as f64) - 0.2).collect();
        let c1: Vec<f64> = (0..6).map(|i| 0.05 * (i as f64 + 1.0)).collect();
        batched
            .append_batch(&[c0.clone(), c1.clone()], &[6.0, 8.0])
            .unwrap();
        chained.append(&c0, 6.0).unwrap();
        chained.append(&c1, 8.0).unwrap();
        assert_eq!(batched.dim(), 7);
        assert!(batched
            .gram()
            .unwrap()
            .approx_eq(chained.gram().unwrap(), 0.0));
        assert!(batched
            .cholesky()
            .l()
            .approx_eq(chained.cholesky().l(), 1e-12));
        assert_eq!(batched.applied_rank(), 5);
    }

    #[test]
    fn batched_append_rejection_leaves_the_cache_untouched() {
        let g = spd(4, 41);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        let c0 = vec![0.1, -0.2, 0.3, 0.0];
        // Duplicate of c0 as seen by the expanded system: cross terms are
        // c0 against the original columns plus the first appended diag.
        let mut c1 = c0.clone();
        c1.push(5.0);
        let err = cache.append_batch(&[c0, c1], &[5.0, 5.0]).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
        assert!(cache.gram().unwrap().approx_eq(&g, 0.0));
        assert_eq!(cache.dim(), 4);
        assert_eq!(cache.applied_rank(), 0);
    }

    #[test]
    fn lean_cache_patches_the_factor_without_a_gram_copy() {
        let g = spd(6, 53);
        let mut lean = FactorCache::factor_lean(g.clone()).unwrap();
        let mut full = FactorCache::factor(g).unwrap();
        assert!(lean.gram().is_none());

        lean.remove_batch(&[1, 4]);
        full.remove_batch(&[1, 4]);
        let cross = vec![0.25, -0.5, 0.75, 0.0];
        lean.append(&cross, 6.0).unwrap();
        full.append(&cross, 6.0).unwrap();
        assert!(lean.cholesky().l().approx_eq(full.cholesky().l(), 1e-12));
        assert_eq!(lean.applied_rank(), 3);

        let rhs = vec![1.0, -1.0, 2.0, 0.5, -0.25];
        let a = lean.solve(&rhs).unwrap();
        let b = full.solve(&rhs).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
        assert!(matches!(
            lean.solve_refined(&rhs),
            Err(LinalgError::InvalidInput(_))
        ));
    }

    #[test]
    fn remove_interior_column_matches_fresh_factor() {
        let g = spd(7, 23);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        cache.remove(2);
        let keep: Vec<usize> = (0..7).filter(|&i| i != 2).collect();
        let sub = g.select(&keep, &keep);
        let fresh = Cholesky::factor(&sub).unwrap();
        assert!(cache.cholesky().l().approx_eq(fresh.l(), 1e-8));
        assert!(cache.gram().unwrap().approx_eq(&sub, 0.0));
    }
}
