//! Dense and sparse linear-algebra kernels for the FOCES reproduction.
//!
//! FOCES ("FlOw Counter Equation System", ICDCS 2018) reduces forwarding
//! anomaly detection in software-defined networks to solving overdetermined
//! linear least-squares problems `H X ≈ Y'`, where `H` is the 0/1
//! *flow-counter matrix* relating flows to the rules they traverse. This crate
//! provides everything the detector needs to do that from scratch:
//!
//! * [`DenseMatrix`]: a column-major `f64` matrix with the usual products,
//!   written so that the normal-equation assembly `HᵀH` is cache-friendly;
//! * [`Cholesky`]: an `L·Lᵀ` factorization used to solve the (symmetric
//!   positive-definite) normal equations `HᵀH x = Hᵀ y`;
//! * [`Qr`]: a Householder QR factorization, used both as a numerically
//!   sturdier least-squares fallback and as a cross-check in tests;
//! * [`CsrMatrix`]: compressed sparse row storage, because real FCMs are
//!   extremely sparse (one nonzero per hop of each flow path);
//! * [`cgls`]: an iterative conjugate-gradient least-squares solver that
//!   scales to the large FatTree(8) instances of the paper's Fig. 12;
//! * [`rank`]: a tolerance-based rank computation backing the detectability
//!   oracle (Theorem 1 of the paper: an anomaly is undetectable iff the
//!   deviated flow column lies in the span of the original columns).
//!
//! # Example
//!
//! Solving the paper's worked example (Eq. 6–7): three flows, six rules,
//! one flow deviated. The least-squares residual is nonzero exactly because
//! the observed counters are inconsistent with the controller's view.
//!
//! ```
//! use foces_linalg::{DenseMatrix, lstsq, LstsqMethod};
//!
//! # fn main() -> Result<(), foces_linalg::LinalgError> {
//! let h = DenseMatrix::from_rows(&[
//!     &[1., 0., 0.],
//!     &[1., 0., 0.],
//!     &[1., 1., 0.],
//!     &[0., 0., 0.],
//!     &[0., 0., 1.],
//!     &[1., 1., 1.],
//! ])?;
//! let y = [3., 3., 4., 3., 8., 12.];
//! let sol = lstsq(&h, &y, LstsqMethod::NormalCholesky)?;
//! let residual = sol.residual(&h, &y);
//! assert!(residual.iter().any(|r| r.abs() > 1.0)); // anomaly leaves a residual
//! # Ok(())
//! # }
//! ```

mod cholesky;
mod dense;
mod error;
mod factor;
mod lstsq;
mod qr;
mod rank;
mod sparse;

pub use cholesky::Cholesky;
pub use dense::DenseMatrix;
pub use error::LinalgError;
pub use factor::FactorCache;
pub use lstsq::{lstsq, lstsq_sparse, LstsqMethod, LstsqSolution};
pub use qr::Qr;
pub use rank::{in_column_span, rank, SpanTester};
pub use sparse::{CglsOutcome, CsrMatrix, Triplet};

/// Numeric tolerance used throughout the crate when deciding whether a pivot
/// or singular value is "zero". Chosen relative to `f64` machine epsilon and
/// the integer-valued matrices FOCES produces.
pub const DEFAULT_TOL: f64 = 1e-9;

/// The conjugate-gradient least-squares solver, re-exported at crate root.
pub use sparse::cgls;
