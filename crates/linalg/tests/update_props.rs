//! Property-based tests for incremental Cholesky factor maintenance.
//!
//! Strategy: generate random SPD systems (Gram matrices of random dense
//! matrices, diagonally shifted so they are safely positive definite) plus
//! random batches of modification vectors, and check that every incremental
//! path — rank-k update, rank-k downdate, bordered append, Givens removal —
//! reproduces the factor a from-scratch [`Cholesky::factor`] would compute,
//! to 1e-9. These invariants are what lets the runtime trust a factor that
//! has been patched across many epochs instead of rebuilt.

use foces_linalg::{Cholesky, DenseMatrix, FactorCache, LinalgError};
use proptest::prelude::*;

/// Strategy: a random SPD matrix `BᵀB + n·I` of side `n in 2..8`.
fn spd_matrix() -> impl Strategy<Value = DenseMatrix> {
    (2usize..8).prop_flat_map(|n| {
        proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
            let mut b = DenseMatrix::zeros(n, n);
            for j in 0..n {
                for i in 0..n {
                    b.set(i, j, vals[j * n + i]);
                }
            }
            let mut g = b.gram();
            for i in 0..n {
                g.set(i, i, g.get(i, i) + n as f64);
            }
            g
        })
    })
}

/// Strategy: an SPD matrix plus `k in 1..4` modification vectors of
/// matching length with entries small enough that downdating all of them
/// cannot drive the shifted system singular.
fn spd_with_vectors() -> impl Strategy<Value = (DenseMatrix, Vec<Vec<f64>>)> {
    spd_matrix().prop_flat_map(|g| {
        let n = g.rows();
        proptest::collection::vec(proptest::collection::vec(-0.4f64..0.4, n), 1..4)
            .prop_map(move |vs| (g.clone(), vs))
    })
}

/// `G ± Σ v·vᵀ` computed directly, for the from-scratch reference factor.
fn shifted_gram(g: &DenseMatrix, vs: &[Vec<f64>], sign: f64) -> DenseMatrix {
    let mut out = g.clone();
    for v in vs {
        for j in 0..out.cols() {
            for i in 0..out.rows() {
                out.set(i, j, out.get(i, j) + sign * v[i] * v[j]);
            }
        }
    }
    out
}

proptest! {
    /// Rank-k update of the cached factor equals the from-scratch factor
    /// of `G + Σ v·vᵀ`.
    #[test]
    fn rank_k_update_matches_from_scratch(gv in spd_with_vectors()) {
        let (g, vs) = gv;
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        for v in &vs {
            cache.update(v).unwrap();
        }
        let reference = Cholesky::factor(&shifted_gram(&g, &vs, 1.0)).unwrap();
        prop_assert!(
            cache.cholesky().l().approx_eq(reference.l(), 1e-9),
            "updated factor drifted from reference"
        );
        prop_assert!(cache.gram().unwrap().approx_eq(&shifted_gram(&g, &vs, 1.0), 1e-9));
        prop_assert_eq!(cache.applied_rank(), vs.len());
    }

    /// Rank-k downdate equals the from-scratch factor of `G − Σ v·vᵀ`
    /// (the vector strategy keeps the result safely positive definite).
    #[test]
    fn rank_k_downdate_matches_from_scratch(gv in spd_with_vectors()) {
        let (g, vs) = gv;
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        for v in &vs {
            cache.downdate(v).unwrap();
        }
        let reference = Cholesky::factor(&shifted_gram(&g, &vs, -1.0)).unwrap();
        prop_assert!(
            cache.cholesky().l().approx_eq(reference.l(), 1e-9),
            "downdated factor drifted from reference"
        );
        prop_assert!(cache.gram().unwrap().approx_eq(&shifted_gram(&g, &vs, -1.0), 1e-9));
    }

    /// Update followed by the same downdate round-trips to the original
    /// factor — the epoch loop's "rule touched then restored" case.
    #[test]
    fn update_downdate_roundtrip(gv in spd_with_vectors()) {
        let (g, vs) = gv;
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        for v in &vs {
            cache.update(v).unwrap();
        }
        for v in vs.iter().rev() {
            cache.downdate(v).unwrap();
        }
        let reference = Cholesky::factor(&g).unwrap();
        prop_assert!(cache.cholesky().l().approx_eq(reference.l(), 1e-9));
        prop_assert!(cache.gram().unwrap().approx_eq(&g, 1e-8));
    }

    /// Downdating past singularity is rejected with
    /// [`LinalgError::NotPositiveDefinite`] and leaves the cached factor
    /// and Gram matrix bit-for-bit intact (atomic failure).
    #[test]
    fn downdate_to_singular_is_rejected(g in spd_matrix(), axis_seed in 0usize..64) {
        let n = g.rows();
        let axis = axis_seed % n;
        // v·vᵀ with v = sqrt(2·g_aa)·e_a overshoots the diagonal entry, so
        // G − v·vᵀ is indefinite regardless of the off-diagonal structure.
        let mut v = vec![0.0; n];
        v[axis] = (2.0 * g.get(axis, axis)).sqrt();
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        let before = cache.cholesky().l().clone();
        let err = cache.downdate(&v).unwrap_err();
        prop_assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }),
            "expected NotPositiveDefinite, got {err:?}");
        prop_assert!(cache.cholesky().l().approx_eq(&before, 0.0));
        prop_assert!(cache.gram().unwrap().approx_eq(&g, 0.0));
        prop_assert_eq!(cache.applied_rank(), 0);
    }

    /// Bordered append equals the from-scratch factor of the grown matrix.
    #[test]
    fn append_matches_from_scratch(g in spd_matrix(), cross_seed in -0.5f64..0.5) {
        let n = g.rows();
        let cross: Vec<f64> = (0..n).map(|i| cross_seed * (i as f64 + 1.0) / n as f64).collect();
        let diag = n as f64 + 1.0;
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        cache.append(&cross, diag).unwrap();

        let mut grown = DenseMatrix::zeros(n + 1, n + 1);
        for (j, &cj) in cross.iter().enumerate() {
            for i in 0..n {
                grown.set(i, j, g.get(i, j));
            }
            grown.set(n, j, cj);
            grown.set(j, n, cj);
        }
        grown.set(n, n, diag);
        let reference = Cholesky::factor(&grown).unwrap();
        prop_assert!(cache.cholesky().l().approx_eq(reference.l(), 1e-9));
        prop_assert!(cache.gram().unwrap().approx_eq(&grown, 0.0));
    }

    /// Removing any row/column equals the from-scratch factor of the
    /// principal submatrix.
    #[test]
    fn remove_matches_from_scratch(g in spd_matrix(), j_seed in 0usize..64) {
        let n = g.rows();
        let j = j_seed % n;
        prop_assume!(n > 2);
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        cache.remove(j);
        let keep: Vec<usize> = (0..n).filter(|&i| i != j).collect();
        let sub = g.select(&keep, &keep);
        let reference = Cholesky::factor(&sub).unwrap();
        prop_assert!(cache.cholesky().l().approx_eq(reference.l(), 1e-9));
        prop_assert!(cache.gram().unwrap().approx_eq(&sub, 0.0));
    }

    /// A patched factor still *solves*: after a mixed batch of updates and
    /// an append, `solve_refined` drives the relative residual below 1e-9.
    #[test]
    fn patched_factor_solves_accurately(gv in spd_with_vectors()) {
        let (g, vs) = gv;
        let mut cache = FactorCache::factor(g.clone()).unwrap();
        for v in &vs {
            cache.update(v).unwrap();
        }
        let n = cache.dim();
        let cross = vec![0.25; n];
        cache.append(&cross, n as f64 + 2.0).unwrap();
        let rhs: Vec<f64> = (0..cache.dim()).map(|i| (i as f64) - 1.0).collect();
        let (x, rel) = cache.solve_refined(&rhs).unwrap();
        prop_assert!(rel < 1e-9, "relative residual {rel}");
        let gx = cache.gram().unwrap().matvec(&x).unwrap();
        for (a, b) in gx.iter().zip(&rhs) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }
}
