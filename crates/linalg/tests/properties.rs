//! Property-based tests for the linear-algebra kernels.
//!
//! Strategy: generate random tall 0/1 matrices shaped like real flow-counter
//! matrices (more rules than flows, sparse-ish columns) plus random volume
//! vectors, and check algebraic invariants that must hold for *any* input.

use foces_linalg::{
    cgls, in_column_span, lstsq, rank, Cholesky, CsrMatrix, DenseMatrix, LstsqMethod, Qr,
    DEFAULT_TOL,
};
use proptest::prelude::*;

/// Strategy: a tall 0/1 matrix with `rows >= cols`, guaranteed full column
/// rank by planting an identity block in the first `cols` rows.
fn full_rank_binary_matrix() -> impl Strategy<Value = DenseMatrix> {
    (2usize..6, 0usize..5).prop_flat_map(|(cols, extra)| {
        let rows = cols + extra + 1;
        proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |bits| {
            let mut m = DenseMatrix::zeros(rows, cols);
            for j in 0..cols {
                for i in 0..rows {
                    if bits[j * rows + i] {
                        m.set(i, j, 1.0);
                    }
                }
                // Identity block guarantees independence.
                for jj in 0..cols {
                    m.set(j, jj, if j == jj { 1.0 } else { 0.0 });
                }
            }
            m
        })
    })
}

fn volume_vector(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1.0f64..100.0, len)
}

proptest! {
    /// For consistent systems (no anomaly, no noise) the least-squares
    /// solution recovers the true volumes and the residual is zero —
    /// this is exactly FOCES's "no anomaly ⇒ Δ = 0" guarantee.
    #[test]
    fn consistent_system_has_zero_residual(h in full_rank_binary_matrix()) {
        let x_true: Vec<f64> = (0..h.cols()).map(|i| (i + 1) as f64 * 3.5).collect();
        let y = h.matvec(&x_true).unwrap();
        let sol = lstsq(&h, &y, LstsqMethod::CholeskyThenQr).unwrap();
        for (a, b) in sol.x.iter().zip(&x_true) {
            prop_assert!((a - b).abs() < 1e-6);
        }
        let res = sol.residual(&h, &y);
        prop_assert!(res.iter().all(|r| r.abs() < 1e-6));
    }

    /// The Cholesky (normal equations) and QR least-squares paths agree.
    #[test]
    fn cholesky_and_qr_agree(h in full_rank_binary_matrix(), seed in 0u64..1000) {
        // Perturb the rhs so the system is inconsistent.
        let x_true: Vec<f64> = (0..h.cols()).map(|i| (i + 2) as f64).collect();
        let mut y = h.matvec(&x_true).unwrap();
        let idx = (seed as usize) % y.len();
        y[idx] += 7.0;
        let a = lstsq(&h, &y, LstsqMethod::NormalCholesky).unwrap();
        let b = lstsq(&h, &y, LstsqMethod::Qr).unwrap();
        for (p, q) in a.x.iter().zip(&b.x) {
            prop_assert!((p - q).abs() < 1e-6, "cholesky {p} vs qr {q}");
        }
    }

    /// CGLS on the sparse form agrees with the dense direct solve.
    #[test]
    fn cgls_agrees_with_dense(h in full_rank_binary_matrix()) {
        let x_true: Vec<f64> = (0..h.cols()).map(|i| (i + 1) as f64).collect();
        let mut y = h.matvec(&x_true).unwrap();
        y[0] += 3.0; // make inconsistent
        let dense = lstsq(&h, &y, LstsqMethod::Qr).unwrap();
        let sparse = CsrMatrix::from_dense(&h);
        let iter = cgls(&sparse, &y, 1e-12, 10_000).unwrap();
        for (p, q) in dense.x.iter().zip(&iter.x) {
            prop_assert!((p - q).abs() < 1e-5, "dense {p} vs cgls {q}");
        }
    }

    /// Least-squares residual is orthogonal to the column space:
    /// Hᵀ(y - Hx̂) = 0.
    #[test]
    fn residual_is_orthogonal_to_columns(h in full_rank_binary_matrix(), bump in 1.0f64..20.0) {
        let x_true: Vec<f64> = vec![5.0; h.cols()];
        let mut y = h.matvec(&x_true).unwrap();
        let m = y.len();
        y[m - 1] += bump;
        let sol = lstsq(&h, &y, LstsqMethod::Qr).unwrap();
        let r = sol.residual(&h, &y);
        let proj = h.transpose_matvec(&r).unwrap();
        prop_assert!(proj.iter().all(|v| v.abs() < 1e-6));
    }

    /// The planted identity block guarantees full column rank.
    #[test]
    fn planted_matrices_are_full_rank(h in full_rank_binary_matrix()) {
        prop_assert_eq!(rank(&h, DEFAULT_TOL), h.cols());
    }

    /// Any linear combination of columns is in the span; a vector with
    /// support on a row where all columns are zero is not.
    #[test]
    fn span_membership_consistency(h in full_rank_binary_matrix(), c0 in 1.0f64..5.0, c1 in 1.0f64..5.0) {
        let combo: Vec<f64> = (0..h.rows())
            .map(|i| c0 * h.get(i, 0) + c1 * h.get(i, h.cols() - 1))
            .collect();
        prop_assert!(in_column_span(&h, &combo, DEFAULT_TOL));
    }

    /// Cholesky reconstruction: L·Lᵀ equals the Gram matrix.
    #[test]
    fn cholesky_reconstructs_gram(h in full_rank_binary_matrix()) {
        let g = h.gram();
        let c = Cholesky::factor(&g).unwrap();
        let recon = c.l().matmul(&c.l().transpose()).unwrap();
        prop_assert!(recon.approx_eq(&g, 1e-8));
    }

    /// |R| from QR preserves column norms of the first column.
    #[test]
    fn qr_preserves_first_column_norm(h in full_rank_binary_matrix()) {
        let qr = Qr::factor(&h).unwrap();
        let r = qr.r();
        let n0: f64 = h.col(0).iter().map(|v| v * v).sum::<f64>().sqrt();
        prop_assert!((r.get(0, 0).abs() - n0).abs() < 1e-9);
    }

    /// Sparse/dense mat-vec agreement for arbitrary matrices.
    #[test]
    fn sparse_matvec_matches_dense(
        h in full_rank_binary_matrix(),
        x in volume_vector(5)
    ) {
        let x = &x[..h.cols().min(x.len())];
        if x.len() != h.cols() { return Ok(()); }
        let sparse = CsrMatrix::from_dense(&h);
        prop_assert_eq!(sparse.matvec(x).unwrap(), h.matvec(x).unwrap());
    }

    /// Gram assembly from sparse storage matches dense.
    #[test]
    fn sparse_gram_matches_dense(h in full_rank_binary_matrix()) {
        let sparse = CsrMatrix::from_dense(&h);
        prop_assert!(sparse.gram_dense().unwrap().approx_eq(&h.gram(), 1e-9));
    }

    /// rank(A) == rank(Aᵀ).
    #[test]
    fn rank_is_transpose_invariant(h in full_rank_binary_matrix()) {
        prop_assert_eq!(rank(&h, DEFAULT_TOL), rank(&h.transpose(), DEFAULT_TOL));
    }
}
