//! ATPG-style logical-flow computation (paper §III-B, "FCM Generation").
//!
//! FOCES's flow-counter matrix has one column per **logical flow**: an
//! equivalence class of packets that traverse exactly the same set of rules.
//! Following ATPG, these classes are found by injecting a symbolic header at
//! every terminal port and pushing it through the network's flow tables:
//!
//! 1. start at a host's attachment port with the host's source address
//!    pinned and everything else wildcarded;
//! 2. at each switch, for every rule the region can match (minding priority
//!    shadowing), intersect the region with the rule's match fields, append
//!    the rule to the region's history, and forward along the rule's action;
//! 3. when a region reaches a host port, emit a [`LogicalFlow`] recording
//!    the rule history — one future FCM column.
//!
//! Regions are tracked as a positive [`Wildcard`] plus a list of negative
//! wildcards (higher-priority matches already peeled off). Emptiness is
//! decided by single-negative containment, which is exact whenever the
//! rules at each switch are pairwise disjoint or nested — true for every
//! rule set our control plane emits (per-destination and per-pair rules are
//! exact on the relevant fields). [`trace_flows`] debug-asserts this
//! precondition.
//!
//! # Example
//!
//! ```
//! use foces_atpg::trace_flows;
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_net::generators::fattree;
//!
//! let topo = fattree(4);
//! let flows = uniform_flows(&topo, 240_000.0);
//! let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
//! let logical = trace_flows(&dep.view);
//! assert_eq!(logical.len(), 240); // one class per ordered host pair
//! ```

use foces_controlplane::ControllerView;
use foces_dataplane::{Action, RuleRef, HEADER_WIDTH};
use foces_headerspace::Wildcard;
use foces_net::{HostId, Node, SwitchId};

/// One logical flow: a packet equivalence class and the rules it traverses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalFlow {
    /// The host whose terminal port the class was injected at.
    pub ingress: HostId,
    /// The host the class is delivered to.
    pub egress: HostId,
    /// The symbolic header region of the class.
    pub header: Wildcard,
    /// Rules matched, in traversal order (`h.history` in the paper).
    pub rules: Vec<RuleRef>,
    /// Switches traversed, in order (parallel to `rules` for single-table
    /// switches).
    pub path: Vec<SwitchId>,
}

impl LogicalFlow {
    /// A representative concrete header of the class (the region's
    /// wildcard bits set to zero).
    ///
    /// # Panics
    ///
    /// Panics if the header is wider than 64 bits (never the case here).
    pub fn concrete_header(&self) -> u64 {
        let mut h = 0u64;
        for pos in 0..self.header.width() {
            if self.header.bit(pos) == Some(true) {
                h |= 1 << (self.header.width() - 1 - pos);
            }
        }
        h
    }
}

/// A symbolic region: a positive wildcard minus a set of already-peeled
/// higher-priority matches.
#[derive(Debug, Clone)]
struct Region {
    pos: Wildcard,
    negs: Vec<Wildcard>,
}

impl Region {
    fn is_empty(&self) -> bool {
        self.negs.iter().any(|n| self.pos.is_subset_of(n))
    }

    /// Intersects with a match pattern, keeping only negatives that still
    /// overlap. Returns `None` if the result is empty.
    fn constrain(&self, m: &Wildcard) -> Option<Region> {
        let pos = self.pos.intersect(m)?;
        let negs: Vec<Wildcard> = self
            .negs
            .iter()
            .filter(|n| pos.overlaps(n))
            .cloned()
            .collect();
        let r = Region { pos, negs };
        if r.is_empty() {
            None
        } else {
            Some(r)
        }
    }
}

/// Hop budget for symbolic traversal; rule sets from our control plane are
/// loop-free, so this only guards against pathological inputs.
const MAX_SYMBOLIC_HOPS: usize = 64;

/// Computes all logical flows of a controller view by symbolic traversal
/// from every host's terminal port.
///
/// Classes that are dropped (table miss or drop action) or that loop do not
/// produce flows — they carry no deliverable traffic and the paper's FCM
/// likewise only has columns for port-to-port reachability classes.
/// A class delivered back to its own ingress host is also excluded (it is
/// not a host-pair flow).
pub fn trace_flows(view: &ControllerView) -> Vec<LogicalFlow> {
    debug_assert!(
        tables_disjoint_or_nested(view),
        "ATPG emptiness test requires per-switch rules to be pairwise \
         disjoint or nested"
    );
    let topo = view.topology();
    let mut out = Vec::new();
    for ingress in topo.hosts() {
        let Some((first_switch, _)) = topo.host_attachment(ingress) else {
            continue;
        };
        // Pin the source field: real traffic from this port carries the
        // host's own address.
        let mut pos = Wildcard::any(HEADER_WIDTH);
        for bit in 0..16 {
            pos.set_bit(bit, Some((ingress.0 >> (15 - bit)) & 1 == 1));
        }
        let region = Region {
            pos,
            negs: Vec::new(),
        };
        trace_from(
            view,
            ingress,
            first_switch,
            region,
            Vec::new(),
            Vec::new(),
            0,
            &mut out,
        );
    }
    // Deterministic order: by ingress, then egress, then header string.
    out.sort_by(|a, b| {
        (a.ingress, a.egress, format!("{}", a.header)).cmp(&(
            b.ingress,
            b.egress,
            format!("{}", b.header),
        ))
    });
    out
}

#[allow(clippy::too_many_arguments)]
fn trace_from(
    view: &ControllerView,
    ingress: HostId,
    switch: SwitchId,
    region: Region,
    history: Vec<RuleRef>,
    path: Vec<SwitchId>,
    hops: usize,
    out: &mut Vec<LogicalFlow>,
) {
    if hops >= MAX_SYMBOLIC_HOPS {
        return; // loop: class carries no deliverable traffic
    }
    let table = view.table(switch);
    // Rules sorted by effective precedence: priority desc, index asc —
    // mirrors FlowTable::lookup.
    let mut order: Vec<usize> = (0..table.len()).collect();
    order.sort_by(|&a, &b| {
        let (ra, rb) = (table.get(a).unwrap(), table.get(b).unwrap());
        rb.priority().cmp(&ra.priority()).then(a.cmp(&b))
    });
    let mut shadow = region;
    for idx in order {
        let rule = table.get(idx).expect("index from 0..len");
        let Some(matched) = shadow.constrain(rule.match_fields()) else {
            continue;
        };
        let mut new_history = history.clone();
        new_history.push(RuleRef { switch, index: idx });
        let mut new_path = path.clone();
        new_path.push(switch);
        match rule.action() {
            Action::Drop => {} // class dies; no column
            Action::Forward(port) => {
                if let Some(adj) = view.topology().adj(Node::Switch(switch)).get(port.0) {
                    match adj.neighbor {
                        Node::Host(egress) => {
                            if egress != ingress {
                                out.push(LogicalFlow {
                                    ingress,
                                    egress,
                                    header: matched.pos.clone(),
                                    rules: new_history,
                                    path: new_path,
                                });
                            }
                        }
                        Node::Switch(next) => {
                            trace_from(
                                view,
                                ingress,
                                next,
                                matched.clone(),
                                new_history,
                                new_path,
                                hops + 1,
                                out,
                            );
                        }
                    }
                }
                // Forward to a missing port: black hole, class dies.
            }
        }
        // Peel this rule's match off for lower-precedence rules.
        shadow.negs.push(rule.match_fields().clone());
        if shadow.is_empty() {
            break;
        }
    }
}

/// Checks the precondition of the emptiness test: within each switch table,
/// any two rules' match regions are disjoint, or one contains the other.
fn tables_disjoint_or_nested(view: &ControllerView) -> bool {
    for s in view.topology().switches() {
        let t = view.table(s);
        for (i, ri) in t.iter() {
            for (j, rj) in t.iter() {
                if i >= j {
                    continue;
                }
                let (mi, mj) = (ri.match_fields(), rj.match_fields());
                if mi.overlaps(mj) && !mi.is_subset_of(mj) && !mj.is_subset_of(mi) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{pair_header, LossModel};
    use foces_net::generators::{bcube, dcell, fattree, stanford};
    use foces_net::Topology;

    fn deployment(topo: Topology, g: RuleGranularity) -> foces_controlplane::Deployment {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        provision(topo, &flows, g).unwrap()
    }

    #[test]
    fn logical_flow_count_matches_table1() {
        for (topo, expected) in [
            (stanford(), 650usize),
            (fattree(4), 240),
            (bcube(1, 4), 240),
            (dcell(1, 4), 380),
        ] {
            let dep = deployment(topo, RuleGranularity::PerDestination);
            let flows = trace_flows(&dep.view);
            assert_eq!(flows.len(), expected);
        }
    }

    #[test]
    fn logical_flows_cover_every_host_pair_once() {
        let dep = deployment(fattree(4), RuleGranularity::PerDestination);
        let flows = trace_flows(&dep.view);
        let mut pairs: Vec<(HostId, HostId)> =
            flows.iter().map(|f| (f.ingress, f.egress)).collect();
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs.len(), flows.len(), "no duplicate classes");
        assert_eq!(pairs.len(), 16 * 15);
    }

    #[test]
    fn traced_paths_agree_with_expected_paths() {
        let dep = deployment(bcube(1, 4), RuleGranularity::PerDestination);
        let logical = trace_flows(&dep.view);
        for (spec, expected) in dep.flows.iter().zip(&dep.expected_paths) {
            let lf = logical
                .iter()
                .find(|f| f.ingress == spec.src && f.egress == spec.dst)
                .unwrap();
            assert_eq!(&lf.path, expected, "flow {spec}");
        }
    }

    #[test]
    fn traced_rules_agree_with_dataplane_forwarding() {
        // Injecting the class's concrete header must hit exactly the traced
        // rules (the whole point of the equivalence classes).
        let dep = deployment(dcell(1, 4), RuleGranularity::PerDestination);
        let logical = trace_flows(&dep.view);
        let mut dp = dep.dataplane.clone();
        for lf in logical.iter().take(60) {
            dp.reset_counters();
            dp.inject(
                lf.ingress,
                lf.concrete_header(),
                1.0,
                &mut LossModel::none(),
            );
            for r in &lf.rules {
                assert_eq!(
                    dp.counter(r.switch, r.index),
                    1.0,
                    "rule {r} missed by {lf:?}"
                );
            }
            // And no other rule was touched.
            let touched: f64 = dp.collect_counters().iter().sum();
            assert_eq!(touched, lf.rules.len() as f64);
        }
    }

    #[test]
    fn concrete_header_is_in_class() {
        let dep = deployment(fattree(4), RuleGranularity::PerDestination);
        for lf in trace_flows(&dep.view) {
            assert!(lf.header.matches_concrete(lf.concrete_header()));
            assert_eq!(
                lf.concrete_header(),
                pair_header(lf.ingress, lf.egress),
                "class header must encode the (src, dst) pair"
            );
        }
    }

    #[test]
    fn per_pair_granularity_same_classes() {
        let dep = deployment(fattree(4), RuleGranularity::PerFlowPair);
        let flows = trace_flows(&dep.view);
        assert_eq!(flows.len(), 240);
    }

    #[test]
    fn rules_matched_in_path_order() {
        let dep = deployment(stanford(), RuleGranularity::PerDestination);
        for lf in trace_flows(&dep.view).iter().take(50) {
            assert_eq!(lf.rules.len(), lf.path.len());
            for (r, s) in lf.rules.iter().zip(&lf.path) {
                assert_eq!(r.switch, *s);
            }
        }
    }

    #[test]
    fn priority_shadowing_is_respected() {
        // One switch, three hosts. A high-priority per-pair rule
        // (h0 -> h2, deliver to h1!) overlays a low-priority per-dest rule
        // (dst h2, deliver to h2). The class from h0 must take the pair
        // rule and egress at h1; the class from h1 takes the dst rule.
        use foces_controlplane::ControllerView;
        use foces_dataplane::{dst_match, pair_match, FlowTable, Rule};

        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let h: Vec<HostId> = (0..3).map(|_| topo.add_host()).collect();
        let mut host_port = Vec::new();
        for &hh in &h {
            topo.connect(Node::Host(hh), Node::Switch(s0)).unwrap();
            host_port.push(topo.host_attachment(hh).unwrap().1);
        }
        let mut table = FlowTable::new();
        table.push(Rule::new(dst_match(h[2]), 5, Action::Forward(host_port[2])));
        table.push(Rule::new(
            pair_match(h[0], h[2]),
            10,
            Action::Forward(host_port[1]), // hijack to h1
        ));
        let view = ControllerView::from_parts(topo, vec![table]);
        let traced = trace_flows(&view);
        let from_h0: Vec<&LogicalFlow> = traced.iter().filter(|f| f.ingress == h[0]).collect();
        let from_h1: Vec<&LogicalFlow> = traced.iter().filter(|f| f.ingress == h[1]).collect();
        assert_eq!(from_h0.len(), 1);
        assert_eq!(from_h0[0].egress, h[1], "pair rule must shadow dst rule");
        assert_eq!(from_h0[0].rules[0].index, 1);
        assert_eq!(from_h1.len(), 1);
        assert_eq!(from_h1[0].egress, h[2]);
        assert_eq!(from_h1[0].rules[0].index, 0);
    }

    #[test]
    fn drop_rules_produce_no_class() {
        use foces_controlplane::ControllerView;
        use foces_dataplane::{dst_match, FlowTable, Rule};

        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        topo.connect(Node::Host(h1), Node::Switch(s0)).unwrap();
        let mut table = FlowTable::new();
        table.push(Rule::new(dst_match(h1), 5, Action::Drop));
        let view = ControllerView::from_parts(topo, vec![table]);
        assert!(trace_flows(&view).is_empty());
    }

    #[test]
    fn forwarding_loop_terminates_without_class() {
        use foces_controlplane::ControllerView;
        use foces_dataplane::{FlowTable, Rule};
        use foces_headerspace::Wildcard;
        use foces_net::Port;

        // s0 <-> s1 bounce loop.
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        let h0 = topo.add_host();
        topo.connect(Node::Switch(s0), Node::Switch(s1)).unwrap(); // port 0 each
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        let mut t0 = FlowTable::new();
        t0.push(Rule::new(
            Wildcard::any(HEADER_WIDTH),
            0,
            Action::Forward(Port(0)),
        ));
        let mut t1 = FlowTable::new();
        t1.push(Rule::new(
            Wildcard::any(HEADER_WIDTH),
            0,
            Action::Forward(Port(0)),
        ));
        let view = ControllerView::from_parts(topo, vec![t0, t1]);
        assert!(trace_flows(&view).is_empty());
    }
}
