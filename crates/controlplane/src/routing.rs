use foces_net::{HostId, Node, Port, SwitchId, Topology};
use std::collections::VecDeque;

/// A shortest-path routing tree toward one destination host: for every
/// switch that can reach the destination, the output port of its next hop.
///
/// Building routing per destination (rather than per source-destination
/// pair) guarantees that a switch forwards all traffic for a destination
/// the same way, which is what makes per-destination rule aggregation
/// sound. BFS from the destination's attachment switch with port-order tie
/// breaking keeps it deterministic.
#[derive(Debug, Clone)]
pub struct DestinationTree {
    dst: HostId,
    attachment: SwitchId,
    host_port: Port,
    /// `next_hop[s]` = port switch `s` uses toward `dst`; `None` if `s`
    /// cannot reach the destination or is the attachment switch itself.
    next_hop: Vec<Option<Port>>,
    /// BFS distance (in switch hops) from each switch to the attachment.
    distance: Vec<Option<usize>>,
}

impl DestinationTree {
    /// Computes the tree for `dst` on `topo`.
    ///
    /// Returns `None` if `dst` is not attached to any switch.
    pub fn compute(topo: &Topology, dst: HostId) -> Option<Self> {
        let (attachment, host_port) = topo.host_attachment(dst)?;
        let n = topo.switch_count();
        let mut next_hop = vec![None; n];
        let mut distance = vec![None; n];
        distance[attachment.0] = Some(0);
        let mut queue = VecDeque::new();
        queue.push_back(attachment);
        while let Some(cur) = queue.pop_front() {
            let d = distance[cur.0].expect("queued switches have distances");
            for a in topo.adj(Node::Switch(cur)) {
                let Node::Switch(nb) = a.neighbor else {
                    continue;
                };
                if distance[nb.0].is_some() {
                    continue;
                }
                distance[nb.0] = Some(d + 1);
                // nb forwards toward dst via its port back to cur.
                next_hop[nb.0] = Some(a.neighbor_port);
                queue.push_back(nb);
            }
        }
        Some(DestinationTree {
            dst,
            attachment,
            host_port,
            next_hop,
            distance,
        })
    }

    /// The destination host.
    pub fn dst(&self) -> HostId {
        self.dst
    }

    /// The switch the destination attaches to.
    pub fn attachment(&self) -> SwitchId {
        self.attachment
    }

    /// The attachment switch's port facing the destination host.
    pub fn host_port(&self) -> Port {
        self.host_port
    }

    /// The port `switch` uses toward the destination: the host port on the
    /// attachment switch, the tree parent elsewhere, `None` if unreachable.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is out of range.
    pub fn egress_port(&self, switch: SwitchId) -> Option<Port> {
        if switch == self.attachment {
            Some(self.host_port)
        } else {
            self.next_hop[switch.0]
        }
    }

    /// Switch-hop distance from `switch` to the attachment switch.
    ///
    /// # Panics
    ///
    /// Panics if `switch` is out of range.
    pub fn distance(&self, switch: SwitchId) -> Option<usize> {
        self.distance[switch.0]
    }

    /// The switch path a packet from `src` takes to the destination
    /// (attachment switch of `src` first, destination attachment last), or
    /// `None` if `src` is unattached or cannot reach the destination.
    pub fn path_from(&self, topo: &Topology, src: HostId) -> Option<Vec<SwitchId>> {
        let (mut cur, _) = topo.host_attachment(src)?;
        self.distance[cur.0]?;
        let mut path = vec![cur];
        while cur != self.attachment {
            let port = self.next_hop[cur.0]?;
            let adj = topo.adj(Node::Switch(cur)).get(port.0)?;
            let Node::Switch(next) = adj.neighbor else {
                return None;
            };
            cur = next;
            path.push(cur);
        }
        Some(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_net::generators::fattree;

    fn line() -> (Topology, Vec<SwitchId>, Vec<HostId>) {
        let mut t = Topology::new();
        let s: Vec<SwitchId> = (0..3).map(|i| t.add_switch(format!("s{i}"))).collect();
        let h = vec![t.add_host(), t.add_host()];
        t.connect(Node::Switch(s[0]), Node::Switch(s[1])).unwrap();
        t.connect(Node::Switch(s[1]), Node::Switch(s[2])).unwrap();
        t.connect(Node::Host(h[0]), Node::Switch(s[0])).unwrap();
        t.connect(Node::Host(h[1]), Node::Switch(s[2])).unwrap();
        (t, s, h)
    }

    #[test]
    fn tree_routes_toward_destination() {
        let (t, s, h) = line();
        let tree = DestinationTree::compute(&t, h[1]).unwrap();
        assert_eq!(tree.attachment(), s[2]);
        assert_eq!(tree.distance(s[0]), Some(2));
        assert_eq!(tree.distance(s[2]), Some(0));
        // s0's egress toward h1 is its port to s1 (port 0).
        assert_eq!(tree.egress_port(s[0]), Some(Port(0)));
        // attachment switch egresses on the host port.
        assert_eq!(tree.egress_port(s[2]), Some(tree.host_port()));
    }

    #[test]
    fn path_from_walks_the_tree() {
        let (t, s, h) = line();
        let tree = DestinationTree::compute(&t, h[1]).unwrap();
        assert_eq!(tree.path_from(&t, h[0]).unwrap(), vec![s[0], s[1], s[2]]);
        // Path from a host attached at the destination switch itself.
        assert_eq!(tree.path_from(&t, h[1]).unwrap(), vec![s[2]]);
    }

    #[test]
    fn unattached_destination_gives_none() {
        let mut t = Topology::new();
        t.add_switch("s0");
        let h = t.add_host();
        assert!(DestinationTree::compute(&t, h).is_none());
    }

    #[test]
    fn unreachable_switch_has_no_egress() {
        let (mut t, _, h) = line();
        let island = t.add_switch("island");
        let tree = DestinationTree::compute(&t, h[1]).unwrap();
        assert_eq!(tree.egress_port(island), None);
        assert_eq!(tree.distance(island), None);
    }

    #[test]
    fn tree_paths_are_shortest_on_fattree() {
        let t = fattree(4);
        let hosts: Vec<HostId> = t.hosts().collect();
        for &dst in &hosts[..4] {
            let tree = DestinationTree::compute(&t, dst).unwrap();
            for &src in &hosts {
                if src == dst {
                    continue;
                }
                let tree_path = tree.path_from(&t, src).unwrap();
                let bfs_path = t.shortest_path(Node::Host(src), Node::Host(dst)).unwrap();
                // BFS path includes both hosts; switch count must match.
                assert_eq!(
                    tree_path.len(),
                    bfs_path.len() - 2,
                    "src {src:?} dst {dst:?}"
                );
            }
        }
    }
}
