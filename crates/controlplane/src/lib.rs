//! The simulated SDN control plane for the FOCES reproduction.
//!
//! Plays the role Floodlight plays in the paper's experiments (§VI-B): it
//! computes shortest-path routes for every host pair, compiles them into
//! flow rules, installs the rules into a [`foces_dataplane::DataPlane`], and
//! retains its own copy of what it installed — the **controller's view**.
//!
//! The controller's view is the ground truth FOCES checks against: the
//! adversary may silently rewrite actions on the data plane, but a
//! flow-table dump (which the adversary forges) always matches the view, so
//! the detector can only rely on *counters*, exactly as in the paper's
//! threat model.
//!
//! Routing is per-destination: for each host `d` a BFS tree rooted at `d`'s
//! attachment switch fixes every switch's next hop toward `d`. With
//! [`RuleGranularity::PerDestination`] one rule per (switch, destination)
//! serves every source — the aggregated rules of the paper's Fig. 2. With
//! [`RuleGranularity::PerFlowPair`] each (src, dst) pair gets its own exact
//! rule along the same path (an ablation; Floodlight's reactive mode
//! behaves this way).
//!
//! # Example
//!
//! ```
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_net::generators::fattree;
//!
//! let topo = fattree(4);
//! let flows = uniform_flows(&topo, 1000.0);
//! assert_eq!(flows.len(), 16 * 15); // all ordered host pairs
//! let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
//! assert!(dep.dataplane.rule_count() > 0);
//! ```

mod controller;
mod routing;
pub mod scenario;
mod spec;
pub mod testkit;

pub use controller::{
    provision, ControllerView, Deployment, ProvisionError, StagedUpdate, UpdateKind, UpdateRecord,
};
pub use routing::DestinationTree;
pub use spec::{uniform_flows, FlowSpec, RuleGranularity};
