//! Plain-text **scenario files**: a reproducible description of a topology,
//! a workload, and a rule-compilation granularity, parseable into a live
//! [`Deployment`]. This is the interchange format the `foces` CLI consumes,
//! and the easiest way to share a repro case ("here is the network where
//! detection misses") as a few lines of text.
//!
//! # Format
//!
//! Line-oriented; `#` starts a comment; blank lines ignored.
//!
//! ```text
//! # either a generator...
//! topology fattree 4            # fattree K | bcube LEVEL N | dcell LEVEL N
//!                               # | stanford | linear N | ring N
//!                               # | random N EXTRA SEED
//! # ...or a custom graph:
//! # switch core
//! # switch edge
//! # link core edge
//! # host edge                   # attaches a new host to the named switch
//!
//! granularity per-pair          # or per-dest (default per-pair)
//!
//! flow h0 h3 1000               # src dst rate
//! flow-via h1 h4 500 s2 s5      # src dst rate waypoint...
//! all-pairs 1000                # one flow per ordered host pair at RATE
//! all-pairs-sample 1000 1200 7  # RATE COUNT SEED: a deterministic sample
//!                               # of COUNT ordered pairs (for topologies
//!                               # whose full pair set is impractical)
//! ```
//!
//! # Example
//!
//! ```
//! use foces_controlplane::scenario::Scenario;
//!
//! let text = "topology ring 4\nall-pairs 100\n";
//! let scenario = Scenario::parse(text)?;
//! let dep = scenario.provision()?;
//! assert_eq!(dep.flows.len(), 12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::{provision, Deployment, FlowSpec, ProvisionError, RuleGranularity};
use foces_net::{generators, HostId, Node, SwitchId, Topology};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// A parse or semantic error in a scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioError {
    /// 1-based line number of the offending line (0 for file-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "scenario error: {}", self.message)
        } else {
            write!(f, "scenario error at line {}: {}", self.line, self.message)
        }
    }
}

impl Error for ScenarioError {}

impl From<ProvisionError> for ScenarioError {
    fn from(e: ProvisionError) -> Self {
        ScenarioError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// One workload entry.
#[derive(Debug, Clone, PartialEq)]
enum WorkloadEntry {
    Flow(FlowSpec),
    FlowVia(FlowSpec, Vec<SwitchId>),
    AllPairs(f64),
    /// `(rate, count, seed)` — a deterministic sample of `count` ordered
    /// host pairs, shuffled by a fixed LCG so the same scenario text always
    /// yields the same flow set on every build.
    AllPairsSample(f64, usize, u64),
}

/// A parsed scenario, ready to [`Scenario::provision`].
#[derive(Debug, Clone)]
pub struct Scenario {
    topology: Topology,
    granularity: RuleGranularity,
    workload: Vec<WorkloadEntry>,
    /// Switch labels for custom topologies (label → id), used in rendering
    /// diagnostics.
    switch_names: HashMap<String, SwitchId>,
}

impl Scenario {
    /// Parses scenario text.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] with the offending line on any syntax or
    /// semantic problem (unknown directive, undefined switch, bad number,
    /// missing topology).
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let mut topology: Option<Topology> = None;
        let mut custom = Topology::new();
        let mut used_custom = false;
        let mut switch_names: HashMap<String, SwitchId> = HashMap::new();
        let mut granularity = RuleGranularity::PerFlowPair;
        let mut workload = Vec::new();

        let err = |line: usize, message: String| ScenarioError { line, message };
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens[0] {
                "topology" => {
                    topology = Some(parse_generator(&tokens[1..], line_no)?);
                }
                "switch" => {
                    let name = *tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "switch needs a name".into()))?;
                    if switch_names.contains_key(name) {
                        return Err(err(line_no, format!("switch {name} redefined")));
                    }
                    let id = custom.add_switch(name);
                    switch_names.insert(name.to_string(), id);
                    used_custom = true;
                }
                "link" => {
                    let (a, b) = match tokens[1..] {
                        [a, b] => (a, b),
                        _ => return Err(err(line_no, "link needs two switch names".into())),
                    };
                    let &ida = switch_names
                        .get(a)
                        .ok_or_else(|| err(line_no, format!("unknown switch {a}")))?;
                    let &idb = switch_names
                        .get(b)
                        .ok_or_else(|| err(line_no, format!("unknown switch {b}")))?;
                    custom
                        .connect(Node::Switch(ida), Node::Switch(idb))
                        .map_err(|e| err(line_no, e.to_string()))?;
                    used_custom = true;
                }
                "host" => {
                    let name = *tokens
                        .get(1)
                        .ok_or_else(|| err(line_no, "host needs a switch name".into()))?;
                    let &id = switch_names
                        .get(name)
                        .ok_or_else(|| err(line_no, format!("unknown switch {name}")))?;
                    let h = custom.add_host();
                    custom
                        .connect(Node::Host(h), Node::Switch(id))
                        .map_err(|e| err(line_no, e.to_string()))?;
                    used_custom = true;
                }
                "granularity" => {
                    granularity = match tokens.get(1).copied() {
                        Some("per-pair") => RuleGranularity::PerFlowPair,
                        Some("per-dest") => RuleGranularity::PerDestination,
                        other => {
                            return Err(err(
                                line_no,
                                format!("granularity must be per-pair or per-dest, got {other:?}"),
                            ))
                        }
                    };
                }
                "flow" => {
                    let spec = parse_flow(&tokens[1..], line_no)?;
                    workload.push(WorkloadEntry::Flow(spec));
                }
                "flow-via" => {
                    if tokens.len() < 5 {
                        return Err(err(
                            line_no,
                            "flow-via needs src dst rate and at least one waypoint".into(),
                        ));
                    }
                    let spec = parse_flow(&tokens[1..4], line_no)?;
                    let mut waypoints = Vec::new();
                    for w in &tokens[4..] {
                        waypoints.push(parse_switch(w, &switch_names, line_no)?);
                    }
                    workload.push(WorkloadEntry::FlowVia(spec, waypoints));
                }
                "all-pairs" => {
                    let rate: f64 = tokens
                        .get(1)
                        .and_then(|t| t.parse().ok())
                        .ok_or_else(|| err(line_no, "all-pairs needs a rate".into()))?;
                    workload.push(WorkloadEntry::AllPairs(rate));
                }
                "all-pairs-sample" => {
                    let bad = || err(line_no, "all-pairs-sample needs RATE COUNT SEED".into());
                    let rate: f64 = tokens.get(1).and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                    let count: usize =
                        tokens.get(2).and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                    let seed: u64 = tokens.get(3).and_then(|t| t.parse().ok()).ok_or_else(bad)?;
                    workload.push(WorkloadEntry::AllPairsSample(rate, count, seed));
                }
                other => {
                    return Err(err(line_no, format!("unknown directive {other:?}")));
                }
            }
        }
        let topology = match (topology, used_custom) {
            (Some(_), true) => {
                return Err(ScenarioError {
                    line: 0,
                    message: "scenario mixes a topology generator with custom \
                              switch/link/host lines"
                        .into(),
                })
            }
            (Some(t), false) => t,
            (None, true) => custom,
            (None, false) => {
                return Err(ScenarioError {
                    line: 0,
                    message: "scenario defines no topology".into(),
                })
            }
        };
        Ok(Scenario {
            topology,
            granularity,
            workload,
            switch_names,
        })
    }

    /// The parsed topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The rule-compilation granularity.
    pub fn granularity(&self) -> RuleGranularity {
        self.granularity
    }

    /// Resolves a switch by custom-topology label or `sN` index.
    pub fn switch(&self, name: &str) -> Option<SwitchId> {
        if let Some(&id) = self.switch_names.get(name) {
            return Some(id);
        }
        let idx: usize = name.strip_prefix('s')?.parse().ok()?;
        (idx < self.topology.switch_count()).then_some(SwitchId(idx))
    }

    /// Provisions the scenario into a live deployment: plain flows first
    /// (batched), then waypointed flows.
    ///
    /// # Errors
    ///
    /// Propagates [`ProvisionError`]s as file-level [`ScenarioError`]s.
    pub fn provision(&self) -> Result<Deployment, ScenarioError> {
        let mut plain: Vec<FlowSpec> = Vec::new();
        for entry in &self.workload {
            match entry {
                WorkloadEntry::Flow(f) => plain.push(*f),
                WorkloadEntry::AllPairs(rate) => {
                    let hosts: Vec<HostId> = self.topology.hosts().collect();
                    for &src in &hosts {
                        for &dst in &hosts {
                            if src != dst {
                                plain.push(FlowSpec {
                                    src,
                                    dst,
                                    rate: *rate,
                                });
                            }
                        }
                    }
                }
                WorkloadEntry::AllPairsSample(rate, count, seed) => {
                    let hosts: Vec<HostId> = self.topology.hosts().collect();
                    let mut pairs = Vec::new();
                    for &src in &hosts {
                        for &dst in &hosts {
                            if src != dst {
                                pairs.push((src, dst));
                            }
                        }
                    }
                    // Fisher–Yates with a fixed LCG (Knuth MMIX constants):
                    // deterministic across builds without a rand dependency,
                    // which is what makes the sample golden-pinnable.
                    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let mut next = || {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        state >> 33
                    };
                    for i in (1..pairs.len()).rev() {
                        let j = (next() % (i as u64 + 1)) as usize;
                        pairs.swap(i, j);
                    }
                    pairs.truncate(*count);
                    for (src, dst) in pairs {
                        plain.push(FlowSpec {
                            src,
                            dst,
                            rate: *rate,
                        });
                    }
                }
                WorkloadEntry::FlowVia(..) => {}
            }
        }
        let mut dep = provision(self.topology.clone(), &plain, self.granularity)?;
        for entry in &self.workload {
            if let WorkloadEntry::FlowVia(spec, waypoints) = entry {
                dep.add_flow_via(*spec, waypoints)?;
            }
        }
        Ok(dep)
    }
}

fn parse_generator(args: &[&str], line: usize) -> Result<Topology, ScenarioError> {
    let err = |message: String| ScenarioError { line, message };
    let num = |s: &str| -> Result<usize, ScenarioError> {
        s.parse()
            .map_err(|_| err(format!("expected a number, got {s:?}")))
    };
    match args {
        ["fattree", k] => Ok(generators::fattree(num(k)?)),
        ["bcube", l, n] => Ok(generators::bcube(num(l)?, num(n)?)),
        ["dcell", l, n] => Ok(generators::dcell(num(l)?, num(n)?)),
        ["stanford"] => Ok(generators::stanford()),
        ["linear", n] => Ok(generators::linear(num(n)?)),
        ["ring", n] => Ok(generators::ring(num(n)?)),
        ["random", n, extra, seed] => Ok(generators::random_connected(
            num(n)?,
            num(extra)?,
            num(seed)? as u64,
        )),
        other => Err(err(format!("unknown topology spec {other:?}"))),
    }
}

fn parse_flow(args: &[&str], line: usize) -> Result<FlowSpec, ScenarioError> {
    let err = |message: String| ScenarioError { line, message };
    let [src, dst, rate] = args[..3.min(args.len())] else {
        return Err(err("flow needs src dst rate".into()));
    };
    let host = |s: &str| -> Result<HostId, ScenarioError> {
        s.strip_prefix('h')
            .and_then(|t| t.parse().ok())
            .map(HostId)
            .ok_or_else(|| err(format!("expected hN, got {s:?}")))
    };
    let rate: f64 = rate
        .parse()
        .map_err(|_| err(format!("bad rate {rate:?}")))?;
    Ok(FlowSpec {
        src: host(src)?,
        dst: host(dst)?,
        rate,
    })
}

fn parse_switch(
    s: &str,
    names: &HashMap<String, SwitchId>,
    line: usize,
) -> Result<SwitchId, ScenarioError> {
    if let Some(&id) = names.get(s) {
        return Ok(id);
    }
    s.strip_prefix('s')
        .and_then(|t| t.parse().ok())
        .map(SwitchId)
        .ok_or_else(|| ScenarioError {
            line,
            message: format!("unknown switch {s:?}"),
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_scenario_provisions() {
        let s = Scenario::parse("topology bcube 1 4\nall-pairs 1000\n").unwrap();
        let dep = s.provision().unwrap();
        assert_eq!(dep.flows.len(), 240);
        assert_eq!(dep.granularity, RuleGranularity::PerFlowPair);
    }

    #[test]
    fn all_pairs_sample_is_deterministic_and_bounded() {
        let text = "topology bcube 1 4\nall-pairs-sample 1000 20 7\n";
        let a = Scenario::parse(text).unwrap().provision().unwrap();
        let b = Scenario::parse(text).unwrap().provision().unwrap();
        assert_eq!(a.flows.len(), 20);
        assert_eq!(a.flows, b.flows, "same text must yield the same sample");
        // A different seed yields a different (but equally sized) sample.
        let c = Scenario::parse("topology bcube 1 4\nall-pairs-sample 1000 20 8\n")
            .unwrap()
            .provision()
            .unwrap();
        assert_eq!(c.flows.len(), 20);
        assert_ne!(a.flows, c.flows);
        // A count beyond the pair universe degrades to all pairs.
        let d = Scenario::parse("topology bcube 1 4\nall-pairs-sample 1000 9999 7\n")
            .unwrap()
            .provision()
            .unwrap();
        assert_eq!(d.flows.len(), 240);
    }

    #[test]
    fn all_pairs_sample_rejects_bad_args() {
        let e = Scenario::parse("topology ring 4\nall-pairs-sample 1000\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("RATE COUNT SEED"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\ntopology ring 4   # trailing comment\n\nall-pairs 10\n";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.topology().switch_count(), 4);
    }

    #[test]
    fn custom_topology_with_flows() {
        let text = "\
switch a
switch b
switch c
link a b
link b c
host a
host c
granularity per-dest
flow h0 h1 500
";
        let s = Scenario::parse(text).unwrap();
        assert_eq!(s.granularity(), RuleGranularity::PerDestination);
        assert_eq!(s.switch("b"), Some(SwitchId(1)));
        let dep = s.provision().unwrap();
        assert_eq!(dep.flows.len(), 1);
        assert_eq!(dep.expected_paths[0].len(), 3);
    }

    #[test]
    fn flow_via_routes_through_waypoints() {
        let text = "topology ring 6\nflow-via h0 h2 100 s4\n";
        let dep = Scenario::parse(text).unwrap().provision().unwrap();
        assert_eq!(dep.expected_paths[0].len(), 5, "the long way round");
        assert!(dep.expected_paths[0].contains(&SwitchId(4)));
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("topology marsnet 3\n", 1),
            ("topology ring 4\nfloow h0 h1 1\n", 2),
            ("topology ring 4\nflow h0 h1\n", 2),
            ("switch a\nlink a zz\n", 2),
            ("topology ring 4\ngranularity sometimes\n", 2),
            ("topology ring 4\nflow x0 h1 5\n", 2),
        ];
        for (text, want_line) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert_eq!(e.line, want_line, "{text:?} -> {e}");
        }
    }

    #[test]
    fn missing_or_conflicting_topology_rejected() {
        assert!(Scenario::parse("all-pairs 1\n").is_err());
        let e = Scenario::parse("topology ring 3\nswitch a\n").unwrap_err();
        assert!(e.message.contains("mixes"));
    }

    #[test]
    fn switch_lookup_by_index_works_for_generators() {
        let s = Scenario::parse("topology fattree 4\nall-pairs 1\n").unwrap();
        assert_eq!(s.switch("s7"), Some(SwitchId(7)));
        assert_eq!(s.switch("s99"), None);
        assert_eq!(s.switch("bogus"), None);
    }

    #[test]
    fn display_of_errors() {
        let e = ScenarioError {
            line: 3,
            message: "boom".into(),
        };
        assert_eq!(e.to_string(), "scenario error at line 3: boom");
    }
}
