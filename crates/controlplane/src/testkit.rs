//! Planning helpers for test harnesses and the `foces-sched` schedule
//! enumerator: find reroutes a deployment can actually express, without
//! mutating (or cloning) the deployment.
//!
//! Probing reroutability used to require `dep.clone()` + a speculative
//! [`Deployment::reroute_flow_via`] per (flow, waypoint) candidate —
//! O(flows × switches) full-deployment clones. [`plan_reroutes`] instead
//! drives the pure [`Deployment::probe_reroute_via`], which only walks
//! the topology.

use crate::Deployment;
use foces_net::SwitchId;

/// One reroute a deployment can express: move `flow` through `waypoint`
/// onto `new_path`. Produced by [`plan_reroutes`]; executed by
/// [`Deployment::reroute_flow_via`] or staged by
/// [`Deployment::stage_reroute_via`] with `&[self.waypoint]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReroutePlan {
    /// Index of the flow to move.
    pub flow: usize,
    /// The waypoint that forces the move.
    pub waypoint: SwitchId,
    /// The path the flow currently takes.
    pub old_path: Vec<SwitchId>,
    /// The simple path it would take through the waypoint.
    pub new_path: Vec<SwitchId>,
}

impl ReroutePlan {
    /// Every switch on the old *or* new path, sorted and deduplicated —
    /// where a dropper must not sit for "outside the update's blast
    /// radius" to hold.
    pub fn blast_radius(&self) -> Vec<SwitchId> {
        let mut blast = self.old_path.clone();
        blast.extend_from_slice(&self.new_path);
        blast.sort_unstable();
        blast.dedup();
        blast
    }
}

/// Finds up to `count` reroutes on **distinct flows**, each moving its
/// flow onto a genuinely different simple path through a single waypoint
/// off the current path. Per flow the shortest new path wins (ties to the
/// lowest waypoint id), and across flows the plans with the shortest new
/// paths are preferred — short paths keep the schedule space a
/// model-checking harness must enumerate small. Deterministic.
///
/// Returns fewer than `count` plans (possibly none) when the fabric does
/// not offer enough reroutable flows.
pub fn plan_reroutes(dep: &Deployment, count: usize) -> Vec<ReroutePlan> {
    let mut candidates: Vec<ReroutePlan> = Vec::new();
    for flow in 0..dep.flows.len() {
        let old_path = &dep.expected_paths[flow];
        if old_path.len() < 2 {
            continue;
        }
        let mut best: Option<ReroutePlan> = None;
        for w in dep.dataplane.topology().switches() {
            if old_path.contains(&w) {
                continue;
            }
            let Ok(new_path) = dep.probe_reroute_via(flow, &[w]) else {
                continue;
            };
            if new_path == *old_path {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|b| new_path.len() < b.new_path.len())
            {
                best = Some(ReroutePlan {
                    flow,
                    waypoint: w,
                    old_path: old_path.clone(),
                    new_path,
                });
            }
        }
        if let Some(plan) = best {
            candidates.push(plan);
        }
    }
    // Shortest new paths first; stable, so ties keep flow order.
    candidates.sort_by_key(|p| p.new_path.len());
    candidates.truncate(count);
    candidates
}

/// [`plan_reroutes`] for a single update — the common N=1 case.
pub fn plan_reroute(dep: &Deployment) -> Option<ReroutePlan> {
    plan_reroutes(dep, 1).pop()
}
