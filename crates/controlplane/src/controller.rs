use crate::{DestinationTree, FlowSpec, RuleGranularity};
use foces_dataplane::{dst_match, pair_match, Action, DataPlane, FlowTable, Rule, RuleRef};
use foces_net::{HostId, SwitchId, Topology};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from provisioning.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ProvisionError {
    /// A flow endpoint is not attached to any switch.
    UnattachedHost(HostId),
    /// No route exists between a flow's endpoints.
    NoRoute {
        /// The flow that could not be routed.
        src: HostId,
        /// Its destination.
        dst: HostId,
    },
    /// A waypoint is unreachable from the previous path segment.
    WaypointUnreachable {
        /// The unreachable waypoint.
        waypoint: SwitchId,
    },
    /// The stitched waypoint path visits a switch twice; a single
    /// match/action rule cannot express two different next hops for the
    /// same flow at one switch.
    NonSimplePath {
        /// The repeated switch.
        switch: SwitchId,
    },
}

impl fmt::Display for ProvisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProvisionError::UnattachedHost(h) => {
                write!(f, "host h{} is not attached to a switch", h.0)
            }
            ProvisionError::NoRoute { src, dst } => {
                write!(f, "no route from h{} to h{}", src.0, dst.0)
            }
            ProvisionError::WaypointUnreachable { waypoint } => {
                write!(f, "waypoint s{} is unreachable", waypoint.0)
            }
            ProvisionError::NonSimplePath { switch } => {
                write!(
                    f,
                    "waypoint path revisits s{}; flow rules cannot express it",
                    switch.0
                )
            }
        }
    }
}

impl Error for ProvisionError {}

/// What kind of mid-epoch control-plane update a journal entry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum UpdateKind {
    /// A flow was moved onto a different path (e.g. link-failure reroute).
    Reroute,
    /// A flow's rules were refined to a finer granularity (dedicated
    /// per-pair rules shadowing an aggregate), without changing its path.
    Refine,
    /// A detectability-hardening rule was installed.
    Hardening,
}

impl fmt::Display for UpdateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateKind::Reroute => write!(f, "reroute"),
            UpdateKind::Refine => write!(f, "refine"),
            UpdateKind::Hardening => write!(f, "hardening"),
        }
    }
}

/// One committed control-plane update: the generation it produced, and
/// everything whose counter semantics it may have changed.
///
/// `touched_rules` must be **conservative**: it lists every rule whose
/// counter can no longer be predicted by an FCM built before this update —
/// both the rules that newly attract traffic *and* the old rules the
/// traffic was drained away from. The runtime's reconciliation stage masks
/// exactly these rows (and quarantines the flow columns that cross them),
/// so an omission here would surface as a false alarm under churn.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateRecord {
    /// The view's generation *after* this update was applied.
    pub generation: u64,
    /// What kind of update this was.
    pub kind: UpdateKind,
    /// Every rule (old or newly installed) whose counter semantics changed.
    pub touched_rules: Vec<RuleRef>,
    /// Indices into [`Deployment::flows`] of the flows that were moved
    /// (empty for updates that do not reroute traffic).
    pub touched_flows: Vec<usize>,
}

/// The controller's record of everything it installed: topology plus a copy
/// of every flow table. This — not the live data plane — is what FOCES's
/// FCM generator reads, because a compromised switch forges its table dumps
/// to match exactly this view (threat model, §II-B).
///
/// The view is **versioned**: every committed update bumps a monotonically
/// increasing generation number and appends an [`UpdateRecord`] to the
/// journal, so a detector holding an FCM built at generation `g` can ask
/// exactly which rules changed since `g` ([`ControllerView::touched_rules_since`])
/// and reconcile instead of discarding the epoch.
#[derive(Debug, Clone)]
pub struct ControllerView {
    topo: Topology,
    tables: Vec<FlowTable>,
    generation: u64,
    journal: Vec<UpdateRecord>,
}

impl ControllerView {
    /// Builds a view directly from a topology and per-switch flow tables —
    /// for loading externally-authored configurations (tests, replayed
    /// snapshots). [`provision`] is the normal constructor.
    ///
    /// # Panics
    ///
    /// Panics if `tables.len()` differs from the topology's switch count.
    pub fn from_parts(topo: Topology, tables: Vec<FlowTable>) -> Self {
        assert_eq!(
            tables.len(),
            topo.switch_count(),
            "one flow table per switch required"
        );
        ControllerView {
            topo,
            tables,
            generation: 0,
            journal: Vec::new(),
        }
    }

    /// The current view generation: 0 at provisioning time, bumped once per
    /// committed update.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Every committed update, oldest first.
    pub fn journal(&self) -> &[UpdateRecord] {
        &self.journal
    }

    /// The journal entries committed *after* generation `since` (i.e. the
    /// updates an FCM built at `since` has not seen).
    pub fn journal_since(&self, since: u64) -> impl Iterator<Item = &UpdateRecord> {
        self.journal.iter().filter(move |u| u.generation > since)
    }

    /// The union of all rules touched by updates after generation `since`,
    /// sorted and deduplicated — the rows the reconciliation stage masks.
    pub fn touched_rules_since(&self, since: u64) -> Vec<RuleRef> {
        let mut rules: Vec<RuleRef> = self
            .journal_since(since)
            .flat_map(|u| u.touched_rules.iter().copied())
            .collect();
        rules.sort_unstable();
        rules.dedup();
        rules
    }

    /// Commits an update: bumps the generation and appends the journal
    /// entry. Returns the new generation. Callers (the [`Deployment`]
    /// update operations) are responsible for stamping the affected
    /// switches' data-plane tables with the returned generation.
    pub fn record_update(
        &mut self,
        kind: UpdateKind,
        touched_rules: Vec<RuleRef>,
        touched_flows: Vec<usize>,
    ) -> u64 {
        self.generation += 1;
        self.journal.push(UpdateRecord {
            generation: self.generation,
            kind,
            touched_rules,
            touched_flows,
        });
        self.generation
    }

    /// The network topology as the controller knows it.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The flow table the controller installed on `switch`.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn table(&self, switch: SwitchId) -> &FlowTable {
        &self.tables[switch.0]
    }

    /// Iterates over every installed rule in canonical (switch-major,
    /// index) order — the FCM row order.
    pub fn rule_refs(&self) -> impl Iterator<Item = RuleRef> + '_ {
        self.tables.iter().enumerate().flat_map(|(s, t)| {
            (0..t.len()).map(move |index| RuleRef {
                switch: SwitchId(s),
                index,
            })
        })
    }

    /// Total number of installed rules.
    pub fn rule_count(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Looks up a rule in the view.
    pub fn rule(&self, r: RuleRef) -> Option<&Rule> {
        self.tables.get(r.switch.0)?.get(r.index)
    }

    /// Installs a rule into the view's table for `switch`, returning its
    /// reference. Used by configuration tooling (e.g. detectability
    /// hardening) that refines the rule set; remember to install the same
    /// rule on the live data plane at the same index.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn install(&mut self, switch: SwitchId, rule: Rule) -> RuleRef {
        let index = self.tables[switch.0].push(rule);
        RuleRef { switch, index }
    }
}

/// The output of [`provision`]: a live data plane, the controller's view of
/// it, the flow demands, and the expected switch path of every flow.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// The data plane with all rules installed (counters zeroed).
    pub dataplane: DataPlane,
    /// The controller's record of what it installed (updated only by the
    /// controller itself — [`Deployment::add_flow`] — never by the
    /// adversary).
    pub view: ControllerView,
    /// The provisioned traffic demands.
    pub flows: Vec<FlowSpec>,
    /// `expected_paths[i]` is the switch path `flows[i]` should take.
    pub expected_paths: Vec<Vec<SwitchId>>,
    /// The rule-compilation granularity this deployment was built with.
    pub granularity: RuleGranularity,
}

impl Deployment {
    /// Replays every flow through the data plane for one collection
    /// interval, accumulating counters. Call
    /// [`DataPlane::reset_counters`] first when simulating successive
    /// intervals.
    pub fn replay_traffic(&mut self, loss: &mut foces_dataplane::LossModel) {
        self.replay_traffic_scaled(loss, 1.0);
    }

    /// Replays a *fraction* of every flow's per-interval volume. Two calls
    /// with `fraction = 0.5` around a mid-epoch control-plane update
    /// produce counters that genuinely mix rule generations — the race the
    /// runtime's reconciliation stage exists for.
    pub fn replay_traffic_scaled(&mut self, loss: &mut foces_dataplane::LossModel, fraction: f64) {
        for f in &self.flows {
            let header = foces_dataplane::pair_header(f.src, f.dst);
            self.dataplane
                .inject(f.src, header, f.rate * fraction, loss);
        }
    }

    /// Reactively provisions one additional flow (paper §II-A's reactive
    /// rule-installation mode): computes its route, installs any missing
    /// rules into **both** the live data plane and the controller's view
    /// (identical indices — they append in lockstep), and records the flow.
    ///
    /// Returns the rules newly installed (for
    /// `foces::Fcm::extend_rules`) and the flow's switch path (for
    /// `foces::Fcm::add_flows`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`provision`].
    pub fn add_flow(
        &mut self,
        spec: FlowSpec,
    ) -> Result<(Vec<RuleRef>, Vec<SwitchId>), ProvisionError> {
        let tree = DestinationTree::compute(self.dataplane.topology(), spec.dst)
            .ok_or(ProvisionError::UnattachedHost(spec.dst))?;
        if self
            .dataplane
            .topology()
            .host_attachment(spec.src)
            .is_none()
        {
            return Err(ProvisionError::UnattachedHost(spec.src));
        }
        let path =
            tree.path_from(self.dataplane.topology(), spec.src)
                .ok_or(ProvisionError::NoRoute {
                    src: spec.src,
                    dst: spec.dst,
                })?;
        let header = foces_dataplane::pair_header(spec.src, spec.dst);
        let mut new_rules = Vec::new();
        for &sw in &path {
            let port = tree.egress_port(sw).expect("path switches have egress");
            let needed = match self.granularity {
                RuleGranularity::PerDestination => {
                    // A per-destination rule may already exist from another
                    // source's path; matching the header is the test.
                    self.view.table(sw).lookup(header).is_none()
                }
                RuleGranularity::PerFlowPair => {
                    // Require an exact pair rule (a lower-priority dst rule
                    // from a different granularity epoch does not count).
                    !self
                        .view
                        .table(sw)
                        .iter()
                        .any(|(_, r)| r.match_fields() == &pair_match(spec.src, spec.dst))
                }
            };
            if needed {
                let rule = match self.granularity {
                    RuleGranularity::PerDestination => {
                        Rule::new(dst_match(spec.dst), 5, Action::Forward(port))
                    }
                    RuleGranularity::PerFlowPair => {
                        Rule::new(pair_match(spec.src, spec.dst), 10, Action::Forward(port))
                    }
                };
                let r = self.dataplane.install(sw, rule.clone());
                let view_index = self.view.tables[sw.0].push(rule);
                debug_assert_eq!(view_index, r.index, "view and data plane in lockstep");
                new_rules.push(r);
            }
        }
        self.flows.push(spec);
        self.expected_paths.push(path.clone());
        Ok((new_rules, path))
    }

    /// Provisions a flow that must transit the given switches in order —
    /// waypoint policies like "guest traffic goes through the firewall"
    /// (the paper's motivating security policy, §I). The route stitches
    /// shortest-path segments between consecutive waypoints; the flow gets
    /// dedicated exact-match rules (waypoint routes are per-flow by
    /// nature), installed into the data plane and the controller's view in
    /// lockstep.
    ///
    /// Returns the installed rules and the stitched switch path.
    ///
    /// # Errors
    ///
    /// * [`ProvisionError::UnattachedHost`] for detached endpoints;
    /// * [`ProvisionError::WaypointUnreachable`] if a segment has no route;
    /// * [`ProvisionError::NonSimplePath`] if the stitched path would visit
    ///   a switch twice (inexpressible with single match/action rules).
    pub fn add_flow_via(
        &mut self,
        spec: FlowSpec,
        waypoints: &[SwitchId],
    ) -> Result<(Vec<RuleRef>, Vec<SwitchId>), ProvisionError> {
        let (path, dst_port) = self.stitch_waypoint_path(spec, waypoints)?;
        // Install per-pair rules along the stitched path, at a priority
        // above plain per-pair forwarding (10): a waypoint policy for a
        // pair overrides any shortest-path rule already installed for it.
        const WAYPOINT_PRIORITY: u16 = 12;
        let mut new_rules = Vec::with_capacity(path.len());
        for (i, &sw) in path.iter().enumerate() {
            let port = match path.get(i + 1) {
                Some(&next) => self
                    .dataplane
                    .topology()
                    .port_towards(foces_net::Node::Switch(sw), foces_net::Node::Switch(next))
                    .expect("consecutive path switches are adjacent"),
                None => dst_port,
            };
            let rule = Rule::new(
                pair_match(spec.src, spec.dst),
                WAYPOINT_PRIORITY,
                Action::Forward(port),
            );
            let r = self.dataplane.install(sw, rule.clone());
            let view_index = self.view.tables[sw.0].push(rule);
            debug_assert_eq!(view_index, r.index, "view and data plane in lockstep");
            new_rules.push(r);
        }
        self.flows.push(spec);
        self.expected_paths.push(path.clone());
        Ok((new_rules, path))
    }

    /// **Journaled mid-epoch reroute** (link-failure avoidance, traffic
    /// engineering): moves provisioned flow `flow` onto the shortest path
    /// through `waypoints` (possibly empty — plain re-shortest-pathing) by
    /// installing dedicated per-pair rules that out-prioritise whatever
    /// currently carries the pair. Old rules stay installed (rule deletion
    /// is not modelled) but go quiet for this flow.
    ///
    /// Commits an [`UpdateRecord`] whose `touched_rules` conservatively
    /// covers both directions of the move: the rules on the **old** path
    /// that matched the flow (their counters lose the flow's volume) and
    /// every **newly installed** rule (unknown to older FCMs). The affected
    /// switches' data-plane tables are stamped with the new generation.
    ///
    /// Returns the new generation and the installed rules.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Deployment::add_flow_via`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn reroute_flow_via(
        &mut self,
        flow: usize,
        waypoints: &[SwitchId],
    ) -> Result<(u64, Vec<RuleRef>), ProvisionError> {
        let staged = self.stage_reroute_via(flow, waypoints)?;
        self.commit_staged(&staged);
        Ok((staged.generation, staged.rule_refs()))
    }

    /// The planning half of [`Deployment::reroute_flow_via`], with **no
    /// side effects**: computes the stitched path the reroute would take
    /// and validates it, without touching the view, the journal, or the
    /// data plane. `Ok` here guarantees `stage_reroute_via` with the same
    /// arguments succeeds (path computation depends only on the topology).
    ///
    /// This is the clone-free reroutability probe test harnesses should
    /// use instead of `dep.clone()` + a speculative reroute.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Deployment::add_flow_via`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn probe_reroute_via(
        &self,
        flow: usize,
        waypoints: &[SwitchId],
    ) -> Result<Vec<SwitchId>, ProvisionError> {
        let (path, _) = self.stitch_waypoint_path(self.flows[flow], waypoints)?;
        Ok(path)
    }

    /// **Stages** a journaled reroute without pushing anything to the data
    /// plane: the new path's rules are installed into the controller's
    /// view, the update is journaled (generation bumped) exactly as
    /// [`Deployment::reroute_flow_via`] would, and the flow's expected
    /// path moves — but every switch still forwards with its old table
    /// until [`Deployment::commit_switch`] delivers its FlowMods.
    ///
    /// This models what a real controller does: the journal entry and the
    /// intent exist the moment the update is *issued*; each switch applies
    /// its rules (and acknowledges the new generation) at its own
    /// independent commit point. The window between stage and the last
    /// commit is exactly the race the runtime's reconciliation must absorb.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Deployment::add_flow_via`].
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn stage_reroute_via(
        &mut self,
        flow: usize,
        waypoints: &[SwitchId],
    ) -> Result<StagedUpdate, ProvisionError> {
        let spec = self.flows[flow];
        let (path, dst_port) = self.stitch_waypoint_path(spec, waypoints)?;
        let old_path = std::mem::replace(&mut self.expected_paths[flow], path.clone());
        // Old-path rules must be resolved BEFORE the install: on switches
        // shared by both paths the lookup would otherwise find the new
        // (higher-priority) rule and miss the one being drained.
        let mut touched = self.pair_rules_on(&old_path, spec);
        let planned = self.plan_pair_rules_along(spec, &path, dst_port, &[&old_path, &path]);
        let installs: Vec<(RuleRef, Rule)> = planned
            .into_iter()
            .map(|(sw, rule)| (self.view.install(sw, rule.clone()), rule))
            .collect();
        touched.extend(installs.iter().map(|(r, _)| *r));
        touched.sort_unstable();
        touched.dedup();
        let generation = self
            .view
            .record_update(UpdateKind::Reroute, touched, vec![flow]);
        Ok(StagedUpdate {
            flow,
            generation,
            old_path,
            new_path: path,
            installs,
        })
    }

    /// Commits one switch's share of a staged reroute: installs its staged
    /// rules on the live data plane and stamps its table with the staged
    /// generation. Returns the number of rules pushed (0 if the update has
    /// none for this switch — nothing is stamped then).
    ///
    /// Commit order across *switches* is free — that freedom is the
    /// schedule space `foces-sched` enumerates. Commit order *per switch*
    /// is not: an OpenFlow connection delivers FlowMods in order, so when
    /// several staged updates target the same switch they must commit in
    /// stage order there. The index-lockstep assertion below enforces
    /// exactly that (a violation would silently desynchronize the view
    /// from the data plane, so it is a panic, not an error).
    ///
    /// # Panics
    ///
    /// Panics if a staged rule would land at a different index than the
    /// view recorded — i.e. per-switch FIFO order was violated, or the
    /// same staged update was committed twice.
    pub fn commit_switch(&mut self, staged: &StagedUpdate, switch: SwitchId) -> usize {
        let mut pushed = 0;
        for (target, rule) in &staged.installs {
            if target.switch != switch {
                continue;
            }
            let r = self.dataplane.install(switch, rule.clone());
            assert_eq!(
                r.index, target.index,
                "per-switch commits must follow stage order (FIFO FlowMod channel)"
            );
            pushed += 1;
        }
        if pushed > 0 {
            self.dataplane
                .set_table_generation(switch, staged.generation);
        }
        pushed
    }

    /// Commits a staged reroute on every switch of its new path, in path
    /// order — the degenerate "all commit points coincide" schedule, which
    /// is what the non-staged [`Deployment::reroute_flow_via`] performs.
    pub fn commit_staged(&mut self, staged: &StagedUpdate) {
        for sw in staged.switches() {
            self.commit_switch(staged, sw);
        }
    }

    /// Stitches switch-level shortest-path segments from `spec.src`'s
    /// attachment through `waypoints` to the destination and validates
    /// simplicity. Pure: the planning half of every waypoint route.
    fn stitch_waypoint_path(
        &self,
        spec: FlowSpec,
        waypoints: &[SwitchId],
    ) -> Result<(Vec<SwitchId>, foces_net::Port), ProvisionError> {
        let topo = self.dataplane.topology();
        let (src_sw, _) = topo
            .host_attachment(spec.src)
            .ok_or(ProvisionError::UnattachedHost(spec.src))?;
        let (dst_sw, dst_port) = topo
            .host_attachment(spec.dst)
            .ok_or(ProvisionError::UnattachedHost(spec.dst))?;
        let mut path: Vec<SwitchId> = vec![src_sw];
        let mut stops: Vec<SwitchId> = waypoints.to_vec();
        stops.push(dst_sw);
        for stop in stops {
            let from = *path.last().expect("path starts non-empty");
            let segment = topo
                .shortest_path(foces_net::Node::Switch(from), foces_net::Node::Switch(stop))
                .ok_or(ProvisionError::WaypointUnreachable { waypoint: stop })?;
            for node in segment.into_iter().skip(1) {
                let foces_net::Node::Switch(sw) = node else {
                    unreachable!("switch-to-switch paths never transit hosts");
                };
                path.push(sw);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &sw in &path {
            if !seen.insert(sw) {
                return Err(ProvisionError::NonSimplePath { switch: sw });
            }
        }
        Ok((path, dst_port))
    }

    /// **Journaled granularity refinement**: gives flow `flow` dedicated
    /// per-pair rules along its *current* path, shadowing whatever
    /// aggregate (per-destination) or shared rules carried it before. The
    /// path does not change, but counter attribution does — the aggregate
    /// rules lose this flow's volume — so the update is journaled exactly
    /// like a reroute.
    ///
    /// Returns the new generation and the installed rules.
    ///
    /// # Panics
    ///
    /// Panics if `flow` is out of range.
    pub fn refine_flow(&mut self, flow: usize) -> Result<(u64, Vec<RuleRef>), ProvisionError> {
        let spec = self.flows[flow];
        let (_, dst_port) = self
            .dataplane
            .topology()
            .host_attachment(spec.dst)
            .ok_or(ProvisionError::UnattachedHost(spec.dst))?;
        let path = self.expected_paths[flow].clone();
        let mut touched = self.pair_rules_on(&path, spec);
        let new_rules = self.install_pair_rules_along(spec, &path, dst_port, &[&path]);
        touched.extend(new_rules.iter().copied());
        touched.sort_unstable();
        touched.dedup();
        let generation = self
            .view
            .record_update(UpdateKind::Refine, touched, vec![flow]);
        for r in &new_rules {
            self.dataplane.set_table_generation(r.switch, generation);
        }
        Ok((generation, new_rules))
    }

    /// **Journaled hardening install**: adds one rule to `switch` on both
    /// planes in lockstep and journals it together with every existing rule
    /// on that switch whose match region overlaps the new rule's (those may
    /// lose traffic to it). Returns the new generation and the rule.
    ///
    /// # Panics
    ///
    /// Panics if the switch id is out of range.
    pub fn install_hardening(&mut self, switch: SwitchId, rule: Rule) -> (u64, RuleRef) {
        let mut touched: Vec<RuleRef> = self
            .view
            .table(switch)
            .iter()
            .filter(|(_, existing)| existing.match_fields().overlaps(rule.match_fields()))
            .map(|(index, _)| RuleRef { switch, index })
            .collect();
        let r = self.dataplane.install(switch, rule.clone());
        let view_index = self.view.tables[switch.0].push(rule);
        debug_assert_eq!(view_index, r.index, "view and data plane in lockstep");
        touched.push(r);
        let generation = self
            .view
            .record_update(UpdateKind::Hardening, touched, Vec::new());
        self.dataplane.set_table_generation(switch, generation);
        (generation, r)
    }

    /// Rules in the view that currently match `spec`'s pair header on the
    /// given path — the rules a reroute/refine drains traffic away from.
    fn pair_rules_on(&self, path: &[SwitchId], spec: FlowSpec) -> Vec<RuleRef> {
        let header = foces_dataplane::pair_header(spec.src, spec.dst);
        path.iter()
            .filter_map(|&sw| {
                self.view
                    .table(sw)
                    .lookup(header)
                    .map(|(index, _)| RuleRef { switch: sw, index })
            })
            .collect()
    }

    /// Plans dedicated per-pair rules for `spec` along `path`, at a
    /// priority strictly above every rule that currently matches the pair
    /// on any of `priority_scopes`' switches — so the new rules win even
    /// over previous reroutes of the same flow. Pure: nothing is installed.
    fn plan_pair_rules_along(
        &self,
        spec: FlowSpec,
        path: &[SwitchId],
        dst_port: foces_net::Port,
        priority_scopes: &[&[SwitchId]],
    ) -> Vec<(SwitchId, Rule)> {
        const REROUTE_BASE_PRIORITY: u16 = 12;
        let header = foces_dataplane::pair_header(spec.src, spec.dst);
        let max_prio = priority_scopes
            .iter()
            .flat_map(|scope| scope.iter())
            .filter_map(|&sw| {
                self.view
                    .table(sw)
                    .lookup(header)
                    .map(|(_, r)| r.priority())
            })
            .max()
            .unwrap_or(0);
        let priority = max_prio.saturating_add(1).max(REROUTE_BASE_PRIORITY);
        path.iter()
            .enumerate()
            .map(|(i, &sw)| {
                let port = match path.get(i + 1) {
                    Some(&next) => self
                        .dataplane
                        .topology()
                        .port_towards(foces_net::Node::Switch(sw), foces_net::Node::Switch(next))
                        .expect("consecutive path switches are adjacent"),
                    None => dst_port,
                };
                let rule = Rule::new(
                    pair_match(spec.src, spec.dst),
                    priority,
                    Action::Forward(port),
                );
                (sw, rule)
            })
            .collect()
    }

    /// Installs dedicated per-pair rules for `spec` along `path` (lockstep
    /// on both planes) — [`Deployment::plan_pair_rules_along`] committed
    /// everywhere at once.
    fn install_pair_rules_along(
        &mut self,
        spec: FlowSpec,
        path: &[SwitchId],
        dst_port: foces_net::Port,
        priority_scopes: &[&[SwitchId]],
    ) -> Vec<RuleRef> {
        self.plan_pair_rules_along(spec, path, dst_port, priority_scopes)
            .into_iter()
            .map(|(sw, rule)| {
                let r = self.dataplane.install(sw, rule.clone());
                let view_index = self.view.tables[sw.0].push(rule);
                debug_assert_eq!(view_index, r.index, "view and data plane in lockstep");
                r
            })
            .collect()
    }
}

/// A reroute whose intent exists — view rules installed, journal entry
/// committed, expected path moved — but whose FlowMods have not yet
/// reached any switch. Produced by [`Deployment::stage_reroute_via`];
/// consumed, one switch at a time, by [`Deployment::commit_switch`].
///
/// The set of per-switch commit points (one per new-path switch) is the
/// unit the `foces-sched` schedule enumerator permutes against counter
/// collection.
#[derive(Debug, Clone)]
pub struct StagedUpdate {
    /// Index of the rerouted flow in [`Deployment::flows`].
    pub flow: usize,
    /// The generation the journal entry committed at stage time. Every
    /// switch acknowledges this generation when its commit lands.
    pub generation: u64,
    /// The path the flow is being drained from.
    pub old_path: Vec<SwitchId>,
    /// The path the flow is moving to (one staged rule per switch).
    pub new_path: Vec<SwitchId>,
    /// The staged rules with the view indices they were recorded at —
    /// the indices the data-plane pushes must reproduce at commit time.
    installs: Vec<(RuleRef, Rule)>,
}

impl StagedUpdate {
    /// The switches with pending commits, in stage (new-path) order.
    /// Paths are simple, so each switch appears once.
    pub fn switches(&self) -> Vec<SwitchId> {
        self.installs.iter().map(|(r, _)| r.switch).collect()
    }

    /// The staged rules' references (view indices), in stage order.
    pub fn rule_refs(&self) -> Vec<RuleRef> {
        self.installs.iter().map(|(r, _)| *r).collect()
    }

    /// Every switch on the old *or* new path, sorted and deduplicated —
    /// the update's whole blast radius. A "switch the update never
    /// touches" (where a dropper must still be caught) is any switch
    /// outside this set.
    pub fn blast_radius(&self) -> Vec<SwitchId> {
        let mut blast = self.old_path.clone();
        blast.extend_from_slice(&self.new_path);
        blast.sort_unstable();
        blast.dedup();
        blast
    }
}

/// Computes routes for all flows, compiles rules at the requested
/// granularity, installs them into a fresh [`DataPlane`], and returns the
/// deployment together with the controller's view.
///
/// Routing: per-destination BFS trees ([`DestinationTree`]); every rule
/// needed by at least one provisioned flow is installed, and nothing else.
///
/// # Errors
///
/// * [`ProvisionError::UnattachedHost`] if a flow endpoint has no switch;
/// * [`ProvisionError::NoRoute`] if the topology is partitioned between a
///   flow's endpoints.
pub fn provision(
    topo: Topology,
    flows: &[FlowSpec],
    granularity: RuleGranularity,
) -> Result<Deployment, ProvisionError> {
    let mut dp = DataPlane::new(topo);
    let mut trees: HashMap<HostId, DestinationTree> = HashMap::new();
    // Rule dedup: (switch, dst) -> installed, or (switch, src, dst).
    let mut dst_rules: HashMap<(SwitchId, HostId), RuleRef> = HashMap::new();
    let mut pair_rules: HashMap<(SwitchId, HostId, HostId), RuleRef> = HashMap::new();
    let mut expected_paths = Vec::with_capacity(flows.len());

    for f in flows {
        let tree = match trees.get(&f.dst) {
            Some(t) => t,
            None => {
                let t = DestinationTree::compute(dp.topology(), f.dst)
                    .ok_or(ProvisionError::UnattachedHost(f.dst))?;
                trees.entry(f.dst).or_insert(t)
            }
        };
        if dp.topology().host_attachment(f.src).is_none() {
            return Err(ProvisionError::UnattachedHost(f.src));
        }
        let path = tree
            .path_from(dp.topology(), f.src)
            .ok_or(ProvisionError::NoRoute {
                src: f.src,
                dst: f.dst,
            })?;
        // Collect (switch, egress) pairs first to end the borrow of `trees`
        // before mutating `dp`.
        let hops: Vec<(SwitchId, foces_net::Port)> = path
            .iter()
            .map(|&sw| {
                let port = tree
                    .egress_port(sw)
                    .expect("switches on a tree path have egress ports");
                (sw, port)
            })
            .collect();
        for (sw, port) in hops {
            match granularity {
                RuleGranularity::PerDestination => {
                    dst_rules.entry((sw, f.dst)).or_insert_with(|| {
                        dp.install(sw, Rule::new(dst_match(f.dst), 5, Action::Forward(port)))
                    });
                }
                RuleGranularity::PerFlowPair => {
                    pair_rules.entry((sw, f.src, f.dst)).or_insert_with(|| {
                        dp.install(
                            sw,
                            Rule::new(pair_match(f.src, f.dst), 10, Action::Forward(port)),
                        )
                    });
                }
            }
        }
        expected_paths.push(path);
    }

    let view = ControllerView {
        topo: dp.topology().clone(),
        tables: (0..dp.topology().switch_count())
            .map(|s| dp.table(SwitchId(s)).clone())
            .collect(),
        generation: 0,
        journal: Vec::new(),
    };
    Ok(Deployment {
        dataplane: dp,
        view,
        flows: flows.to_vec(),
        expected_paths,
        granularity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uniform_flows;
    use foces_dataplane::LossModel;
    use foces_net::generators::{bcube, dcell, fattree, stanford};
    use foces_net::Node;

    fn deploy(topo: Topology, granularity: RuleGranularity) -> Deployment {
        let flows = uniform_flows(&topo, topo.host_count() as f64 * 1000.0);
        provision(topo, &flows, granularity).unwrap()
    }

    #[test]
    fn all_flows_deliver_losslessly() {
        for topo in [fattree(4), bcube(1, 4), dcell(1, 4), stanford()] {
            let mut dep = deploy(topo, RuleGranularity::PerDestination);
            let flows = dep.flows.clone();
            for f in &flows {
                let header = foces_dataplane::pair_header(f.src, f.dst);
                let rep = dep
                    .dataplane
                    .inject(f.src, header, f.rate, &mut LossModel::none());
                assert_eq!(rep.delivered_to, Some(f.dst), "flow {f}");
                assert!((rep.delivered_volume - f.rate).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn per_flow_granularity_also_delivers() {
        let mut dep = deploy(fattree(4), RuleGranularity::PerFlowPair);
        let flows = dep.flows.clone();
        for f in &flows {
            let header = foces_dataplane::pair_header(f.src, f.dst);
            let rep = dep
                .dataplane
                .inject(f.src, header, f.rate, &mut LossModel::none());
            assert_eq!(rep.delivered_to, Some(f.dst));
        }
    }

    #[test]
    fn view_matches_dataplane_before_compromise() {
        let dep = deploy(bcube(1, 4), RuleGranularity::PerDestination);
        for r in dep.view.rule_refs() {
            assert_eq!(dep.view.rule(r), dep.dataplane.rule(r));
        }
        assert_eq!(dep.view.rule_count(), dep.dataplane.rule_count());
    }

    #[test]
    fn view_is_immutable_under_compromise() {
        let mut dep = deploy(bcube(1, 4), RuleGranularity::PerDestination);
        let r = dep.view.rule_refs().next().unwrap();
        let before = dep.view.rule(r).unwrap().clone();
        dep.dataplane.modify_rule_action(r, Action::Drop).unwrap();
        assert_eq!(dep.view.rule(r), Some(&before));
        assert_ne!(dep.dataplane.rule(r), Some(&before));
    }

    #[test]
    fn per_destination_aggregates_rules() {
        let dst_dep = deploy(fattree(4), RuleGranularity::PerDestination);
        let pair_dep = deploy(fattree(4), RuleGranularity::PerFlowPair);
        assert!(
            dst_dep.view.rule_count() < pair_dep.view.rule_count(),
            "aggregation must reduce rule count: {} vs {}",
            dst_dep.view.rule_count(),
            pair_dep.view.rule_count()
        );
    }

    #[test]
    fn expected_paths_start_and_end_at_attachments() {
        let dep = deploy(dcell(1, 4), RuleGranularity::PerDestination);
        for (f, p) in dep.flows.iter().zip(&dep.expected_paths) {
            let (src_sw, _) = dep.view.topology().host_attachment(f.src).unwrap();
            let (dst_sw, _) = dep.view.topology().host_attachment(f.dst).unwrap();
            assert_eq!(*p.first().unwrap(), src_sw);
            assert_eq!(*p.last().unwrap(), dst_sw);
        }
    }

    #[test]
    fn expected_paths_are_consistent_with_counters() {
        // After lossless replay, a rule's counter equals the sum of rates of
        // flows whose expected path passes its switch and matches it.
        let mut dep = deploy(fattree(4), RuleGranularity::PerDestination);
        dep.replay_traffic(&mut LossModel::none());
        for (f, p) in dep.flows.clone().iter().zip(dep.expected_paths.clone()) {
            for sw in p {
                let header = foces_dataplane::pair_header(f.src, f.dst);
                let (idx, _) = dep.dataplane.table(sw).lookup(header).unwrap();
                assert!(dep.dataplane.counter(sw, idx) >= f.rate - 1e-9);
            }
        }
    }

    #[test]
    fn unattached_host_is_rejected() {
        let mut topo = Topology::new();
        topo.add_switch("s0");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        let flows = [FlowSpec {
            src: h0,
            dst: h1,
            rate: 1.0,
        }];
        assert!(matches!(
            provision(topo, &flows, RuleGranularity::PerDestination),
            Err(ProvisionError::UnattachedHost(_))
        ));
    }

    #[test]
    fn partitioned_network_is_rejected() {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let s1 = topo.add_switch("s1");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        topo.connect(Node::Host(h1), Node::Switch(s1)).unwrap();
        let flows = [FlowSpec {
            src: h0,
            dst: h1,
            rate: 1.0,
        }];
        assert!(matches!(
            provision(topo, &flows, RuleGranularity::PerDestination),
            Err(ProvisionError::NoRoute { .. })
        ));
    }

    #[test]
    fn add_flow_matches_batch_provisioning() {
        // Provision half the pairs up front, add the rest reactively; the
        // resulting view must install the same rule set per switch as the
        // all-at-once provisioning (order may differ).
        for g in [
            RuleGranularity::PerFlowPair,
            RuleGranularity::PerDestination,
        ] {
            let topo = bcube(1, 4);
            let all = uniform_flows(&topo, 240_000.0);
            let full = provision(topo.clone(), &all, g).unwrap();
            let (first, rest) = all.split_at(all.len() / 2);
            let mut incremental = provision(topo, first, g).unwrap();
            for f in rest {
                incremental.add_flow(*f).unwrap();
            }
            assert_eq!(incremental.flows.len(), full.flows.len());
            assert_eq!(
                incremental.view.rule_count(),
                full.view.rule_count(),
                "granularity {g:?}"
            );
            // Same multiset of (switch, match, action) triples.
            for s in incremental.view.topology().switches() {
                let mut a: Vec<String> = incremental
                    .view
                    .table(s)
                    .iter()
                    .map(|(_, r)| r.to_string())
                    .collect();
                let mut b: Vec<String> = full
                    .view
                    .table(s)
                    .iter()
                    .map(|(_, r)| r.to_string())
                    .collect();
                a.sort();
                b.sort();
                assert_eq!(a, b, "switch {s:?} tables differ ({g:?})");
            }
        }
    }

    #[test]
    fn add_flow_keeps_view_and_dataplane_in_lockstep() {
        let topo = bcube(1, 4);
        let all = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &all[..10], RuleGranularity::PerFlowPair).unwrap();
        let (new_rules, path) = dep.add_flow(all[10]).unwrap();
        assert_eq!(new_rules.len(), path.len(), "per-pair: one rule per hop");
        for r in &new_rules {
            assert_eq!(dep.view.rule(*r), dep.dataplane.rule(*r));
        }
        // Re-adding the same flow installs nothing new.
        let (none, _) = dep.add_flow(all[10]).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn add_flow_delivers_traffic() {
        let topo = fattree(4);
        let all = uniform_flows(&topo, 240_000.0);
        let mut dep = provision(topo, &all[..1], RuleGranularity::PerDestination).unwrap();
        let spec = all[37];
        dep.add_flow(spec).unwrap();
        let rep = dep.dataplane.inject(
            spec.src,
            foces_dataplane::pair_header(spec.src, spec.dst),
            spec.rate,
            &mut LossModel::none(),
        );
        assert_eq!(rep.delivered_to, Some(spec.dst));
    }

    #[test]
    fn waypoint_flow_transits_the_waypoint() {
        // ring(6): h0 -> h2 shortest is s0-s1-s2; waypoint s4 forces the
        // long way round (s0-s5-s4-s3-s2), which is simple and expressible.
        let topo = foces_net::generators::ring(6);
        let hosts: Vec<HostId> = topo.hosts().collect();
        let mut dep = provision(topo, &[], RuleGranularity::PerFlowPair).unwrap();
        let spec = FlowSpec {
            src: hosts[0],
            dst: hosts[2],
            rate: 500.0,
        };
        let waypoint = SwitchId(4);
        let (rules, path) = dep.add_flow_via(spec, &[waypoint]).unwrap();
        assert_eq!(
            path,
            vec![
                SwitchId(0),
                SwitchId(5),
                SwitchId(4),
                SwitchId(3),
                SwitchId(2)
            ],
            "the long way round"
        );
        assert_eq!(rules.len(), path.len());
        // Traffic actually follows the stitched path and is delivered.
        let rep = dep.dataplane.inject(
            spec.src,
            foces_dataplane::pair_header(spec.src, spec.dst),
            spec.rate,
            &mut LossModel::none(),
        );
        assert_eq!(rep.delivered_to, Some(spec.dst));
        assert_eq!(rep.hops, path.len());
        for r in &rules {
            assert_eq!(dep.dataplane.counter(r.switch, r.index), spec.rate);
        }
    }

    #[test]
    fn waypoint_path_must_be_simple() {
        // FatTree(4): cores connect to exactly one aggregation switch per
        // pod, so a core waypoint for a same-pod flow must go up and down
        // through the SAME agg — inexpressible with single match/action
        // rules, and correctly rejected.
        let topo = fattree(4);
        let hosts: Vec<HostId> = topo.hosts().collect();
        let core = topo
            .switches()
            .find(|&s| topo.switch_role(s) == foces_net::SwitchRole::Core)
            .unwrap();
        let mut dep = provision(topo, &[], RuleGranularity::PerFlowPair).unwrap();
        let spec = FlowSpec {
            src: hosts[0],
            dst: hosts[1], // same edge switch
            rate: 1.0,
        };
        let err = dep.add_flow_via(spec, &[core]).unwrap_err();
        assert!(matches!(err, ProvisionError::NonSimplePath { .. }));
    }

    #[test]
    fn waypoint_unreachable_is_reported() {
        let mut topo = fattree(4);
        let island = topo.add_switch("island");
        let hosts: Vec<HostId> = topo.hosts().collect();
        let mut dep = provision(topo, &[], RuleGranularity::PerFlowPair).unwrap();
        let spec = FlowSpec {
            src: hosts[0],
            dst: hosts[15],
            rate: 1.0,
        };
        let err = dep.add_flow_via(spec, &[island]).unwrap_err();
        assert!(matches!(
            err,
            ProvisionError::WaypointUnreachable { waypoint } if waypoint == island
        ));
    }

    #[test]
    fn add_flow_validates_endpoints() {
        let mut topo = Topology::new();
        let s0 = topo.add_switch("s0");
        let h0 = topo.add_host();
        let h1 = topo.add_host();
        topo.connect(Node::Host(h0), Node::Switch(s0)).unwrap();
        topo.connect(Node::Host(h1), Node::Switch(s0)).unwrap();
        let flows = [FlowSpec {
            src: h0,
            dst: h1,
            rate: 1.0,
        }];
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let h_orphan = HostId(99);
        assert!(dep
            .add_flow(FlowSpec {
                src: h0,
                dst: h_orphan,
                rate: 1.0
            })
            .is_err());
    }

    #[test]
    fn reroute_journals_old_and_new_rules_and_moves_traffic() {
        let topo = foces_net::generators::ring(6);
        let flows = uniform_flows(&topo, 30_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let hosts: Vec<HostId> = dep.view.topology().hosts().collect();
        let flow = dep
            .flows
            .iter()
            .position(|f| f.src == hosts[0] && f.dst == hosts[2])
            .unwrap();
        let spec = dep.flows[flow];
        let old_path = dep.expected_paths[flow].clone();
        assert_eq!(old_path, vec![SwitchId(0), SwitchId(1), SwitchId(2)]);
        let old_rules: Vec<RuleRef> = {
            let header = foces_dataplane::pair_header(spec.src, spec.dst);
            old_path
                .iter()
                .map(|&sw| {
                    let (index, _) = dep.view.table(sw).lookup(header).unwrap();
                    RuleRef { switch: sw, index }
                })
                .collect()
        };

        let (generation, new_rules) = dep.reroute_flow_via(flow, &[SwitchId(4)]).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(dep.view.generation(), 1);
        assert_eq!(
            dep.expected_paths[flow],
            vec![
                SwitchId(0),
                SwitchId(5),
                SwitchId(4),
                SwitchId(3),
                SwitchId(2)
            ]
        );
        // The journal conservatively covers both the drained and the new rules.
        let touched = dep.view.touched_rules_since(0);
        for r in old_rules.iter().chain(&new_rules) {
            assert!(touched.contains(r), "journal must cover {r}");
        }
        assert_eq!(dep.view.journal().len(), 1);
        assert_eq!(dep.view.journal()[0].kind, UpdateKind::Reroute);
        assert_eq!(dep.view.journal()[0].touched_flows, vec![flow]);
        // Every switch that received a rule acknowledges the new generation.
        for r in &new_rules {
            assert_eq!(dep.dataplane.table_generation(r.switch), 1);
        }
        // Traffic follows the new path; the drained rules stay at zero.
        dep.dataplane.reset_counters();
        let rep = dep.dataplane.inject(
            spec.src,
            foces_dataplane::pair_header(spec.src, spec.dst),
            spec.rate,
            &mut LossModel::none(),
        );
        assert_eq!(rep.delivered_to, Some(spec.dst));
        assert_eq!(rep.hops, 5, "the long way round");
        for r in &new_rules {
            assert_eq!(dep.dataplane.counter(r.switch, r.index), spec.rate);
        }
        for r in &old_rules {
            assert_eq!(dep.dataplane.counter(r.switch, r.index), 0.0);
        }
    }

    #[test]
    fn rerouting_twice_out_prioritises_the_first_reroute() {
        let topo = foces_net::generators::ring(6);
        let flows = uniform_flows(&topo, 30_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        let hosts: Vec<HostId> = dep.view.topology().hosts().collect();
        let flow = dep
            .flows
            .iter()
            .position(|f| f.src == hosts[0] && f.dst == hosts[2])
            .unwrap();
        let spec = dep.flows[flow];
        dep.reroute_flow_via(flow, &[SwitchId(4)]).unwrap();
        // Back onto the short path: must shadow the waypoint rules.
        let (generation, _) = dep.reroute_flow_via(flow, &[]).unwrap();
        assert_eq!(generation, 2);
        dep.dataplane.reset_counters();
        let rep = dep.dataplane.inject(
            spec.src,
            foces_dataplane::pair_header(spec.src, spec.dst),
            spec.rate,
            &mut LossModel::none(),
        );
        assert_eq!(rep.delivered_to, Some(spec.dst));
        assert_eq!(rep.hops, 3, "back on the short path");
    }

    #[test]
    fn refine_gives_the_flow_dedicated_rules_without_moving_it() {
        let mut dep = deploy(fattree(4), RuleGranularity::PerDestination);
        let flow = 7;
        let spec = dep.flows[flow];
        let path_before = dep.expected_paths[flow].clone();
        let (generation, new_rules) = dep.refine_flow(flow).unwrap();
        assert_eq!(generation, 1);
        assert_eq!(dep.expected_paths[flow], path_before, "path unchanged");
        assert_eq!(new_rules.len(), path_before.len(), "one rule per hop");
        assert_eq!(dep.view.journal()[0].kind, UpdateKind::Refine);
        dep.dataplane.reset_counters();
        let rep = dep.dataplane.inject(
            spec.src,
            foces_dataplane::pair_header(spec.src, spec.dst),
            spec.rate,
            &mut LossModel::none(),
        );
        assert_eq!(rep.delivered_to, Some(spec.dst));
        // The dedicated rules now carry the flow; the aggregates lost it.
        for r in &new_rules {
            assert_eq!(dep.dataplane.counter(r.switch, r.index), spec.rate);
        }
    }

    #[test]
    fn hardening_install_journals_overlapping_rules() {
        let mut dep = deploy(bcube(1, 4), RuleGranularity::PerDestination);
        let spec = dep.flows[0];
        let sw = dep.expected_paths[0][0];
        let shadowed = {
            let header = foces_dataplane::pair_header(spec.src, spec.dst);
            let (index, _) = dep.view.table(sw).lookup(header).unwrap();
            RuleRef { switch: sw, index }
        };
        let rule = Rule::new(pair_match(spec.src, spec.dst), 20, Action::Drop);
        let (generation, r) = dep.install_hardening(sw, rule);
        assert_eq!(generation, 1);
        assert_eq!(dep.dataplane.table_generation(sw), 1);
        assert_eq!(dep.view.rule(r), dep.dataplane.rule(r));
        let touched = &dep.view.journal()[0].touched_rules;
        assert!(touched.contains(&r), "the new rule itself is journaled");
        assert!(touched.contains(&shadowed), "the shadowed aggregate too");
    }

    #[test]
    fn covert_modification_does_not_advance_the_generation() {
        let mut dep = deploy(bcube(1, 4), RuleGranularity::PerDestination);
        let r = dep.view.rule_refs().next().unwrap();
        dep.dataplane.modify_rule_action(r, Action::Drop).unwrap();
        assert_eq!(dep.view.generation(), 0);
        assert_eq!(dep.dataplane.table_generation(r.switch), 0);
    }

    #[test]
    fn scaled_replay_is_linear_in_the_fraction() {
        let mut half = deploy(fattree(4), RuleGranularity::PerDestination);
        let mut full = half.clone();
        full.replay_traffic(&mut LossModel::none());
        half.replay_traffic_scaled(&mut LossModel::none(), 0.5);
        half.replay_traffic_scaled(&mut LossModel::none(), 0.5);
        let a = full.dataplane.collect_counters();
        let b = half.dataplane.collect_counters();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn touched_rules_since_sees_only_newer_updates() {
        let topo = foces_net::generators::ring(6);
        let flows = uniform_flows(&topo, 30_000.0);
        let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap();
        dep.reroute_flow_via(0, &[]).unwrap();
        let after_first = dep.view.generation();
        assert!(!dep.view.touched_rules_since(0).is_empty());
        assert!(dep.view.touched_rules_since(after_first).is_empty());
        dep.refine_flow(1).unwrap();
        assert!(!dep.view.touched_rules_since(after_first).is_empty());
        let all = dep.view.touched_rules_since(0);
        let newer = dep.view.touched_rules_since(after_first);
        for r in &newer {
            assert!(all.contains(r));
        }
    }

    #[test]
    fn table1_dimensions() {
        // Reproduces Table I's switch/host/flow columns exactly; rule counts
        // depend on compilation granularity (documented in EXPERIMENTS.md).
        let cases: [(&str, Topology, usize, usize, usize); 4] = [
            ("stanford", stanford(), 26, 26, 650),
            ("fattree4", fattree(4), 20, 16, 240),
            ("bcube14", bcube(1, 4), 24, 16, 240),
            ("dcell14", dcell(1, 4), 25, 20, 380),
        ];
        for (name, topo, switches, hosts, flow_count) in cases {
            assert_eq!(topo.switch_count(), switches, "{name} switches");
            assert_eq!(topo.host_count(), hosts, "{name} hosts");
            let dep = deploy(topo, RuleGranularity::PerDestination);
            assert_eq!(dep.flows.len(), flow_count, "{name} flows");
            assert!(dep.view.rule_count() > 0, "{name} rules");
        }
    }
}
