use foces_net::{HostId, Topology};
use std::fmt;

/// A traffic demand: `rate` packets per collection interval from `src` to
/// `dst`.
///
/// The paper fixes each network's aggregate rate to 800 Mb/s split evenly
/// over all host pairs; in the fluid simulator only the *relative* volumes
/// matter, so experiments work in packets-per-interval directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowSpec {
    /// Traffic source.
    pub src: HostId,
    /// Traffic sink.
    pub dst: HostId,
    /// Packets per collection interval.
    pub rate: f64,
}

impl fmt::Display for FlowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}->h{} @{}", self.src.0, self.dst.0, self.rate)
    }
}

/// How the controller compiles routes into rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum RuleGranularity {
    /// One rule per (switch, destination host): sources share rules, so
    /// rules aggregate flows — the regime FOCES is designed for (no
    /// dedicated per-flow rules needed).
    #[default]
    PerDestination,
    /// One exact-match rule per (switch, src, dst): no aggregation.
    /// Mirrors Floodlight's reactive per-flow installation; used as an
    /// ablation of rule-aggregation effects.
    PerFlowPair,
}

/// Generates the paper's workload: one flow per ordered host pair, each of
/// `total_rate / pair_count` packets per interval (§VI-B: "a flow of the
/// same rate between each pair of hosts", total fixed per network).
///
/// Returns an empty vector for topologies with fewer than two hosts.
///
/// # Example
///
/// ```
/// use foces_controlplane::uniform_flows;
/// use foces_net::generators::stanford;
///
/// let flows = uniform_flows(&stanford(), 650_000.0);
/// assert_eq!(flows.len(), 650);            // 26 * 25 ordered pairs
/// assert_eq!(flows[0].rate, 1000.0);
/// ```
pub fn uniform_flows(topo: &Topology, total_rate: f64) -> Vec<FlowSpec> {
    let hosts: Vec<HostId> = topo.hosts().collect();
    let pairs = hosts.len().saturating_mul(hosts.len().saturating_sub(1));
    if pairs == 0 {
        return Vec::new();
    }
    let rate = total_rate / pairs as f64;
    let mut flows = Vec::with_capacity(pairs);
    for &src in &hosts {
        for &dst in &hosts {
            if src != dst {
                flows.push(FlowSpec { src, dst, rate });
            }
        }
    }
    flows
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_net::generators::{bcube, dcell, fattree, stanford};

    #[test]
    fn flow_counts_match_table1() {
        // Table I: Stanford 650, FatTree(4) 240, BCube(1,4) 240, DCell(1,4) 380.
        assert_eq!(uniform_flows(&stanford(), 1.0).len(), 650);
        assert_eq!(uniform_flows(&fattree(4), 1.0).len(), 240);
        assert_eq!(uniform_flows(&bcube(1, 4), 1.0).len(), 240);
        assert_eq!(uniform_flows(&dcell(1, 4), 1.0).len(), 380);
    }

    #[test]
    fn rates_are_uniform_and_sum_to_total() {
        let flows = uniform_flows(&fattree(4), 480.0);
        assert!(flows.iter().all(|f| f.rate == 2.0));
        let total: f64 = flows.iter().map(|f| f.rate).sum();
        assert!((total - 480.0).abs() < 1e-9);
    }

    #[test]
    fn no_self_flows() {
        let flows = uniform_flows(&stanford(), 1.0);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn empty_topology_yields_no_flows() {
        let topo = Topology::new();
        assert!(uniform_flows(&topo, 100.0).is_empty());
    }

    #[test]
    fn display_format() {
        let f = FlowSpec {
            src: HostId(1),
            dst: HostId(2),
            rate: 3.5,
        };
        assert_eq!(f.to_string(), "h1->h2 @3.5");
    }
}
