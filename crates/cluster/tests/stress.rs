//! Cluster stress drill (the CI `cluster` job's core test): 10% sampled
//! packet loss on every link, one shard's worker permanently panicking,
//! and a standing anomaly in a *different* shard. The dead shard must
//! degrade — never silence the cluster — and the surviving shards must
//! keep the alarm up through the noise.

use foces::{AlarmState, Fcm};
use foces_cluster::{ClusterConfig, ClusterService, DegradeReason, ShardFault, ShardHealth};
use foces_controlplane::{provision, uniform_flows, RuleGranularity};
use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
use foces_net::generators::bcube;
use foces_net::{partition, PartitionSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn anomaly_survives_loss_and_a_dead_shard() {
    let topo = bcube(1, 4);
    let spec = PartitionSpec::EdgeCut { k: 4 };
    // Compute the partition up front (it is deterministic, so the service
    // will cut identically) to aim the anomaly away from the shard we kill.
    let part = partition(&topo, spec);
    let dead_region = 0;
    let exclude: Vec<_> = part.region(dead_region).to_vec();

    let flows = uniform_flows(&topo, topo.host_count() as f64 * 15_000.0);
    let mut dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
    let fcm = Fcm::from_view(&dep.view);
    let config = ClusterConfig {
        spec,
        ..ClusterConfig::default()
    };
    let mut svc = ClusterService::new(fcm, dep.view.topology(), config).unwrap();

    // Two clean (but lossy) epochs to warm every solver.
    for seed in 0..2u64 {
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::sampled(0.10, seed));
        let y = dep.dataplane.collect_counters();
        svc.run_epoch(&y).unwrap();
    }

    // Kill one shard's worker for good, and plant a standing anomaly in a
    // switch owned by a *different* shard.
    svc.inject_fault(dead_region, ShardFault::Panic);
    let mut rng = StdRng::seed_from_u64(42);
    inject_random_anomaly(
        &mut dep.dataplane,
        AnomalyKind::PathDeviation,
        &mut rng,
        &exclude,
    )
    .unwrap();

    let mut alarm_raised = false;
    let mut anomalous_epochs = 0;
    let rounds = 10u64;
    for seed in 0..rounds {
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::sampled(0.10, 100 + seed));
        let y = dep.dataplane.collect_counters();
        let r = svc.run_epoch(&y).unwrap();

        // Fault isolation: exactly the killed shard degrades, by panic.
        let degraded: Vec<_> = r.shards.iter().filter(|s| !s.health.is_healthy()).collect();
        assert_eq!(degraded.len(), 1, "epoch {seed}: {degraded:?}");
        assert_eq!(degraded[0].region, dead_region);
        assert!(matches!(
            degraded[0].health,
            ShardHealth::Degraded(DegradeReason::Panic(_))
        ));
        // The blind spot is quantified, not total.
        assert!(r.detectability.row_coverage < 1.0);
        assert!(r.detectability.row_coverage > 0.5);
        // Healthy shards keep their warm factors across the fault.
        for s in r.shards.iter().filter(|s| s.health.is_healthy()) {
            assert!(
                s.solve_path.is_some_and(|p| p.is_warm()),
                "epoch {seed} region {} went cold: {:?}",
                s.region,
                s.solve_path
            );
        }

        // `raised` is the transition edge; lossy warm-up rounds can
        // pre-raise, so accept a standing Alarmed state too.
        alarm_raised |= r.alarm.raised || r.alarm_state == AlarmState::Alarmed;
        if r.anomalous {
            anomalous_epochs += 1;
        }
    }

    assert!(
        alarm_raised,
        "surviving shards never raised through 10% loss + dead shard"
    );
    assert!(
        anomalous_epochs >= rounds * 7 / 10,
        "only {anomalous_epochs}/{rounds} epochs flagged the standing anomaly"
    );
    assert_eq!(svc.metrics().shard_panics, rounds);
    assert!(svc.metrics().worst_row_coverage < 1.0);
}
