//! Per-shard reconciliation of churned or incomplete rounds — the PR-2
//! journal/quarantine pattern applied to one shard's sub-system.
//!
//! Both consumers of the shard fan-out need exactly this round shape: the
//! event-driven `foces-ingest::StreamDriver` when a shard's completion
//! edge fires mid-update, and the `foces-sched` schedule harness when it
//! replays a shard round at an arbitrary point of an enumerated commit
//! schedule. Extracting it here keeps the two byte-for-byte identical —
//! the conformance the harness checks is only meaningful if the checked
//! code is the deployed code.

use foces::{Detector, Fcm, FocesError, ShardView, Verdict};
use foces_dataplane::RuleRef;

/// How a reconciled shard round was scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardRoundKind {
    /// Masking left no solvable sub-system; the round is skipped, not
    /// fabricated (sound: no verdict is better than a wrong one).
    Blind,
    /// Rule generations were mixed (journal churn or a stale-generation
    /// member); the masked verdict counts, but its residuals must never
    /// feed per-switch suspicion.
    Reconciled,
    /// No churn, but some closure rows were unobserved; the row-masked
    /// verdict is sound on the remaining equations.
    Degraded,
}

impl ShardRoundKind {
    /// The JSONL label the stream driver logs for this round kind.
    pub fn label(&self) -> &'static str {
        match self {
            ShardRoundKind::Blind => "blind",
            ShardRoundKind::Reconciled => "reconciled",
            ShardRoundKind::Degraded => "degraded",
        }
    }
}

/// The outcome of [`reconcile_shard_round`].
#[derive(Debug, Clone)]
pub struct ShardRound {
    /// How the round was scored.
    pub kind: ShardRoundKind,
    /// The masked verdict, absent for blind rounds.
    pub verdict: Option<Verdict>,
    /// The rules whose residuals may feed suspicion scoring — empty for
    /// blind *and* reconciled rounds (mixed generations lie).
    pub scored_rules: Vec<RuleRef>,
}

/// Scores one shard round whose counters mix rule generations (`churn`)
/// or miss closure rows (`!sub_observed.all()`): quarantines the flow
/// columns the journal's `touched` rules cross (resolved against the
/// **parent** FCM — a flow rerouted outside this region still mixes
/// generations inside it), masks the quarantine's closure rows and the
/// touched rules' own rows, drops unobserved rows on top, and solves the
/// remaining sub-system.
///
/// `sub_counters` and `sub_observed` are in the shard's parent-row order
/// ([`ShardView::sub_counters`]).
///
/// # Errors
///
/// Propagates solver failures from [`Detector::detect_masked`].
pub fn reconcile_shard_round(
    view: &ShardView<'_>,
    parent_fcm: &Fcm,
    detector: &Detector,
    sub_counters: &[f64],
    sub_observed: &[bool],
    touched: &[RuleRef],
    churn: bool,
) -> Result<ShardRound, FocesError> {
    let parent_q = parent_fcm.columns_touching(touched);
    let shard_q: Vec<bool> = view.parent_columns.iter().map(|&j| parent_q[j]).collect();
    let closure = view.sub_fcm.rows_touching(&shard_q);
    let mut keep: Vec<bool> = sub_observed
        .iter()
        .zip(&closure)
        .map(|(&o, &c)| o && !c)
        .collect();
    for r in touched {
        if let Some(row) = view.sub_fcm.rule_row(*r) {
            keep[row] = false;
        }
    }
    let masked = view.sub_fcm.quarantine(&keep, &shard_q);
    if masked.fcm().rule_count() == 0 || masked.fcm().flow_count() == 0 {
        return Ok(ShardRound {
            kind: ShardRoundKind::Blind,
            verdict: None,
            scored_rules: Vec::new(),
        });
    }
    let verdict = detector.detect_masked(&masked, sub_counters)?;
    if churn {
        Ok(ShardRound {
            kind: ShardRoundKind::Reconciled,
            verdict: Some(verdict),
            scored_rules: Vec::new(),
        })
    } else {
        Ok(ShardRound {
            kind: ShardRoundKind::Degraded,
            verdict: Some(verdict),
            scored_rules: masked.fcm().rules().to_vec(),
        })
    }
}
