//! **foces-cluster** — sharded multi-worker detection with boundary-flow
//! reconciliation.
//!
//! The paper's Algorithm 2 slices the FCM per switch to cut the `O(N³)`
//! solve, but the sliced detector still runs inside one process over one
//! global snapshot. This crate adds the deployment-level partition that
//! distributed SDN control planes use to scale out: the topology is cut
//! into `k` **region shards** ([`foces_net::partition()`]), each shard gets
//! its own sub-FCM with explicit boundary flows ([`foces::ShardedFcm`]),
//! and a [`ClusterService`] drives one logical worker per shard on the
//! runtime's work-stealing pool ([`foces_runtime::pool`]):
//!
//! * **Warm solves stay per-shard.** Every shard owns an
//!   [`foces::IncrementalSolver`]; after the first epoch each healthy
//!   shard reports `warm(rank=…)` and pays only the patch cost.
//! * **Faults degrade, they don't silence.** A worker that panics or
//!   misses its deadline marks *its* shard degraded; the coordinator
//!   aggregates the remaining shards into the network-wide verdict and
//!   quantifies the blind spot with the row-mask machinery
//!   ([`foces::Fcm::mask_rows`]) as a per-shard detectability report.
//! * **Everything is observable.** Per-shard solve path, queue depth,
//!   steal flag and degraded reason land in a JSONL epoch line
//!   ([`foces_runtime::EventLog`]), plus cumulative [`ClusterMetrics`].
//! * **Shards can fire without a barrier.** [`ShardCompletion`] tracks
//!   per-shard counter freshness and reports the exact completion edge,
//!   so event-driven ingestion (`foces-ingest`) triggers each shard's
//!   solve the moment its own members have answered instead of waiting
//!   for the global epoch wall.
//!
//! The shard-union verdict is pinned against the global
//! [`foces::Detector::detect`] by the 256-case property suite in
//! `crates/core/tests/shard_props.rs`, and against worker faults by
//! `tests/cluster_faults.rs` and the stress test in this crate.

pub mod completion;
mod metrics;
pub mod reconcile;
mod service;

pub use completion::ShardCompletion;
pub use metrics::ClusterMetrics;
pub use reconcile::{reconcile_shard_round, ShardRound, ShardRoundKind};
pub use service::{
    ClusterConfig, ClusterEpochReport, ClusterService, DegradeReason, DetectabilityReport,
    ShardFault, ShardHealth, ShardReport,
};
