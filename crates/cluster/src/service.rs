//! The cluster coordinator: one warm solver per shard, a work-stealing
//! pool per epoch, shard-level fault isolation, and a network-wide verdict
//! with a per-shard detectability report.

use crate::ClusterMetrics;
use foces::{
    analyze_cluster_coverage, BackendKind, CoverageConfig, CoverageReport, Detector, Fcm,
    FocesError, IncrementalSolver, RankBudget, ShardedFcm, SolvePath, SuspicionConfig,
    SuspicionTracker, Verdict, DEFAULT_THRESHOLD,
};
use foces_net::{partition, Partition, PartitionSpec, Topology};
use foces_runtime::metrics::{json_f64, json_str};
use foces_runtime::pool::{run_tasks, PoolConfig, TaskOutcome, TaskRun};
use foces_runtime::{AlarmMachine, AlarmTransition, EventLog, HysteresisConfig, PoolStats};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

/// An injected worker fault, for the CLI's fault drills and the test
/// suites: the next epochs' worker for that shard misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// The shard's worker panics mid-solve (a killed worker).
    Panic,
    /// The shard's worker stalls for the given duration before solving —
    /// long stalls turn into deadline misses.
    Stall(Duration),
}

/// Why a shard was excluded from this epoch's union verdict.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradeReason {
    /// The worker panicked; the panic message is preserved.
    Panic(String),
    /// The solve finished but blew the per-shard deadline.
    DeadlineMiss {
        /// Wall-clock the solve actually took.
        elapsed_ms: f64,
    },
    /// The shard's least-squares solve failed.
    SolveError(String),
}

impl DegradeReason {
    /// Short machine-readable label for logs.
    pub fn label(&self) -> &'static str {
        match self {
            DegradeReason::Panic(_) => "panic",
            DegradeReason::DeadlineMiss { .. } => "deadline-miss",
            DegradeReason::SolveError(_) => "solve-error",
        }
    }
}

/// Health of one shard in one epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardHealth {
    /// Solved cleanly within its deadline; its verdict joins the union.
    Healthy,
    /// Excluded from the union this epoch.
    Degraded(DegradeReason),
}

impl ShardHealth {
    /// `true` for [`ShardHealth::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, ShardHealth::Healthy)
    }
}

/// Per-shard record of one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardReport {
    /// Region index in the cluster's partition.
    pub region: usize,
    /// Health this epoch.
    pub health: ShardHealth,
    /// The shard verdict (present for healthy shards and deadline misses,
    /// absent after a panic or solver error).
    pub verdict: Option<Verdict>,
    /// Which solve path the shard's warm solver took.
    pub solve_path: Option<SolvePath>,
    /// Wall-clock inside the shard solve.
    pub elapsed_ms: f64,
    /// Pool worker that ran the shard.
    pub worker: usize,
    /// `true` when the shard was stolen off another worker's deque.
    pub stolen: bool,
    /// Deque depth where the shard task was seeded.
    pub queue_depth: usize,
}

/// How much of the network the healthy shards still see — the row-mask
/// machinery's answer to "what can a degraded cluster still detect?".
#[derive(Debug, Clone, PartialEq)]
pub struct DetectabilityReport {
    /// Regions degraded this epoch, ascending.
    pub degraded_regions: Vec<usize>,
    /// Fraction of shard-covered FCM rows still observed by healthy
    /// shards (1.0 when nothing is degraded).
    pub row_coverage: f64,
    /// Fraction of flows still constrained by at least one healthy shard.
    pub flow_coverage: f64,
    /// Boundary flows with at least one degraded holder — still checked,
    /// but with less redundancy.
    pub boundary_at_risk: usize,
}

impl DetectabilityReport {
    fn full() -> Self {
        DetectabilityReport {
            degraded_regions: Vec::new(),
            row_coverage: 1.0,
            flow_coverage: 1.0,
            boundary_at_risk: 0,
        }
    }
}

/// Everything one [`ClusterService::run_epoch`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterEpochReport {
    /// Epoch counter (0-based).
    pub epoch: u64,
    /// Union verdict over the healthy shards.
    pub anomalous: bool,
    /// Largest anomaly index among healthy shards.
    pub max_anomaly_index: f64,
    /// Per-shard records, ascending region.
    pub shards: Vec<ShardReport>,
    /// The blind-spot quantification for this epoch.
    pub detectability: DetectabilityReport,
    /// Pool statistics for this epoch.
    pub pool: PoolStats,
    /// What the hysteresis machine did with this epoch.
    pub alarm: AlarmTransition,
    /// Alarm state after this epoch.
    pub alarm_state: foces::AlarmState,
    /// Highest per-switch suspicion score after this epoch's residual
    /// attribution (0.0 on an honest network).
    pub suspicion_max: f64,
}

impl ClusterEpochReport {
    /// Regions flagged anomalous by healthy shards.
    pub fn flagged_regions(&self) -> Vec<usize> {
        self.shards
            .iter()
            .filter(|s| s.health.is_healthy())
            .filter(|s| s.verdict.as_ref().is_some_and(|v| v.anomalous))
            .map(|s| s.region)
            .collect()
    }
}

/// Cluster tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// How to cut the topology into shards.
    pub spec: PartitionSpec,
    /// Detection threshold (paper default 4.5).
    pub threshold: f64,
    /// Pool workers; `0` sizes the pool to the shard count (capped at 16).
    pub workers: usize,
    /// Per-worker deque capacity (backpressure bound).
    pub queue_capacity: usize,
    /// Per-shard solve deadline; `None` disables deadline degradation.
    pub shard_deadline: Option<Duration>,
    /// Alarm hysteresis configuration.
    pub hysteresis: HysteresisConfig,
    /// Solve backend for the per-shard warm solvers: dense factor cache,
    /// sparse Cholesky/PCGLS engine, or size-based auto selection.
    pub backend: BackendKind,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            spec: PartitionSpec::EdgeCut { k: 4 },
            threshold: DEFAULT_THRESHOLD,
            workers: 0,
            queue_capacity: 4,
            shard_deadline: None,
            hysteresis: HysteresisConfig::default(),
            backend: BackendKind::default(),
        }
    }
}

/// The sharded detection coordinator (see crate docs).
pub struct ClusterService {
    config: ClusterConfig,
    detector: Detector,
    partition: Partition,
    fcm: Fcm,
    sharded: ShardedFcm,
    /// One warm solver per shard, locked only by the worker solving that
    /// shard — warm factors never migrate between shards.
    solvers: Vec<Mutex<IncrementalSolver>>,
    faults: HashMap<usize, ShardFault>,
    /// Per-switch residual attribution merged across healthy shards — the
    /// cluster-level half of the Byzantine localization pipeline (the
    /// runtime/ingest services own the quarantine step; the cluster
    /// surfaces the ranking for its operator).
    suspicion: SuspicionTracker,
    alarm: AlarmMachine,
    metrics: ClusterMetrics,
    log: EventLog,
    /// Detectability cache keyed by the sorted degraded-region set.
    mask_cache: HashMap<Vec<usize>, DetectabilityReport>,
    epoch: u64,
    /// Pre-flight coverage analysis over the FCM *and* the partition
    /// (per-shard rank checks); `None` when the FCM was empty.
    coverage: Option<CoverageReport>,
}

impl ClusterService {
    /// Partitions `topo` per `config.spec`, builds the sharded FCM from
    /// `fcm`, verifies boundary-flow reconciliation, and allocates one
    /// warm solver per shard.
    ///
    /// # Errors
    ///
    /// [`FocesError::ShardReconciliation`] if the sharded FCM fails its
    /// structural self-check (cannot happen for FCMs built from a
    /// controller view; guards hand-assembled ones).
    pub fn new(fcm: Fcm, topo: &Topology, config: ClusterConfig) -> Result<Self, FocesError> {
        let part = partition(topo, config.spec);
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        sharded.reconcile_boundaries(&fcm, &part)?;
        // Pre-flight gate: score detection/localization coverage over both
        // the whole system and every shard's sub-system, so thin shards
        // (below full rank despite boundary replication) surface before
        // the first epoch rather than as runtime solve errors.
        let coverage = analyze_cluster_coverage(&fcm, &sharded, &CoverageConfig::default()).ok();
        let mut metrics = ClusterMetrics::new();
        if let Some(cov) = &coverage {
            metrics.coverage_warnings = cov.warn_count() as u64;
        }
        let solvers = (0..sharded.shard_count())
            .map(|_| {
                Mutex::new(IncrementalSolver::with_backend(
                    RankBudget::default(),
                    config.backend,
                ))
            })
            .collect();
        Ok(ClusterService {
            detector: Detector::with_threshold(config.threshold),
            alarm: AlarmMachine::new(config.hysteresis),
            partition: part,
            fcm,
            sharded,
            solvers,
            faults: HashMap::new(),
            suspicion: SuspicionTracker::new(SuspicionConfig::default()),
            metrics,
            log: EventLog::in_memory(),
            mask_cache: HashMap::new(),
            config,
            epoch: 0,
            coverage,
        })
    }

    /// Replaces the in-memory event log (e.g. with a file-backed one).
    pub fn with_log(mut self, log: EventLog) -> Self {
        self.log = log;
        self
    }

    /// The partition in use.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The sharded FCM in use.
    pub fn sharded(&self) -> &ShardedFcm {
        &self.sharded
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The pre-flight coverage analysis (whole system + per-shard rank);
    /// `None` if the FCM was empty.
    pub fn coverage(&self) -> Option<&CoverageReport> {
        self.coverage.as_ref()
    }

    /// JSONL epoch lines recorded so far (when the log is in-memory).
    pub fn log_lines(&self) -> &[String] {
        self.log.lines()
    }

    /// Current alarm state.
    pub fn alarm_state(&self) -> foces::AlarmState {
        self.alarm.state()
    }

    /// The per-switch suspicion ranking accumulated so far.
    pub fn suspicion(&self) -> &SuspicionTracker {
        &self.suspicion
    }

    /// Injects a standing worker fault for `region`, starting next epoch.
    /// Panics and stalls only touch that shard; everything else keeps
    /// solving.
    pub fn inject_fault(&mut self, region: usize, fault: ShardFault) {
        self.faults.insert(region, fault);
    }

    /// Clears an injected fault (the shard's worker "restarts"); its warm
    /// factor is dropped so the first solve after recovery runs cold, like
    /// a real restarted process.
    pub fn clear_fault(&mut self, region: usize) {
        if self.faults.remove(&region).is_some() {
            if let Some(idx) = self
                .sharded
                .shard_views()
                .iter()
                .position(|v| v.region == region)
            {
                self.solvers[idx].lock().expect("solver lock").invalidate();
            }
        }
    }

    /// Runs one detection epoch over a full counter snapshot: fan the
    /// shards across the pool, union the healthy verdicts, quantify the
    /// degraded blind spot, feed the alarm machine, and log a JSONL line.
    ///
    /// # Errors
    ///
    /// [`FocesError::CounterLengthMismatch`] if `counters` does not match
    /// the parent FCM. Shard-level failures (panic, deadline, solver) are
    /// *not* errors — they degrade the shard and are reported.
    pub fn run_epoch(&mut self, counters: &[f64]) -> Result<ClusterEpochReport, FocesError> {
        if counters.len() != self.sharded.parent_rule_count() {
            return Err(FocesError::CounterLengthMismatch {
                got: counters.len(),
                expected: self.sharded.parent_rule_count(),
            });
        }
        let views = self.sharded.shard_views();
        let detector = &self.detector;
        let solvers = &self.solvers;
        let faults = self.faults.clone();
        type ShardResult = Result<(Verdict, SolvePath), FocesError>;
        let tasks: Vec<Box<dyn FnOnce() -> ShardResult + Send + '_>> = views
            .iter()
            .enumerate()
            .map(|(i, view)| {
                let view = *view;
                let fault = faults.get(&view.region).copied();
                let f: Box<dyn FnOnce() -> ShardResult + Send + '_> = Box::new(move || {
                    match fault {
                        Some(ShardFault::Panic) => {
                            panic!("injected worker fault: region {}", view.region)
                        }
                        Some(ShardFault::Stall(d)) => std::thread::sleep(d),
                        None => {}
                    }
                    let mut solver = solvers[i].lock().expect("shard solver lock");
                    view.detect_warm(detector, counters, &mut solver)
                });
                f
            })
            .collect();
        let (runs, pool_stats) = run_tasks(
            tasks,
            PoolConfig {
                workers: self.config.workers,
                queue_capacity: self.config.queue_capacity,
                deadline: self.config.shard_deadline,
            },
        );

        let regions: Vec<usize> = views.iter().map(|v| v.region).collect();
        drop(views);
        let mut shards = Vec::with_capacity(runs.len());
        let mut anomalous = false;
        let mut max_ai: f64 = 0.0;
        for (region, run) in regions.into_iter().zip(runs) {
            let report = self.shard_report(region, run);
            if report.health.is_healthy() {
                if let Some(v) = &report.verdict {
                    anomalous |= v.anomalous;
                    max_ai = max_ai.max(v.anomaly_index);
                }
            }
            shards.push(report);
        }

        // Residual attribution: every healthy shard's solve already carries
        // a per-row residual aligned with its sub-FCM, so the suspicion
        // merge costs one pass over rows the epoch computed anyway.
        {
            let views = self.sharded.shard_views();
            let mut fed = false;
            for report in &shards {
                if !report.health.is_healthy() {
                    continue;
                }
                let Some(v) = &report.verdict else { continue };
                let Some(view) = views.iter().find(|w| w.region == report.region) else {
                    continue;
                };
                if view.sub_fcm.rule_count() == v.solve.residual.len() {
                    self.suspicion
                        .observe(view.sub_fcm.rules(), &v.solve.residual, v.anomalous);
                    fed = true;
                }
            }
            if fed {
                self.metrics.suspicion_epochs += 1;
            }
        }

        let detectability = self.detectability(&shards);
        let alarm = self.alarm.observe(anomalous, false);

        self.metrics.epochs += 1;
        self.metrics.shard_solves += shards.len() as u64;
        self.metrics.steals += pool_stats.steals as u64;
        self.metrics.backpressure_stalls += pool_stats.backpressure_stalls as u64;
        self.metrics.max_queue_depth = self
            .metrics
            .max_queue_depth
            .max(pool_stats.max_queue_depth as u64);
        if anomalous {
            self.metrics.anomalous_epochs += 1;
        }
        if alarm.raised {
            self.metrics.alarms_raised += 1;
        }
        if alarm.cleared {
            self.metrics.alarms_cleared += 1;
        }
        self.metrics.worst_row_coverage = self
            .metrics
            .worst_row_coverage
            .min(detectability.row_coverage);

        let report = ClusterEpochReport {
            epoch: self.epoch,
            anomalous,
            max_anomaly_index: max_ai,
            shards,
            detectability,
            pool: pool_stats,
            alarm,
            alarm_state: self.alarm.state(),
            suspicion_max: self.suspicion.max_score(),
        };
        self.log_epoch(&report);
        self.epoch += 1;
        Ok(report)
    }

    /// Folds one pool run into a shard report, updating fault counters.
    fn shard_report(
        &mut self,
        region: usize,
        run: TaskRun<Result<(Verdict, SolvePath), FocesError>>,
    ) -> ShardReport {
        let (health, verdict, solve_path) = match run.outcome {
            TaskOutcome::Panicked { message } => {
                self.metrics.shard_panics += 1;
                (
                    ShardHealth::Degraded(DegradeReason::Panic(message)),
                    None,
                    None,
                )
            }
            TaskOutcome::Done(Err(e)) => {
                self.metrics.solve_errors += 1;
                (
                    ShardHealth::Degraded(DegradeReason::SolveError(e.to_string())),
                    None,
                    None,
                )
            }
            TaskOutcome::Done(Ok((verdict, path))) => {
                if path.is_warm() {
                    self.metrics.warm_solves += 1;
                } else {
                    self.metrics.cold_solves += 1;
                }
                if run.deadline_missed {
                    self.metrics.deadline_misses += 1;
                    (
                        ShardHealth::Degraded(DegradeReason::DeadlineMiss {
                            elapsed_ms: run.elapsed_ms,
                        }),
                        Some(verdict),
                        Some(path),
                    )
                } else {
                    (ShardHealth::Healthy, Some(verdict), Some(path))
                }
            }
        };
        if !health.is_healthy() {
            self.metrics.degraded_shard_epochs += 1;
        }
        ShardReport {
            region,
            health,
            verdict,
            solve_path,
            elapsed_ms: run.elapsed_ms,
            worker: run.worker,
            stolen: run.stolen,
            queue_depth: run.seed_depth,
        }
    }

    /// Quantifies this epoch's blind spot with the row-mask machinery:
    /// rows seen only by degraded shards are masked off the global FCM,
    /// and the mask's surviving rows/flows become the coverage fractions.
    /// Cached per degraded-region set (the expensive mask build runs once
    /// per distinct fault pattern, not per epoch).
    fn detectability(&mut self, shards: &[ShardReport]) -> DetectabilityReport {
        let degraded: Vec<usize> = shards
            .iter()
            .filter(|s| !s.health.is_healthy())
            .map(|s| s.region)
            .collect();
        if degraded.is_empty() {
            return DetectabilityReport::full();
        }
        if let Some(cached) = self.mask_cache.get(&degraded) {
            return cached.clone();
        }
        let views = self.sharded.shard_views();
        let healthy_rows = {
            let mut observed = vec![false; self.fcm.rule_count()];
            for view in &views {
                if !degraded.contains(&view.region) {
                    for &r in view.parent_rows {
                        observed[r] = true;
                    }
                }
            }
            observed
        };
        let all_rows: usize = {
            let mut any = vec![false; self.fcm.rule_count()];
            for view in &views {
                for &r in view.parent_rows {
                    any[r] = true;
                }
            }
            any.iter().filter(|&&b| b).count()
        };
        let masked = self.fcm.mask_rows(&healthy_rows);
        let observed_rows = healthy_rows.iter().filter(|&&b| b).count();
        let row_coverage = if all_rows == 0 {
            1.0
        } else {
            observed_rows as f64 / all_rows as f64
        };
        let flow_count = self.fcm.flow_count();
        let flow_coverage = if flow_count == 0 {
            1.0
        } else {
            1.0 - masked.dropped_flows() as f64 / flow_count as f64
        };
        let boundary_at_risk = self
            .sharded
            .boundary_flows()
            .iter()
            .filter(|&&j| {
                views.iter().any(|v| {
                    degraded.contains(&v.region) && v.parent_columns.binary_search(&j).is_ok()
                })
            })
            .count();
        let report = DetectabilityReport {
            degraded_regions: degraded.clone(),
            row_coverage,
            flow_coverage,
            boundary_at_risk,
        };
        self.mask_cache.insert(degraded, report.clone());
        report
    }

    /// Emits the JSONL epoch line: epoch-level verdict/alarm/coverage plus
    /// one object per shard with solve path, queue depth, steal flag and
    /// degraded reason.
    fn log_epoch(&mut self, r: &ClusterEpochReport) {
        use std::fmt::Write as _;
        let mut line = String::with_capacity(256);
        let _ = write!(
            line,
            "{{\"epoch\":{},\"mode\":\"cluster\",\"anomalous\":{},\"max_ai\":{},\"alarm\":{},\
             \"raised\":{},\"cleared\":{},\"suspicion_max\":{},\"degraded\":{},\
             \"row_coverage\":{},\
             \"flow_coverage\":{},\"boundary_at_risk\":{},\"steals\":{},\"max_queue_depth\":{},\
             \"backpressure_stalls\":{},\"shards\":[",
            r.epoch,
            r.anomalous,
            json_f64(r.max_anomaly_index),
            json_str(&format!("{:?}", r.alarm_state)),
            r.alarm.raised,
            r.alarm.cleared,
            json_f64(r.suspicion_max),
            r.detectability.degraded_regions.len(),
            json_f64(r.detectability.row_coverage),
            json_f64(r.detectability.flow_coverage),
            r.detectability.boundary_at_risk,
            r.pool.steals,
            r.pool.max_queue_depth,
            r.pool.backpressure_stalls,
        );
        for (i, s) in r.shards.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let path = s
                .solve_path
                .map(|p| p.to_string())
                .unwrap_or_else(|| "none".to_string());
            let reason = match &s.health {
                ShardHealth::Healthy => "null".to_string(),
                ShardHealth::Degraded(reason) => json_str(reason.label()),
            };
            let ai = s
                .verdict
                .as_ref()
                .map(|v| v.anomaly_index)
                .unwrap_or(f64::NAN);
            let _ = write!(
                line,
                "{{\"region\":{},\"healthy\":{},\"reason\":{},\"path\":{},\"ai\":{},\
                 \"ms\":{},\"worker\":{},\"stolen\":{},\"queue_depth\":{}}}",
                s.region,
                s.health.is_healthy(),
                reason,
                json_str(&path),
                json_f64(ai),
                json_f64(s.elapsed_ms),
                s.worker,
                s.stolen,
                s.queue_depth,
            );
        }
        line.push_str("]}");
        self.log.record(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, AnomalyKind, LossModel};
    use foces_net::generators::bcube;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn testbed(k: usize) -> (ClusterService, foces_controlplane::Deployment) {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
        let fcm = Fcm::from_view(&dep.view);
        let config = ClusterConfig {
            spec: PartitionSpec::EdgeCut { k },
            ..ClusterConfig::default()
        };
        let svc = ClusterService::new(fcm, dep.view.topology(), config).unwrap();
        (svc, dep)
    }

    fn counters(dep: &mut foces_controlplane::Deployment) -> Vec<f64> {
        dep.dataplane.reset_counters();
        dep.replay_traffic(&mut LossModel::none());
        dep.dataplane.collect_counters()
    }

    #[test]
    fn preflight_coverage_scores_every_shard() {
        let (svc, _dep) = testbed(4);
        let cov = svc.coverage().expect("non-empty FCM analyzes");
        assert_eq!(
            cov.shards.len(),
            svc.sharded().shard_count(),
            "every shard gets a rank check"
        );
        assert_eq!(
            svc.metrics().coverage_warnings,
            cov.warn_count() as u64,
            "the metric mirrors the report"
        );
    }

    #[test]
    fn healthy_epochs_stay_quiet_and_go_warm() {
        let (mut svc, mut dep) = testbed(4);
        for epoch in 0..3 {
            let y = counters(&mut dep);
            let r = svc.run_epoch(&y).unwrap();
            assert!(!r.anomalous, "epoch {epoch}");
            assert!(r.shards.iter().all(|s| s.health.is_healthy()));
            assert_eq!(r.detectability.row_coverage, 1.0);
            if epoch > 0 {
                for s in &r.shards {
                    assert!(
                        s.solve_path.is_some_and(|p| p.is_warm()),
                        "epoch {epoch} region {}: {:?}",
                        s.region,
                        s.solve_path
                    );
                }
            }
        }
        assert_eq!(svc.metrics().epochs, 3);
        assert_eq!(svc.metrics().degraded_shard_epochs, 0);
        assert_eq!(svc.log_lines().len(), 3);
    }

    #[test]
    fn anomaly_is_flagged_and_raises_after_hysteresis() {
        let (mut svc, mut dep) = testbed(4);
        // Two clean epochs, then a standing anomaly.
        for _ in 0..2 {
            let y = counters(&mut dep);
            assert!(!svc.run_epoch(&y).unwrap().anomalous);
        }
        let mut rng = StdRng::seed_from_u64(5);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let mut raised = false;
        for _ in 0..4 {
            let y = counters(&mut dep);
            let r = svc.run_epoch(&y).unwrap();
            raised |= r.alarm.raised;
        }
        assert!(raised, "a standing anomaly must raise within the window");
        assert!(svc.metrics().anomalous_epochs >= 2);
    }

    #[test]
    fn honest_epochs_accumulate_no_suspicion() {
        let (mut svc, mut dep) = testbed(4);
        for _ in 0..4 {
            let y = counters(&mut dep);
            let r = svc.run_epoch(&y).unwrap();
            assert_eq!(r.suspicion_max, 0.0);
        }
        assert_eq!(svc.suspicion().max_score(), 0.0);
        assert_eq!(svc.metrics().suspicion_epochs, 4);
        let last = svc.log_lines().last().unwrap();
        assert!(last.contains("\"suspicion_max\":0"), "{last}");
    }

    #[test]
    fn standing_anomaly_builds_a_suspicion_ranking() {
        let (mut svc, mut dep) = testbed(4);
        let y = counters(&mut dep);
        svc.run_epoch(&y).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        )
        .unwrap();
        let mut last_max = 0.0;
        for _ in 0..3 {
            let y = counters(&mut dep);
            last_max = svc.run_epoch(&y).unwrap().suspicion_max;
        }
        assert!(
            last_max > 0.0,
            "anomalous residuals must attribute suspicion to some switch"
        );
        assert!(!svc.suspicion().ranked().is_empty());
    }

    #[test]
    fn panicked_shard_degrades_only_itself() {
        let (mut svc, mut dep) = testbed(4);
        let y = counters(&mut dep);
        svc.run_epoch(&y).unwrap();
        svc.inject_fault(1, ShardFault::Panic);
        let y = counters(&mut dep);
        let r = svc.run_epoch(&y).unwrap();
        let degraded: Vec<usize> = r
            .shards
            .iter()
            .filter(|s| !s.health.is_healthy())
            .map(|s| s.region)
            .collect();
        assert_eq!(degraded, vec![1]);
        let bad = r.shards.iter().find(|s| s.region == 1).unwrap();
        match &bad.health {
            ShardHealth::Degraded(DegradeReason::Panic(msg)) => {
                assert!(msg.contains("injected worker fault"), "{msg}");
            }
            other => panic!("expected panic degradation, got {other:?}"),
        }
        assert!(r.detectability.row_coverage < 1.0);
        assert!(r.detectability.row_coverage > 0.5);
        assert_eq!(r.detectability.degraded_regions, vec![1]);
        // Healthy shards kept their warm path.
        for s in r.shards.iter().filter(|s| s.health.is_healthy()) {
            assert!(s.solve_path.is_some_and(|p| p.is_warm()));
        }
        assert_eq!(svc.metrics().shard_panics, 1);
        // The epoch line records the fault.
        let last = svc.log_lines().last().unwrap();
        assert!(last.contains("\"reason\":\"panic\""), "{last}");
    }

    #[test]
    fn stalled_shard_misses_deadline_and_recovers_cold() {
        let (mut svc, mut dep) = {
            let topo = bcube(1, 4);
            let flows = uniform_flows(&topo, 240_000.0);
            let dep = provision(topo, &flows, RuleGranularity::PerDestination).unwrap();
            let fcm = Fcm::from_view(&dep.view);
            let config = ClusterConfig {
                spec: PartitionSpec::EdgeCut { k: 4 },
                shard_deadline: Some(Duration::from_millis(40)),
                ..ClusterConfig::default()
            };
            (
                ClusterService::new(fcm, dep.view.topology(), config).unwrap(),
                dep,
            )
        };
        let y = counters(&mut dep);
        svc.run_epoch(&y).unwrap();
        svc.inject_fault(2, ShardFault::Stall(Duration::from_millis(120)));
        let y = counters(&mut dep);
        let r = svc.run_epoch(&y).unwrap();
        let bad = r.shards.iter().find(|s| s.region == 2).unwrap();
        assert!(
            matches!(
                bad.health,
                ShardHealth::Degraded(DegradeReason::DeadlineMiss { .. })
            ),
            "{:?}",
            bad.health
        );
        assert_eq!(svc.metrics().deadline_misses, 1);
        // Recovery drops the warm factor: first solve after restart is cold.
        svc.clear_fault(2);
        let y = counters(&mut dep);
        let r = svc.run_epoch(&y).unwrap();
        let healed = r.shards.iter().find(|s| s.region == 2).unwrap();
        assert!(healed.health.is_healthy());
        assert!(
            healed.solve_path.is_some_and(|p| !p.is_warm()),
            "restarted worker must refactorize: {:?}",
            healed.solve_path
        );
    }

    #[test]
    fn counter_length_is_validated() {
        let (mut svc, _) = testbed(2);
        let err = svc.run_epoch(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, FocesError::CounterLengthMismatch { .. }));
    }

    #[test]
    fn epoch_lines_carry_per_shard_pool_metrics() {
        let (mut svc, mut dep) = testbed(4);
        let y = counters(&mut dep);
        svc.run_epoch(&y).unwrap();
        let line = svc.log_lines()[0].clone();
        for key in [
            "\"mode\":\"cluster\"",
            "\"shards\":[",
            "\"path\":",
            "\"queue_depth\":",
            "\"worker\":",
            "\"stolen\":",
            "\"row_coverage\":1",
            "\"steals\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
}
