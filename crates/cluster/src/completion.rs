//! Shard-complete triggers for continuous ingestion.
//!
//! The lockstep [`ClusterService`](crate::ClusterService) fires every
//! shard solve at the epoch barrier, after the *slowest* switch anywhere
//! has answered (or timed out). Event-driven ingestion (`foces-ingest`)
//! inverts that: counters arrive one switch at a time, and a shard's
//! solve should fire the moment **that shard's** members are all fresh —
//! while slower shards are still collecting. [`ShardCompletion`] is the
//! bookkeeping for that trigger: it maps switches to their shard, tracks
//! which members have reported since the shard last fired, and says
//! *exactly when* a shard crosses from incomplete to complete, so the
//! caller can fire one detection per completion without polling or
//! double-firing.

use foces_net::SwitchId;
use std::collections::HashMap;

/// Per-shard freshness tracker with edge-triggered completion.
///
/// A shard is *complete* when every member switch has reported at least
/// once since the shard's last [`reset`](ShardCompletion::reset) (or
/// since construction). [`record`](ShardCompletion::record) reports the
/// completion *edge* — it returns `Some(region)` only for the report
/// that makes the shard complete, never for earlier or later ones.
#[derive(Debug, Clone)]
pub struct ShardCompletion {
    /// Member switches per region, as given at construction.
    members: Vec<Vec<SwitchId>>,
    region_of: HashMap<SwitchId, usize>,
    fresh: Vec<Vec<bool>>,
    missing: Vec<usize>,
    /// Completions fired per region (monotone round counters).
    rounds: Vec<u64>,
}

impl ShardCompletion {
    /// Builds a tracker over `members[region] = switches of that shard`.
    ///
    /// Each switch must belong to exactly one region (the cluster
    /// partition guarantees this).
    pub fn new(members: Vec<Vec<SwitchId>>) -> Self {
        let mut region_of = HashMap::new();
        for (r, sws) in members.iter().enumerate() {
            for &s in sws {
                let prev = region_of.insert(s, r);
                assert!(prev.is_none(), "switch {s:?} in two regions");
            }
        }
        let fresh: Vec<Vec<bool>> = members.iter().map(|m| vec![false; m.len()]).collect();
        let missing = members.iter().map(Vec::len).collect();
        let rounds = vec![0; members.len()];
        ShardCompletion {
            members,
            region_of,
            fresh,
            missing,
            rounds,
        }
    }

    /// Number of shards tracked.
    pub fn shard_count(&self) -> usize {
        self.members.len()
    }

    /// The region owning `switch`, if any.
    pub fn region_of(&self, switch: SwitchId) -> Option<usize> {
        self.region_of.get(&switch).copied()
    }

    /// The member switches of `region`.
    pub fn members(&self, region: usize) -> &[SwitchId] {
        &self.members[region]
    }

    /// Completions fired so far for `region`.
    pub fn rounds(&self, region: usize) -> u64 {
        self.rounds[region]
    }

    /// Members of `region` still missing this round.
    pub fn missing_members(&self, region: usize) -> Vec<SwitchId> {
        self.members[region]
            .iter()
            .zip(&self.fresh[region])
            .filter(|&(_, &f)| !f)
            .map(|(&s, _)| s)
            .collect()
    }

    /// Records a fresh sample from `switch`.
    ///
    /// Returns `Some(region)` iff this report *completes* the switch's
    /// shard (the edge). Reports from unknown switches and duplicate
    /// reports within a round return `None`.
    pub fn record(&mut self, switch: SwitchId) -> Option<usize> {
        let r = *self.region_of.get(&switch)?;
        let i = self.members[r].iter().position(|&s| s == switch)?;
        if self.fresh[r][i] {
            return None;
        }
        self.fresh[r][i] = true;
        self.missing[r] -= 1;
        if self.missing[r] == 0 {
            self.rounds[r] += 1;
            Some(r)
        } else {
            None
        }
    }

    /// Opens the next collection round for `region`: every member must
    /// report again before the shard completes again. Callers invoke this
    /// right after consuming a completion edge.
    pub fn reset(&mut self, region: usize) {
        for f in &mut self.fresh[region] {
            *f = false;
        }
        self.missing[region] = self.members[region].len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sw(i: usize) -> SwitchId {
        SwitchId(i)
    }

    #[test]
    fn completion_is_edge_triggered_per_shard() {
        let mut c = ShardCompletion::new(vec![vec![sw(0), sw(1)], vec![sw(2)]]);
        assert_eq!(c.shard_count(), 2);
        assert_eq!(c.record(sw(0)), None, "half of shard 0");
        assert_eq!(c.record(sw(2)), Some(1), "shard 1 completes alone");
        assert_eq!(c.record(sw(1)), Some(0), "shard 0 completes second");
        assert_eq!(c.rounds(0), 1);
        assert_eq!(c.rounds(1), 1);
    }

    #[test]
    fn duplicates_and_strangers_never_fire() {
        let mut c = ShardCompletion::new(vec![vec![sw(0), sw(1)]]);
        assert_eq!(c.record(sw(0)), None);
        assert_eq!(c.record(sw(0)), None, "duplicate is not progress");
        assert_eq!(c.record(sw(9)), None, "unknown switch ignored");
        assert_eq!(c.missing_members(0), vec![sw(1)]);
        assert_eq!(c.record(sw(1)), Some(0));
        assert_eq!(c.record(sw(1)), None, "already complete: no re-fire");
    }

    #[test]
    fn reset_opens_a_new_round() {
        let mut c = ShardCompletion::new(vec![vec![sw(0), sw(1)]]);
        c.record(sw(0));
        assert_eq!(c.record(sw(1)), Some(0));
        c.reset(0);
        assert_eq!(c.missing_members(0).len(), 2);
        c.record(sw(1));
        assert_eq!(c.record(sw(0)), Some(0), "fires once per round");
        assert_eq!(c.rounds(0), 2);
    }

    #[test]
    fn region_lookup() {
        let c = ShardCompletion::new(vec![vec![sw(3)], vec![sw(5), sw(7)]]);
        assert_eq!(c.region_of(sw(5)), Some(1));
        assert_eq!(c.region_of(sw(3)), Some(0));
        assert_eq!(c.region_of(sw(4)), None);
        assert_eq!(c.members(1), &[sw(5), sw(7)]);
    }
}
