//! Cumulative counters for a cluster run, JSON-serializable with the same
//! hand-rolled helpers the runtime uses.

use foces_runtime::metrics::{json_f64, json_str};

/// Monotonic counters accumulated across [`run_epoch`] calls.
///
/// [`run_epoch`]: crate::ClusterService::run_epoch
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClusterMetrics {
    /// Epochs driven.
    pub epochs: u64,
    /// Shard solves attempted (healthy or not).
    pub shard_solves: u64,
    /// Shard solves that took the warm (factor-reusing) path.
    pub warm_solves: u64,
    /// Shard solves that ran cold.
    pub cold_solves: u64,
    /// Shard workers that panicked.
    pub shard_panics: u64,
    /// Shard solves that finished past their deadline.
    pub deadline_misses: u64,
    /// Shard solves that failed in the solver.
    pub solve_errors: u64,
    /// Epoch-shard pairs reported degraded (any reason).
    pub degraded_shard_epochs: u64,
    /// Tasks executed after a steal, across all epochs.
    pub steals: u64,
    /// Seeder stalls due to full deques (backpressure), across all epochs.
    pub backpressure_stalls: u64,
    /// Largest per-worker deque depth ever observed.
    pub max_queue_depth: u64,
    /// Epochs whose healthy shard residuals fed the suspicion merge.
    pub suspicion_epochs: u64,
    /// Epochs whose union verdict was anomalous.
    pub anomalous_epochs: u64,
    /// Alarms raised by the hysteresis machine.
    pub alarms_raised: u64,
    /// Alarms cleared.
    pub alarms_cleared: u64,
    /// Lowest row coverage seen in any epoch (1.0 when never degraded).
    pub worst_row_coverage: f64,
    /// WARN-severity findings from the pre-flight coverage analysis
    /// (absorption-prone switches, rank-deficient shards).
    pub coverage_warnings: u64,
}

impl ClusterMetrics {
    /// Fresh counters; `worst_row_coverage` starts at 1.0.
    pub fn new() -> Self {
        ClusterMetrics {
            worst_row_coverage: 1.0,
            ..ClusterMetrics::default()
        }
    }

    /// One-line JSON object of every counter.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let push = |k: &str, v: String, s: &mut String| {
            if s.len() > 1 {
                s.push(',');
            }
            s.push_str(&json_str(k));
            s.push(':');
            s.push_str(&v);
        };
        push("epochs", self.epochs.to_string(), &mut s);
        push("shard_solves", self.shard_solves.to_string(), &mut s);
        push("warm_solves", self.warm_solves.to_string(), &mut s);
        push("cold_solves", self.cold_solves.to_string(), &mut s);
        push("shard_panics", self.shard_panics.to_string(), &mut s);
        push("deadline_misses", self.deadline_misses.to_string(), &mut s);
        push("solve_errors", self.solve_errors.to_string(), &mut s);
        push(
            "degraded_shard_epochs",
            self.degraded_shard_epochs.to_string(),
            &mut s,
        );
        push("steals", self.steals.to_string(), &mut s);
        push(
            "backpressure_stalls",
            self.backpressure_stalls.to_string(),
            &mut s,
        );
        push("max_queue_depth", self.max_queue_depth.to_string(), &mut s);
        push(
            "suspicion_epochs",
            self.suspicion_epochs.to_string(),
            &mut s,
        );
        push(
            "anomalous_epochs",
            self.anomalous_epochs.to_string(),
            &mut s,
        );
        push("alarms_raised", self.alarms_raised.to_string(), &mut s);
        push("alarms_cleared", self.alarms_cleared.to_string(), &mut s);
        push(
            "worst_row_coverage",
            json_f64(self.worst_row_coverage),
            &mut s,
        );
        push(
            "coverage_warnings",
            self.coverage_warnings.to_string(),
            &mut s,
        );
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_has_every_counter_and_parses_flat() {
        let mut m = ClusterMetrics::new();
        m.epochs = 3;
        m.warm_solves = 11;
        m.worst_row_coverage = 0.75;
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "epochs",
            "shard_solves",
            "warm_solves",
            "cold_solves",
            "shard_panics",
            "deadline_misses",
            "solve_errors",
            "degraded_shard_epochs",
            "steals",
            "backpressure_stalls",
            "max_queue_depth",
            "suspicion_epochs",
            "anomalous_epochs",
            "alarms_raised",
            "alarms_cleared",
            "worst_row_coverage",
            "coverage_warnings",
        ] {
            assert!(j.contains(&format!("\"{key}\":")), "missing {key} in {j}");
        }
        assert!(j.contains("\"warm_solves\":11"));
        assert!(j.contains("\"worst_row_coverage\":0.75"));
    }

    #[test]
    fn fresh_metrics_report_full_coverage() {
        assert_eq!(ClusterMetrics::new().worst_row_coverage, 1.0);
    }
}
