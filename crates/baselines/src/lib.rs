//! Statistics-verification baselines FOCES is compared against (paper §VII).
//!
//! Two representative per-flow / per-switch methods, built on the same data
//! plane as FOCES so experiments can compare detection scope and overhead:
//!
//! * [`FadeMonitor`] — a FADE-style checker ("FADE: Detecting forwarding
//!   anomaly in software-defined networks", ICC 2016): installs **dedicated
//!   higher-priority per-flow counter rules** along a monitored flow's
//!   expected path and applies the single-flow conservation principle to
//!   their counters. Faithfully exhibits the two drawbacks the paper
//!   attributes to this family: flow-table overhead (one dedicated rule per
//!   monitored flow per hop) and limited detection scope (unmonitored flows
//!   are invisible).
//! * [`FlowMonChecker`] — a FlowMon-style checker (ACM SafeConfig 2015):
//!   needs **no dedicated rules**, checking per-switch conservation of port
//!   statistics (Σrx ≈ Σtx). Catches packet droppers, but is structurally
//!   blind to path deviations that preserve per-switch totals — the
//!   "smaller detection scope" the paper describes.
//!
//! # Example
//!
//! ```
//! use foces_baselines::FlowMonChecker;
//! use foces_controlplane::{provision, uniform_flows, RuleGranularity};
//! use foces_dataplane::LossModel;
//! use foces_net::generators::bcube;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let topo = bcube(1, 4);
//! let flows = uniform_flows(&topo, 240_000.0);
//! let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
//! dep.replay_traffic(&mut LossModel::none());
//! let checker = FlowMonChecker::new(0.05);
//! assert!(checker.check(&dep.dataplane).is_empty()); // healthy
//! # Ok(())
//! # }
//! ```

mod fade;
mod flowmon;

pub use fade::{FadeMonitor, FlowViolation};
pub use flowmon::{FlowMonChecker, SwitchViolation};
