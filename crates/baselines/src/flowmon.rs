use foces_dataplane::DataPlane;
use foces_net::SwitchId;
use std::fmt;

/// A per-switch conservation violation found by [`FlowMonChecker`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchViolation {
    /// The switch whose port statistics do not balance.
    pub switch: SwitchId,
    /// Total received volume (Σ over ports).
    pub rx_total: f64,
    /// Total transmitted volume (Σ over ports).
    pub tx_total: f64,
    /// `|rx − tx| / max(rx, 1)` — the relative imbalance compared against
    /// the checker's tolerance.
    pub imbalance: f64,
}

impl fmt::Display for SwitchViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "s{}: rx {} vs tx {} ({:.1}% imbalance)",
            self.switch.0,
            self.rx_total,
            self.tx_total,
            100.0 * self.imbalance
        )
    }
}

/// FlowMon-style per-port statistics checker: flags switches whose total
/// received and transmitted volumes diverge by more than a relative
/// tolerance.
///
/// No dedicated rules are needed, but the detection scope is per-switch
/// totals only — a deviation that re-routes (rather than drops) traffic
/// keeps every switch balanced and sails through (see the crate docs and
/// the `loop_free_deviation_is_invisible_at_the_culprit` test).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowMonChecker {
    tolerance: f64,
}

impl FlowMonChecker {
    /// Creates a checker with a relative imbalance tolerance (e.g. `0.05`
    /// to absorb up to 5 % link loss on the heaviest port).
    ///
    /// # Panics
    ///
    /// Panics if `tolerance` is negative.
    pub fn new(tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        FlowMonChecker { tolerance }
    }

    /// The configured tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// Checks every switch's port-statistics balance, returning violations
    /// (empty = no switch flagged).
    ///
    /// Hosts deliver and sink traffic, so a switch's host-facing ports are
    /// included in the totals: a last-hop switch receives on a fabric port
    /// and transmits on the host port, balancing naturally.
    pub fn check(&self, dp: &DataPlane) -> Vec<SwitchViolation> {
        let mut out = Vec::new();
        for s in dp.topology().switches() {
            let rx_total: f64 = dp.port_rx(s).iter().sum();
            let tx_total: f64 = dp.port_tx(s).iter().sum();
            if rx_total == 0.0 && tx_total == 0.0 {
                continue;
            }
            let imbalance = (rx_total - tx_total).abs() / rx_total.max(1.0);
            if imbalance > self.tolerance {
                out.push(SwitchViolation {
                    switch: s,
                    rx_total,
                    tx_total,
                    imbalance,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{inject_random_anomaly, Action, AnomalyKind, LossModel, RuleRef};
    use foces_net::generators::bcube;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn deployment() -> foces_controlplane::Deployment {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    #[test]
    fn healthy_network_balances() {
        let mut dep = deployment();
        dep.replay_traffic(&mut LossModel::none());
        assert!(FlowMonChecker::new(0.01).check(&dep.dataplane).is_empty());
    }

    #[test]
    fn loss_within_tolerance_not_flagged() {
        let mut dep = deployment();
        let mut loss = LossModel::sampled(0.02, 5);
        dep.replay_traffic(&mut loss);
        // 2% per-link loss: each switch's imbalance ≈ 2%, below 5%.
        assert!(FlowMonChecker::new(0.05).check(&dep.dataplane).is_empty());
    }

    #[test]
    fn dropper_is_caught_and_localized() {
        // With a tight tolerance (lossless run), a dropping switch is the
        // one switch whose totals do not balance.
        let mut dep = deployment();
        let mut rng = StdRng::seed_from_u64(2);
        let applied =
            inject_random_anomaly(&mut dep.dataplane, AnomalyKind::EarlyDrop, &mut rng, &[])
                .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let violations = FlowMonChecker::new(0.001).check(&dep.dataplane);
        assert!(!violations.is_empty());
        assert!(
            violations.iter().any(|v| v.switch == applied.rule.switch),
            "the dropping switch must be among {violations:?}"
        );
    }

    #[test]
    fn single_flow_drop_hides_under_loss_tolerance() {
        // The coarseness drawback: one dropped flow is a ~1.5% imbalance on
        // a busy BCube switch, indistinguishable from 5% link loss — so a
        // loss-calibrated tolerance misses it where FOCES would not.
        let mut dep = deployment();
        let mut rng = StdRng::seed_from_u64(2);
        inject_random_anomaly(&mut dep.dataplane, AnomalyKind::EarlyDrop, &mut rng, &[]).unwrap();
        dep.replay_traffic(&mut LossModel::none());
        assert!(FlowMonChecker::new(0.05).check(&dep.dataplane).is_empty());
    }

    #[test]
    fn loop_free_deviation_is_invisible_at_the_culprit() {
        // The structural blind spot: a deviating switch transmits everything
        // it receives, so ITS port totals balance; the deficit appears only
        // downstream (table-miss drop at the redirection target). Build the
        // deviation manually so no forwarding loop can blur the picture:
        // redirect flow 0's first hop toward a switch with no rule for it.
        let mut dep = deployment();
        let culprit = dep.expected_paths[0][0];
        let intended_next = dep.expected_paths[0].get(1).copied();
        let header = foces_dataplane::pair_header(dep.flows[0].src, dep.flows[0].dst);
        let (idx, _) = dep.dataplane.table(culprit).lookup(header).unwrap();
        // Find an off-path neighbor switch that has NO rule matching the
        // flow (per-pair granularity: only path switches have one).
        let target_port = dep
            .view
            .topology()
            .adj(foces_net::Node::Switch(culprit))
            .iter()
            .find_map(|a| match a.neighbor {
                foces_net::Node::Switch(s)
                    if Some(s) != intended_next
                        && dep.dataplane.table(s).lookup(header).is_none() =>
                {
                    Some(a.local_port)
                }
                _ => None,
            })
            .expect("bcube first hop has an off-path neighbor");
        dep.dataplane
            .modify_rule_action(
                RuleRef {
                    switch: culprit,
                    index: idx,
                },
                Action::Forward(target_port),
            )
            .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let violations = FlowMonChecker::new(0.001).check(&dep.dataplane);
        assert!(
            violations.iter().all(|v| v.switch != culprit),
            "deviating switch must balance: {violations:?}"
        );
        // The redirection target (where the miss-drop happens) does flag.
        assert!(!violations.is_empty());
    }

    #[test]
    fn display_format() {
        let v = SwitchViolation {
            switch: SwitchId(3),
            rx_total: 100.0,
            tx_total: 50.0,
            imbalance: 0.5,
        };
        assert!(v.to_string().contains("s3"));
        assert!(v.to_string().contains("50.0%"));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_tolerance_rejected() {
        FlowMonChecker::new(-0.1);
    }
}
