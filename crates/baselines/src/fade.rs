use foces_controlplane::Deployment;
use foces_dataplane::{pair_header, pair_match, DataPlane, Rule, RuleRef};
use foces_net::SwitchId;
use std::fmt;

/// Priority of FADE's dedicated counter rules: above every forwarding rule
/// the control plane installs (5 and 10), so the dedicated rules capture
/// exactly the monitored flow while forwarding it identically.
const FADE_PRIORITY: u16 = 20;

/// A single-flow conservation violation found by [`FadeMonitor::check`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlowViolation {
    /// Index of the violated flow in the deployment's flow list.
    pub flow_index: usize,
    /// The dedicated-rule counters along the expected path, in path order.
    pub counters: Vec<f64>,
    /// The largest relative hop-to-hop discrepancy observed.
    pub max_discrepancy: f64,
}

impl fmt::Display for FlowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow #{}: counters {:?} ({:.1}% discrepancy)",
            self.flow_index,
            self.counters,
            100.0 * self.max_discrepancy
        )
    }
}

#[derive(Debug, Clone)]
struct MonitoredFlow {
    flow_index: usize,
    dedicated_rules: Vec<RuleRef>,
}

/// FADE-style per-flow anomaly detector: dedicated counter rules along each
/// monitored flow's path, checked pairwise for flow conservation.
///
/// Exhibits the costs the paper attributes to per-flow methods — call
/// [`FadeMonitor::rule_overhead`] for the flow-table space consumed, and
/// note that [`FadeMonitor::check`] can only speak about the flows it
/// monitors.
///
/// # Example
///
/// ```
/// use foces_baselines::FadeMonitor;
/// use foces_controlplane::{provision, uniform_flows, RuleGranularity};
/// use foces_dataplane::LossModel;
/// use foces_net::generators::bcube;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let topo = bcube(1, 4);
/// let flows = uniform_flows(&topo, 240_000.0);
/// let mut dep = provision(topo, &flows, RuleGranularity::PerFlowPair)?;
/// let monitor = FadeMonitor::install(&mut dep, &[0, 1, 2], 0.05);
/// assert!(monitor.rule_overhead() >= 3); // ≥ 1 dedicated rule per hop
/// dep.replay_traffic(&mut LossModel::none());
/// assert!(monitor.check(&dep.dataplane).is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FadeMonitor {
    monitored: Vec<MonitoredFlow>,
    tolerance: f64,
}

impl FadeMonitor {
    /// Installs dedicated counter rules for the given flow indices (into
    /// `dep.flows`) and returns the monitor. Install **before** any anomaly
    /// is injected — dedicated rules are part of the trusted configuration.
    ///
    /// Each monitored flow gets one exact-match rule per switch on its
    /// expected path, forwarding exactly as the underlying rule would.
    ///
    /// # Panics
    ///
    /// Panics if a flow index is out of range or a path switch has no rule
    /// matching the flow (cannot happen for flows provisioned by
    /// [`foces_controlplane::provision`]).
    pub fn install(dep: &mut Deployment, flow_indices: &[usize], tolerance: f64) -> Self {
        assert!(tolerance >= 0.0, "tolerance must be non-negative");
        let mut monitored = Vec::with_capacity(flow_indices.len());
        for &flow_index in flow_indices {
            let spec = dep.flows[flow_index];
            let path = dep.expected_paths[flow_index].clone();
            let header = pair_header(spec.src, spec.dst);
            let mut dedicated_rules = Vec::with_capacity(path.len());
            for &switch in &path {
                let (_, base_rule) =
                    dep.dataplane
                        .table(switch)
                        .lookup(header)
                        .unwrap_or_else(|| {
                            panic!("no rule for monitored flow #{flow_index} at s{}", switch.0)
                        });
                let action = base_rule.action();
                let r = dep.dataplane.install(
                    switch,
                    Rule::new(pair_match(spec.src, spec.dst), FADE_PRIORITY, action),
                );
                dedicated_rules.push(r);
            }
            monitored.push(MonitoredFlow {
                flow_index,
                dedicated_rules,
            });
        }
        FadeMonitor {
            monitored,
            tolerance,
        }
    }

    /// Total dedicated rules installed — the flow-table overhead of this
    /// baseline (FOCES's is zero).
    pub fn rule_overhead(&self) -> usize {
        self.monitored.iter().map(|m| m.dedicated_rules.len()).sum()
    }

    /// Number of monitored flows.
    pub fn monitored_count(&self) -> usize {
        self.monitored.len()
    }

    /// Whether any monitored flow's dedicated rules sit on `switch` — the
    /// detection-scope query: an anomaly at an uncovered switch is
    /// invisible to this monitor.
    pub fn covers_switch(&self, switch: SwitchId) -> bool {
        self.monitored
            .iter()
            .any(|m| m.dedicated_rules.iter().any(|r| r.switch == switch))
    }

    /// Checks flow conservation along every monitored flow: flags a flow
    /// when some consecutive pair of dedicated counters differs by more
    /// than the relative tolerance.
    pub fn check(&self, dp: &DataPlane) -> Vec<FlowViolation> {
        let mut out = Vec::new();
        for m in &self.monitored {
            let counters: Vec<f64> = m
                .dedicated_rules
                .iter()
                .map(|r| dp.counter(r.switch, r.index))
                .collect();
            let mut max_discrepancy = 0.0_f64;
            for w in counters.windows(2) {
                let d = (w[0] - w[1]).abs() / w[0].max(1.0);
                max_discrepancy = max_discrepancy.max(d);
            }
            if max_discrepancy > self.tolerance {
                out.push(FlowViolation {
                    flow_index: m.flow_index,
                    counters,
                    max_discrepancy,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    use foces_dataplane::{Action, LossModel};
    use foces_net::generators::bcube;
    use foces_net::Port;

    fn deployment() -> Deployment {
        let topo = bcube(1, 4);
        let flows = uniform_flows(&topo, 240_000.0);
        provision(topo, &flows, RuleGranularity::PerFlowPair).unwrap()
    }

    #[test]
    fn healthy_monitored_flows_pass() {
        let mut dep = deployment();
        let all: Vec<usize> = (0..dep.flows.len()).collect();
        let monitor = FadeMonitor::install(&mut dep, &all, 0.02);
        dep.replay_traffic(&mut LossModel::none());
        assert!(monitor.check(&dep.dataplane).is_empty());
        assert_eq!(monitor.monitored_count(), 240);
    }

    #[test]
    fn overhead_is_one_rule_per_hop() {
        let mut dep = deployment();
        let monitor = FadeMonitor::install(&mut dep, &[0], 0.02);
        assert_eq!(
            monitor.rule_overhead(),
            dep.expected_paths[0].len(),
            "one dedicated rule per path switch"
        );
    }

    #[test]
    fn monitored_deviation_is_caught() {
        let mut dep = deployment();
        let all: Vec<usize> = (0..dep.flows.len()).collect();
        let monitor = FadeMonitor::install(&mut dep, &all, 0.02);
        // Compromise the first hop of flow 0 by editing its dedicated rule
        // (the highest-priority matching rule) to drop.
        let first_hop = dep.expected_paths[0][0];
        let header = pair_header(dep.flows[0].src, dep.flows[0].dst);
        let (idx, _) = dep.dataplane.table(first_hop).lookup(header).unwrap();
        dep.dataplane
            .modify_rule_action(
                RuleRef {
                    switch: first_hop,
                    index: idx,
                },
                Action::Drop,
            )
            .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        let violations = monitor.check(&dep.dataplane);
        assert!(
            violations.iter().any(|v| v.flow_index == 0),
            "{violations:?}"
        );
    }

    #[test]
    fn unmonitored_anomaly_is_missed() {
        // The limited-detection-scope drawback: monitor only flow 0, break
        // a switch not on flow 0's path — FADE sees nothing.
        let mut dep = deployment();
        let monitor = FadeMonitor::install(&mut dep, &[0], 0.02);
        let covered = dep.expected_paths[0].clone();
        let victim_flow = (0..dep.flows.len())
            .find(|&i| dep.expected_paths[i].iter().all(|s| !covered.contains(s)))
            .expect("bcube has disjoint paths");
        let victim_switch = dep.expected_paths[victim_flow][0];
        assert!(!monitor.covers_switch(victim_switch));
        let header = pair_header(dep.flows[victim_flow].src, dep.flows[victim_flow].dst);
        let (idx, _) = dep.dataplane.table(victim_switch).lookup(header).unwrap();
        dep.dataplane
            .modify_rule_action(
                RuleRef {
                    switch: victim_switch,
                    index: idx,
                },
                Action::Drop,
            )
            .unwrap();
        dep.replay_traffic(&mut LossModel::none());
        assert!(
            monitor.check(&dep.dataplane).is_empty(),
            "FADE must miss anomalies outside its monitored set"
        );
    }

    #[test]
    fn loss_below_tolerance_not_flagged() {
        let mut dep = deployment();
        let all: Vec<usize> = (0..dep.flows.len()).collect();
        let monitor = FadeMonitor::install(&mut dep, &all, 0.06);
        let mut loss = LossModel::sampled(0.02, 4);
        dep.replay_traffic(&mut loss);
        let violations = monitor.check(&dep.dataplane);
        assert!(
            violations.len() < dep.flows.len() / 20,
            "2% loss under a 6% tolerance should rarely flag: {} flagged",
            violations.len()
        );
    }

    #[test]
    fn dedicated_rules_preserve_forwarding() {
        let mut dep = deployment();
        let all: Vec<usize> = (0..dep.flows.len()).collect();
        let _monitor = FadeMonitor::install(&mut dep, &all, 0.02);
        let flows = dep.flows.clone();
        for f in &flows {
            let rep = dep.dataplane.inject(
                f.src,
                pair_header(f.src, f.dst),
                f.rate,
                &mut LossModel::none(),
            );
            assert_eq!(rep.delivered_to, Some(f.dst));
        }
    }

    #[test]
    fn covers_switch_reflects_paths() {
        let mut dep = deployment();
        let monitor = FadeMonitor::install(&mut dep, &[0], 0.02);
        for s in &dep.expected_paths[0] {
            assert!(monitor.covers_switch(*s));
        }
        assert!(
            !monitor.covers_switch(
                SwitchId(9999).min(SwitchId(dep.view.topology().switch_count() - 1))
            ) || dep.expected_paths[0].contains(&SwitchId(dep.view.topology().switch_count() - 1))
        );
    }

    #[test]
    fn violation_display() {
        let v = FlowViolation {
            flow_index: 7,
            counters: vec![10.0, 2.0],
            max_discrepancy: 0.8,
        };
        assert!(v.to_string().contains("#7"));
        assert!(v.to_string().contains("80.0%"));
        let _ = Port(0);
    }
}
