//! A minimal argument parser: positionals plus `--key value` /
//! `--key=value` options and `--flag` booleans. Hand-rolled to keep the
//! dependency set at the approved offline list (no clap).

use std::collections::HashMap;
use std::fmt;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positionals: Vec<String>,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// An argument error (unknown option, missing value, bad number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments. `value_opts` lists the `--key` options that
    /// take a value (either as the next argument or inline as
    /// `--key=value`); any other `--name` is treated as a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when a value option is last with no value, or
    /// when `=value` is attached to an option that takes none.
    pub fn parse(raw: &[String], value_opts: &[&str]) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if let Some((key, value)) = name.split_once('=') {
                    if !value_opts.contains(&key) {
                        return Err(ArgError(format!("--{key} does not take a value")));
                    }
                    out.options.insert(key.to_string(), value.to_string());
                } else if value_opts.contains(&name) {
                    let v = it
                        .next()
                        .ok_or_else(|| ArgError(format!("--{name} needs a value")))?;
                    out.options.insert(name.to_string(), v.clone());
                } else {
                    out.flags.push(name.to_string());
                }
            } else {
                out.positionals.push(a.clone());
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Number of positionals.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// Whether a boolean `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A `--key value` option as a string.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn opt(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// A numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] if present but unparsable.
    pub fn num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ArgError(format!("--{name}: cannot parse {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn positionals_options_flags() {
        let a = Args::parse(&raw("detect net.foces --loss 0.05 --sliced"), &["loss"]).unwrap();
        assert_eq!(a.positional(0), Some("detect"));
        assert_eq!(a.positional(1), Some("net.foces"));
        assert_eq!(a.positional_count(), 2);
        assert_eq!(a.opt("loss"), Some("0.05"));
        assert!(a.flag("sliced"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn numeric_parsing_and_defaults() {
        let a = Args::parse(&raw("--seed 42"), &["seed"]).unwrap();
        assert_eq!(a.num("seed", 0u64).unwrap(), 42);
        assert_eq!(a.num("rounds", 7usize).unwrap(), 7);
        let bad = Args::parse(&raw("--seed abc"), &["seed"]).unwrap();
        assert!(bad.num("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(&raw("--loss"), &["loss"]).is_err());
    }

    #[test]
    fn equals_form_parses_values() {
        let a = Args::parse(
            &raw("run net.foces --loss=0.05 --epochs=30 --sliced"),
            &["loss", "epochs"],
        )
        .unwrap();
        assert_eq!(a.opt("loss"), Some("0.05"));
        assert_eq!(a.num("epochs", 0u64).unwrap(), 30);
        assert!(a.flag("sliced"));
        assert_eq!(a.positional(0), Some("run"));
    }

    #[test]
    fn equals_form_keeps_value_verbatim() {
        // Only the first '=' splits; empty values are legal.
        let a = Args::parse(&raw("--expr=a=b --empty="), &["expr", "empty"]).unwrap();
        assert_eq!(a.opt("expr"), Some("a=b"));
        assert_eq!(a.opt("empty"), Some(""));
    }

    #[test]
    fn equals_on_a_flag_is_an_error() {
        let err = Args::parse(&raw("--sliced=yes"), &["loss"]).unwrap_err();
        assert!(err.0.contains("--sliced"), "{err}");
    }

    #[test]
    fn trailing_value_option_is_an_error_in_both_forms() {
        // `--loss` with nothing after it must error; `--loss=`
        // (explicit empty) must not.
        assert!(Args::parse(&raw("detect net.foces --loss"), &["loss"]).is_err());
        let ok = Args::parse(&raw("detect net.foces --loss="), &["loss"]).unwrap();
        assert_eq!(ok.opt("loss"), Some(""));
    }
}
