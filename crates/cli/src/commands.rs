//! CLI command implementations. Each command is a pure function from
//! parsed arguments to a report string, so the test suite can drive them
//! without process spawning.

use crate::args::Args;
use foces::{
    analyze_cluster_coverage, analyze_coverage, audit_deviations, harden, localize, AlarmState,
    CoverageConfig, CoverageReport, Detector, Fcm, Monitor, MonitorConfig, ShardedFcm, SlicedFcm,
};
use foces_channel::{FakeStrategy, FaultProfile};
use foces_controlplane::scenario::Scenario;
use foces_controlplane::Deployment;
use foces_dataplane::{inject_random_anomaly, AnomalyKind, CollectionNoise, LossModel};
use foces_ingest::{CadenceConfig, LinkSpec, StreamAction, StreamConfig, StreamDriver};
use foces_runtime::{
    ByzantineConfig, DetectionMode, EventLog, FaultScenario, RuntimeConfig, ScenarioDriver,
};
use foces_sched::{run_interleave, InterleaveConfig, ScheduleSet};
use foces_verify::{verify_view, Finding, FindingKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;

/// A command error rendered to stderr by `main`.
pub type CmdError = Box<dyn std::error::Error>;

/// A command's rendered report plus the process exit code `main` should
/// propagate. `0` is a clean run; `foces run` exits `2` when the service
/// ends with an unresolved alarm, `foces audit` exits `3` when static
/// verification finds rule-table violations, `foces interleave` exits `2`
/// when any enumerated schedule violates a soundness oracle, and
/// `--coverage-strict` (or `foces coverage --strict`) exits `4` when the
/// pre-flight coverage analyzer has WARN findings, so scripts and CI can
/// gate on each.
#[derive(Debug)]
pub struct CmdOutput {
    /// Human-readable report for stdout.
    pub report: String,
    /// Process exit code (0 = clean).
    pub exit_code: i32,
}

impl CmdOutput {
    fn clean(report: String) -> Self {
        CmdOutput {
            report,
            exit_code: 0,
        }
    }
}

/// Usage text.
pub const USAGE: &str = "\
foces — network-wide forwarding anomaly detection (FOCES, ICDCS 2018)

USAGE:
  foces topo     <scenario>                          topology & FCM statistics
  foces detect   <scenario> [--loss P] [--modify K] [--seed N] [--threshold T] [--sliced]
  foces monitor  <scenario> [--rounds N] [--attack-at R] [--repair-at R] [--loss P] [--seed N]
  foces run      <scenario> [--epochs N] [--loss P] [--drop P] [--latency MS] [--jitter MS]
                 [--reorder P] [--offline S --offline-from E --offline-to E]
                 [--attack-at E] [--repair-at E] [--seed N] [--threshold T]
                 [--churn PERIOD] [--churn-seed N] [--alarm-window N]
                 [--churn-suppress N] [--churn-penalty N]
                 [--poll-deadline-ms MS] [--attempt-timeout-ms MS] [--max-attempts N]
                 [--workers N] [--oracle-cap N] [--log FILE.jsonl]
                 [--backend dense|sparse|auto]
                 [--liars N --fake-at E [--confess-at E]] [--fake-strategy S]
                 [--fake-magnitude L] [--liar-seed N]
                 fault-tolerant online detection over an unreliable channel;
                 exits 2 if the run ends with an unresolved (Byzantine) alarm
  foces stream   <scenario> [--duration-ms MS] [--regions K] [--poll-ms MS]
                 [--adaptive [--poll-max-ms MS]] [--link-delay MS] [--bandwidth BPM]
                 [--queue-capacity N] [--slow-region R --slow-ms MS]
                 [--latency MS] [--jitter MS] [--drop P] [--reorder P]
                 [--attempt-timeout-ms MS] [--max-attempts N]
                 [--attack-at MS] [--repair-at MS] [--churn-at MS] [--settle-ms MS]
                 [--liars N --fake-at MS [--confess-at MS]] [--fake-strategy S]
                 [--fake-magnitude L] [--liar-seed N]
                 [--seed N] [--churn-seed N] [--anomaly-seed N] [--log FILE.jsonl]
                 [--backend dense|sparse|auto]
                 event-driven continuous ingestion: per-link channel models,
                 adaptive poll cadence, per-shard detection the moment a
                 shard's counters are complete; exits 2 if the stream ends
                 with an unresolved (Byzantine) alarm
  foces redteam  [scenario] [--epochs N] [--fake-at E] [--liars-max K]
                 [--strategies naive,scale,replay,path,coverup]
                 [--magnitudes L1,L2,...] [--threshold T] [--seed N]
                 [--liar-seed N] [--out FILE.json]
                 adversarial sweep (strategy x liar count x fake magnitude):
                 detection latency, localization precision/recall, and the
                 evasion-cost curve, written to BENCH_redteam.json
  foces scale    [--full] [--out FILE.json] [--seed N] [--threshold T]
                 [--ceiling K] [--flows-max N]
                 sparse-engine scaling sweep over FatTree all-pairs systems,
                 written to BENCH_scale.json: FatTree(8) dense-vs-sparse
                 parity (verdicts and anomaly indices to 1e-9) with the
                 cold-solve speedup, FatTree(12) sparse-only with the dense
                 backend's typed allocation refusal asserted, and with
                 --full the FatTree(16)-class headline cell (>=1e5 flows,
                 verdict-correct healthy+anomalous sparse rounds); exits 2
                 on any parity or verdict failure
  foces cluster  <scenario> [--epochs N] [--shards K] [--partition per-switch|edge-cut]
                 [--shard-deadline-ms MS] [--loss P] [--attack-at E] [--repair-at E]
                 [--kill-shard R --kill-at E [--heal-at E]] [--seed N] [--threshold T]
                 [--workers N] [--queue-capacity N] [--log FILE.jsonl]
                 [--backend dense|sparse|auto]
                 sharded detection: k region shards on a work-stealing pool,
                 per-shard warm solvers, fault isolation; exits 2 if the run
                 ends with an unresolved alarm
  foces interleave <scenario> [--updates N] [--segments K] [--schedules N --seed S]
                 [--uniform] [--update-at E] [--epochs-after N] [--shards K]
                 [--threshold T] [--no-dropper] [--no-fanout] [--json]
                 schedule-enumeration conformance: N concurrent reroutes whose
                 per-switch commits race counter collection (and the shard
                 fan-out); exhaustive by default with DPOR-style trace pruning,
                 bounded deterministic sampling via --schedules/--seed; exits 2
                 on any oracle violation, with the minimal failing schedule
  foces audit    <scenario> [--cap N] [--json]       static rule-table verification
                 (loops, blackholes, shadowed rules, FCM consistency, stale
                 rules) plus detectability blind spots; exits 3 on static
                 violations
  foces coverage <scenario> [--shards K] [--json] [--strict]
                 static detectability & localization-coverage analysis, no
                 epochs run: row-share/absorption WARNs with certificates,
                 leave-one-out localizability classes, degradation margin,
                 per-shard boundary rank; exits 4 with --strict on any WARN
                 (`run`/`cluster`/`stream` accept --coverage-strict for the
                 same pre-flight refusal)
  foces harden   <scenario> [--budget N] [--cap N]   close blind spots with extra rules
  foces scenario <fattree|bcube|dcell|stanford|linear|ring> print a template scenario
  foces help

Options accept both `--key value` and `--key=value`.
Scenario files: see `foces scenario ring` for the format.";

fn load(args: &Args) -> Result<(Scenario, Deployment), CmdError> {
    let path = args.positional(1).ok_or("missing scenario file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let scenario = Scenario::parse(&text)?;
    let dep = scenario.provision()?;
    Ok((scenario, dep))
}

/// Renders the `--coverage-strict` refusal (exit `4`) when the pre-flight
/// coverage analysis of a run/cluster/stream service carries WARN
/// findings; `None` means the gate passes and the run may proceed.
fn coverage_refusal(coverage: Option<&CoverageReport>, what: &str) -> Option<CmdOutput> {
    let cov = coverage?;
    if cov.is_clean() {
        return None;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{}", cov.summary());
    for f in cov.findings.iter().filter(|f| f.severity.is_warn()) {
        let _ = writeln!(out, "  WARN {}", f.detail);
        if let Some(cert) = &f.certificate {
            let _ = writeln!(out, "    certificate: {cert}");
        }
    }
    let _ = writeln!(
        out,
        "exit 4: --coverage-strict refused the {what}: {} pre-flight coverage WARN finding(s)",
        cov.warn_count()
    );
    Some(CmdOutput {
        report: out,
        exit_code: 4,
    })
}

/// Replays one collection interval and returns counters (loss + default
/// collection noise when `loss > 0`, exact otherwise).
fn one_round(dep: &mut Deployment, loss: f64, seed: u64) -> Vec<f64> {
    dep.dataplane.reset_counters();
    let mut lm = if loss > 0.0 {
        LossModel::sampled(loss, seed)
    } else {
        LossModel::none()
    };
    dep.replay_traffic(&mut lm);
    if loss > 0.0 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        dep.dataplane
            .collect_counters_realistic(&CollectionNoise::default(), &mut rng)
    } else {
        dep.dataplane.collect_counters()
    }
}

/// `foces topo <scenario>`.
pub fn topo(args: &Args) -> Result<String, CmdError> {
    let (scenario, dep) = load(args)?;
    let topo = scenario.topology();
    let fcm = Fcm::from_view(&dep.view);
    let sliced = SlicedFcm::from_fcm(&fcm);
    let mut out = String::new();
    writeln!(out, "switches:      {}", topo.switch_count())?;
    writeln!(out, "hosts:         {}", topo.host_count())?;
    writeln!(out, "links:         {}", topo.link_count())?;
    writeln!(out, "flows:         {}", dep.flows.len())?;
    writeln!(out, "rules:         {}", dep.view.rule_count())?;
    writeln!(out, "granularity:   {:?}", dep.granularity)?;
    writeln!(out, "fcm:           {fcm}")?;
    writeln!(
        out,
        "fcm columns:   {} distinct of {}",
        fcm.unique_column_basis().len(),
        fcm.flow_count()
    )?;
    writeln!(out, "slices:        {}", sliced.slice_count())?;
    Ok(out)
}

/// `foces detect <scenario> ...`.
pub fn detect(args: &Args) -> Result<String, CmdError> {
    let (_, mut dep) = load(args)?;
    let loss: f64 = args.num("loss", 0.0)?;
    let modify: usize = args.num("modify", 0)?;
    let seed: u64 = args.num("seed", 1)?;
    let threshold: f64 = args.num("threshold", foces::DEFAULT_THRESHOLD)?;
    let fcm = Fcm::from_view(&dep.view);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    for _ in 0..modify {
        if let Some(a) = inject_random_anomaly(
            &mut dep.dataplane,
            AnomalyKind::PathDeviation,
            &mut rng,
            &[],
        ) {
            writeln!(
                out,
                "injected: {} rewritten {} -> {}",
                a.rule, a.original_action, a.modified_action
            )?;
        }
    }
    let counters = one_round(&mut dep, loss, seed);
    let detector = Detector::with_threshold(threshold);
    let verdict = detector.detect(&fcm, &counters)?;
    writeln!(out, "verdict: {verdict}")?;
    if let Some(worst) = verdict.worst_rule {
        writeln!(out, "largest residual at rule {worst}")?;
    }
    if args.flag("sliced") {
        let sliced = SlicedFcm::from_fcm(&fcm);
        let sv = sliced.detect(&detector, &counters)?;
        writeln!(out, "sliced:  {sv}")?;
        for s in localize(&sv).iter().take(3) {
            writeln!(out, "  suspect {s}")?;
        }
    }
    Ok(out)
}

/// `foces monitor <scenario> ...`.
pub fn monitor(args: &Args) -> Result<String, CmdError> {
    let (_, mut dep) = load(args)?;
    let rounds: u64 = args.num("rounds", 24)?;
    let attack_at: u64 = args.num("attack-at", rounds / 3)?;
    let repair_at: u64 = args.num("repair-at", 2 * rounds / 3)?;
    let loss: f64 = args.num("loss", 0.02)?;
    let seed: u64 = args.num("seed", 7)?;
    let fcm = Fcm::from_view(&dep.view);
    let mut mon = Monitor::new(fcm, MonitorConfig::default());
    let mut rng = StdRng::seed_from_u64(seed);
    let mut applied = None;
    let mut out = String::new();
    for round in 0..rounds {
        if round == attack_at {
            applied = inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            );
            if let Some(a) = &applied {
                writeln!(out, "round {round:>3}: [attack on s{}]", a.rule.switch.0)?;
            }
        }
        if round == repair_at {
            if let Some(a) = applied.take() {
                a.revert(&mut dep.dataplane)?;
                writeln!(out, "round {round:>3}: [repaired]")?;
            }
        }
        let counters = one_round(&mut dep, loss, seed.wrapping_add(round));
        let report = mon.ingest(&counters)?;
        if report.alarm_raised {
            let suspects: Vec<String> = report
                .suspects
                .iter()
                .take(3)
                .map(|s| format!("s{}", s.switch.0))
                .collect();
            writeln!(
                out,
                "round {round:>3}: ALARM (AI {:.2}) suspects: {}",
                report.verdict.anomaly_index.min(1e6),
                suspects.join(", ")
            )?;
        } else if report.alarm_cleared {
            writeln!(out, "round {round:>3}: alarm cleared")?;
        }
    }
    writeln!(out, "final state: {}", mon.state())?;
    if mon.state() != AlarmState::Normal {
        writeln!(out, "warning: network still suspicious at end of run")?;
    }
    Ok(out)
}

/// `foces run <scenario> ...` — the fault-tolerant online service.
pub fn run_service(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, dep) = load(args)?;
    let epochs: u64 = args.num("epochs", 30)?;
    let loss: f64 = args.num("loss", 0.02)?;
    let drop_prob: f64 = args.num("drop", 0.0)?;
    let latency_ms: f64 = args.num("latency", 5.0)?;
    let jitter_ms: f64 = args.num("jitter", 0.0)?;
    let reorder_prob: f64 = args.num("reorder", 0.0)?;
    let seed: u64 = args.num("seed", 7)?;
    let threshold: f64 = args.num("threshold", foces::DEFAULT_THRESHOLD)?;
    let oracle_cap: usize = args.num("oracle-cap", 256)?;
    let churn_raw: u64 = args.num("churn", 0)?;
    let churn_period = (churn_raw > 0).then_some(churn_raw);
    let churn_seed: u64 = args.num("churn-seed", 7)?;

    let offline = match args.opt("offline") {
        Some(_) => {
            let s: usize = args.num("offline", 0)?;
            let from: u64 = args.num("offline-from", 0)?;
            let to: u64 = args.num("offline-to", epochs)?;
            Some((foces_net::SwitchId(s), from, to))
        }
        None => None,
    };
    let anomaly_window = match args.opt("attack-at") {
        Some(_) => {
            let at: u64 = args.num("attack-at", 0)?;
            let until: u64 = args.num("repair-at", epochs)?;
            Some((at, until))
        }
        None => None,
    };
    let liars: usize = args.num("liars", 0)?;
    let fake_strategy: FakeStrategy = args.num("fake-strategy", FakeStrategy::Naive)?;
    let fake_magnitude: f64 = args.num("fake-magnitude", 1.0)?;
    let liar_seed: u64 = args.num("liar-seed", 11)?;
    let fake_window = match args.opt("fake-at") {
        Some(_) => {
            let at: u64 = args.num("fake-at", 0)?;
            let until: u64 = args.num("confess-at", epochs)?;
            Some((at, until))
        }
        None => None,
    };

    let scenario = FaultScenario {
        epochs,
        loss,
        drop_prob,
        latency_ms,
        jitter_ms,
        reorder_prob,
        offline,
        anomaly_window,
        anomaly_kind: AnomalyKind::PathDeviation,
        seed,
        anomaly_seed: seed,
        churn_period,
        churn_seed,
        liars,
        fake_strategy,
        fake_window,
        fake_magnitude,
        liar_seed,
    };
    let mut config = RuntimeConfig {
        threshold,
        oracle_cap,
        byzantine: ByzantineConfig {
            enabled: liars > 0,
            ..ByzantineConfig::default()
        },
        ..RuntimeConfig::default()
    };
    config.backend = args.num("backend", config.backend)?;
    config.alarm_window = args.num("alarm-window", config.alarm_window)?;
    config.churn_suppress = args.num("churn-suppress", config.churn_suppress)?;
    config.churn_penalty = args.num("churn-penalty", config.churn_penalty)?;
    config.policy.deadline_ms = args.num("poll-deadline-ms", config.policy.deadline_ms)?;
    config.policy.attempt_timeout_ms =
        args.num("attempt-timeout-ms", config.policy.attempt_timeout_ms)?;
    config.policy.max_attempts = args.num("max-attempts", config.policy.max_attempts)?;
    if let Some(w) = args.opt("workers") {
        config.workers = w
            .parse()
            .map_err(|_| format!("--workers: cannot parse {w:?}"))?;
    }

    let mut driver = ScenarioDriver::new(dep, scenario, config);
    if let Some(path) = args.opt("log") {
        let log = EventLog::to_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open {path}: {e}"))?;
        driver.service_mut().set_event_log(log);
    }
    if args.flag("coverage-strict") {
        if let Some(refusal) = coverage_refusal(driver.service().coverage(), "run") {
            return Ok(refusal);
        }
    }

    let mut out = String::new();
    writeln!(
        out,
        "oracle: full-system coverage {:.1}% over {} audited deviations",
        100.0 * driver.service().pipeline().full_coverage(),
        driver.service().pipeline().candidate_count()
    )?;
    let mut liars_active = false;
    for _ in 0..epochs {
        let epoch = driver.service().epochs();
        let injected_before = driver.active_anomaly().map(|a| a.rule);
        let report = driver.step()?;
        match (injected_before, driver.active_anomaly().map(|a| a.rule)) {
            (None, Some(rule)) => {
                writeln!(out, "epoch {epoch:>3}: [attack on s{}]", rule.switch.0)?
            }
            (Some(_), None) => writeln!(out, "epoch {epoch:>3}: [repaired]")?,
            _ => {}
        }
        match (liars_active, driver.fake_active_at(epoch)) {
            (false, true) => {
                liars_active = true;
                let names: Vec<String> = driver
                    .liar_switches()
                    .iter()
                    .map(|s| format!("s{}", s.0))
                    .collect();
                writeln!(
                    out,
                    "epoch {epoch:>3}: [liars compromised: {} ({fake_strategy}, λ={fake_magnitude})]",
                    names.join(", ")
                )?;
            }
            (true, false) => {
                liars_active = false;
                writeln!(out, "epoch {epoch:>3}: [liars confessed]")?;
            }
            _ => {}
        }
        if let Some(s) = report.localized_liar {
            writeln!(
                out,
                "epoch {epoch:>3}: LOCALIZED liar s{} — counters quarantined",
                s.0
            )?;
        }
        match &report.mode {
            DetectionMode::Full => {}
            DetectionMode::Degraded {
                missing, coverage, ..
            } => {
                let names: Vec<String> = missing.iter().map(|s| format!("s{}", s.0)).collect();
                writeln!(
                    out,
                    "epoch {epoch:>3}: DEGRADED missing [{}], masked coverage {:.1}%",
                    names.join(", "),
                    100.0 * coverage
                )?;
            }
            DetectionMode::Reconciled {
                quarantined_flows,
                masked_rows,
                coverage,
                ..
            } => {
                writeln!(
                    out,
                    "epoch {epoch:>3}: RECONCILED rule churn — {quarantined_flows} flows \
                     quarantined, {masked_rows} rows masked, coverage {:.1}%",
                    100.0 * coverage
                )?;
            }
            DetectionMode::Blind { .. } => {
                writeln!(out, "epoch {epoch:>3}: BLIND (no usable counters)")?
            }
        }
        if report.alarm_raised {
            let ai = report
                .verdict
                .as_ref()
                .map(|v| v.anomaly_index.min(1e6))
                .unwrap_or(f64::NAN);
            let suspects: Vec<String> = report
                .suspects
                .iter()
                .take(3)
                .map(|s| format!("s{}", s.switch.0))
                .collect();
            writeln!(
                out,
                "epoch {epoch:>3}: ALARM (AI {ai:.2}) suspects: {}",
                suspects.join(", ")
            )?;
        } else if report.alarm_cleared {
            writeln!(out, "epoch {epoch:>3}: alarm cleared")?;
        }
    }
    let m = *driver.service().metrics();
    let final_state = driver.service().state();
    writeln!(out, "final state: {final_state}")?;
    writeln!(
        out,
        "rounds: {} full / {} degraded / {} reconciled / {} blind; \
         {} retries, {} drops, {} stale replies",
        m.full_rounds,
        m.degraded_rounds,
        m.reconciled_rounds,
        m.blind_rounds,
        m.retries,
        m.drops,
        m.stale_replies
    )?;
    writeln!(
        out,
        "alarms: {} raised, {} cleared; churn: {} updates, {} flows quarantined, \
         {} fcm rebuilds, {} suppressed raises",
        m.alarms_raised,
        m.alarms_cleared,
        driver.churn_events(),
        m.quarantined_flows,
        m.fcm_rebuilds,
        m.suppressed_raises
    )?;
    if liars > 0 {
        writeln!(
            out,
            "byzantine: {} localized, {} quarantined, {} released, {} unresolved rounds; \
             loo: {} solves via {} downdates",
            m.liars_localized,
            m.switch_quarantines,
            m.quarantine_releases,
            m.unresolved_byzantine,
            m.loo_solves,
            m.loo_downdates
        )?;
    }
    writeln!(out, "metrics: {}", m.to_json())?;
    let byz_unresolved = driver.service().byzantine_unresolved();
    let exit_code = if final_state == AlarmState::Normal && !byz_unresolved {
        0
    } else {
        if byz_unresolved {
            writeln!(out, "exit 2: run ended with an unresolved Byzantine alarm")?;
        } else {
            writeln!(out, "exit 2: run ended with an unresolved alarm")?;
        }
        2
    };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces cluster <scenario> …` — sharded detection with per-shard warm
/// solvers, worker-fault drills, and a JSONL epoch log. Exits `2` when the
/// run ends with an unresolved alarm, like `foces run`.
pub fn cluster_run(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, mut dep) = load(args)?;
    let epochs: u64 = args.num("epochs", 30)?;
    let shards: usize = args.num("shards", 4)?;
    let mode = args.opt("partition").unwrap_or("edge-cut");
    let spec = foces_net::PartitionSpec::parse(mode, shards)
        .ok_or_else(|| format!("--partition: unknown mode {mode:?} (per-switch|edge-cut)"))?;
    let deadline_ms: u64 = args.num("shard-deadline-ms", 0)?;
    let loss: f64 = args.num("loss", 0.0)?;
    let seed: u64 = args.num("seed", 7)?;
    let threshold: f64 = args.num("threshold", foces::DEFAULT_THRESHOLD)?;
    let attack_at: Option<u64> = args
        .opt("attack-at")
        .map(|_| args.num("attack-at", 0))
        .transpose()?;
    let repair_at: u64 = args.num("repair-at", epochs)?;
    let kill_shard: Option<usize> = args
        .opt("kill-shard")
        .map(|_| args.num("kill-shard", 0))
        .transpose()?;
    let kill_at: u64 = args.num("kill-at", 0)?;
    let heal_at: u64 = args.num("heal-at", epochs)?;

    let fcm = Fcm::from_view(&dep.view);
    let config = foces_cluster::ClusterConfig {
        spec,
        threshold,
        workers: args.num("workers", 0)?,
        queue_capacity: args.num("queue-capacity", 4)?,
        shard_deadline: (deadline_ms > 0).then(|| std::time::Duration::from_millis(deadline_ms)),
        backend: args.num("backend", foces::BackendKind::default())?,
        ..foces_cluster::ClusterConfig::default()
    };
    let mut svc = foces_cluster::ClusterService::new(fcm, dep.view.topology(), config)?;
    if let Some(path) = args.opt("log") {
        let log = EventLog::to_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open {path}: {e}"))?;
        svc = svc.with_log(log);
    }
    if let Some(region) = kill_shard {
        if region >= svc.partition().region_count() {
            return Err(format!(
                "--kill-shard: region {region} out of range (partition has {})",
                svc.partition().region_count()
            )
            .into());
        }
    }
    if args.flag("coverage-strict") {
        if let Some(refusal) = coverage_refusal(svc.coverage(), "cluster run") {
            return Ok(refusal);
        }
    }

    let mut out = String::new();
    writeln!(
        out,
        "partition: {} -> {} regions, edge cut {}, balance {:.2}, {} boundary flows",
        spec,
        svc.partition().region_count(),
        svc.partition().edge_cut(dep.view.topology()),
        svc.partition().balance(),
        svc.sharded().boundary_flows().len()
    )?;

    let mut active: Option<foces_dataplane::AppliedAnomaly> = None;
    for epoch in 0..epochs {
        if attack_at == Some(epoch) {
            let mut rng = StdRng::seed_from_u64(seed);
            active = inject_random_anomaly(
                &mut dep.dataplane,
                AnomalyKind::PathDeviation,
                &mut rng,
                &[],
            );
            if let Some(a) = &active {
                writeln!(out, "epoch {epoch:>3}: [attack on s{}]", a.rule.switch.0)?;
            }
        }
        if epoch == repair_at {
            if let Some(a) = active.take() {
                a.revert(&mut dep.dataplane)?;
                writeln!(out, "epoch {epoch:>3}: [repaired]")?;
            }
        }
        if let Some(region) = kill_shard {
            if epoch == kill_at {
                svc.inject_fault(region, foces_cluster::ShardFault::Panic);
                writeln!(out, "epoch {epoch:>3}: [shard {region} worker killed]")?;
            }
            if epoch == heal_at {
                svc.clear_fault(region);
                writeln!(out, "epoch {epoch:>3}: [shard {region} worker restarted]")?;
            }
        }

        let counters = one_round(&mut dep, loss, seed ^ epoch);
        let r = svc.run_epoch(&counters)?;
        let degraded: Vec<String> = r
            .shards
            .iter()
            .filter_map(|s| match &s.health {
                foces_cluster::ShardHealth::Healthy => None,
                foces_cluster::ShardHealth::Degraded(reason) => {
                    Some(format!("{} ({})", s.region, reason.label()))
                }
            })
            .collect();
        if !degraded.is_empty() {
            writeln!(
                out,
                "epoch {epoch:>3}: DEGRADED shards [{}], row coverage {:.1}%",
                degraded.join(", "),
                100.0 * r.detectability.row_coverage
            )?;
        }
        if r.alarm.raised {
            writeln!(
                out,
                "epoch {epoch:>3}: ALARM (AI {:.2}) regions {:?}",
                r.max_anomaly_index.min(1e6),
                r.flagged_regions()
            )?;
        } else if r.alarm.cleared {
            writeln!(out, "epoch {epoch:>3}: alarm cleared")?;
        }
    }

    let m = svc.metrics().clone();
    let final_state = svc.alarm_state();
    writeln!(out, "final state: {final_state}")?;
    writeln!(
        out,
        "solves: {} warm / {} cold over {} shard-epochs; faults: {} panics, \
         {} deadline misses, {} solver errors",
        m.warm_solves,
        m.cold_solves,
        m.shard_solves,
        m.shard_panics,
        m.deadline_misses,
        m.solve_errors
    )?;
    writeln!(
        out,
        "pool: {} steals, {} backpressure stalls, max queue depth {}",
        m.steals, m.backpressure_stalls, m.max_queue_depth
    )?;
    writeln!(out, "metrics: {}", m.to_json())?;
    let exit_code = if final_state == AlarmState::Normal {
        0
    } else {
        writeln!(out, "exit 2: run ended with an unresolved alarm")?;
        2
    };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces stream <scenario> …` — event-driven continuous ingestion over
/// per-link channel models with shard-complete detection triggers. Exits
/// `2` when the stream ends with an unresolved alarm, like `foces run`.
pub fn stream_run(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, dep) = load(args)?;
    let defaults = StreamConfig::default();
    let poll_ms: f64 = args.num("poll-ms", 50.0)?;
    let cadence = if args.flag("adaptive") {
        CadenceConfig {
            min_ms: poll_ms,
            max_ms: args.num("poll-max-ms", poll_ms * 8.0)?,
            ..CadenceConfig::default()
        }
    } else {
        CadenceConfig::fixed(poll_ms)
    };
    let link_defaults = LinkSpec::default();
    let link = LinkSpec {
        propagation_ms: args.num("link-delay", link_defaults.propagation_ms)?,
        bytes_per_ms: args.num("bandwidth", link_defaults.bytes_per_ms)?,
        queue_capacity: args.num("queue-capacity", link_defaults.queue_capacity)?,
    };
    let profile = FaultProfile {
        latency_ms: args.num("latency", 1.0)?,
        jitter_ms: args.num("jitter", 0.0)?,
        drop_prob: args.num("drop", 0.0)?,
        reorder_prob: args.num("reorder", 0.0)?,
        offline: Vec::new(),
    };
    let slow_region: Option<usize> = args
        .opt("slow-region")
        .map(|_| args.num("slow-region", 0))
        .transpose()?;
    let liars: usize = args.num("liars", 0)?;
    let fake_strategy: FakeStrategy = args.num("fake-strategy", FakeStrategy::Naive)?;
    let fake_magnitude: f64 = args.num("fake-magnitude", 1.0)?;
    let config = StreamConfig {
        duration_ms: args.num("duration-ms", defaults.duration_ms)?,
        regions: args.num("regions", defaults.regions)?,
        cadence,
        attempt_timeout_ms: args.num("attempt-timeout-ms", defaults.attempt_timeout_ms)?,
        max_attempts: args.num("max-attempts", defaults.max_attempts)?,
        settle_ms: args.num("settle-ms", defaults.settle_ms)?,
        profile,
        access: link.clone(),
        uplink: link,
        slow_region,
        slow_extra_ms: args.num("slow-ms", defaults.slow_extra_ms)?,
        seed: args.num("seed", defaults.seed)?,
        churn_seed: args.num("churn-seed", defaults.churn_seed)?,
        anomaly_seed: args.num("anomaly-seed", defaults.anomaly_seed)?,
        liar_seed: args.num("liar-seed", defaults.liar_seed)?,
        byzantine: ByzantineConfig {
            enabled: liars > 0,
            ..ByzantineConfig::default()
        },
        backend: args.num("backend", defaults.backend)?,
        ..defaults
    };

    let mut script: Vec<(f64, StreamAction)> = Vec::new();
    if args.opt("attack-at").is_some() {
        let at: f64 = args.num("attack-at", 0.0)?;
        script.push((at, StreamAction::Inject(AnomalyKind::PathDeviation)));
    }
    if args.opt("repair-at").is_some() {
        let at: f64 = args.num("repair-at", 0.0)?;
        script.push((at, StreamAction::Revert));
    }
    if args.opt("churn-at").is_some() {
        let at: f64 = args.num("churn-at", 0.0)?;
        script.push((at, StreamAction::Churn));
    }
    if liars > 0 {
        let at: f64 = args.num("fake-at", 0.0)?;
        script.push((
            at,
            StreamAction::Compromise {
                liars,
                strategy: fake_strategy,
                magnitude: fake_magnitude,
            },
        ));
        if args.opt("confess-at").is_some() {
            let at: f64 = args.num("confess-at", 0.0)?;
            script.push((at, StreamAction::Confess));
        }
    }
    script.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut driver = StreamDriver::new(dep, config.clone(), script);
    if let Some(path) = args.opt("log") {
        let log = EventLog::to_file(std::path::Path::new(path))
            .map_err(|e| format!("cannot open {path}: {e}"))?;
        driver.install_log(log);
    }
    if args.flag("coverage-strict") {
        if let Some(refusal) = coverage_refusal(driver.coverage(), "stream") {
            return Ok(refusal);
        }
    }
    let report = driver.run()?;

    let mut out = String::new();
    writeln!(
        out,
        "stream: {} regions over {:.0} ms simulated, poll {} ({:.0}..{:.0} ms)",
        config.regions,
        config.duration_ms,
        if args.flag("adaptive") {
            "adaptive"
        } else {
            "fixed"
        },
        config.cadence.min_ms,
        config.cadence.max_ms,
    )?;
    let m = report.metrics;
    let opt_ms = |v: Option<f64>| {
        v.map(|x| format!("{x:.2} ms"))
            .unwrap_or_else(|| "-".to_string())
    };
    writeln!(
        out,
        "latency: first verdict {} / all shards {} / alarm {}",
        opt_ms(m.ttfv_ms),
        opt_ms(m.ttav_ms),
        opt_ms(m.alarm_latency_ms)
    )?;
    writeln!(
        out,
        "rounds: {} warm / {} cold / {} reconciled / {} degraded / {} blind \
         over {} shard fires ({} anomalous)",
        m.warm_rounds,
        m.cold_rounds,
        m.reconciled_rounds,
        m.degraded_rounds,
        m.blind_rounds,
        m.shard_rounds,
        m.anomalous_rounds
    )?;
    writeln!(
        out,
        "channel: {} polls, {} attempts, {} retries, {} drops, \
         {} congestion drops, {} timeouts, {} stale replies",
        m.polls, m.attempts, m.retries, m.drops, m.congestion_drops, m.timeouts, m.stale_replies
    )?;
    writeln!(
        out,
        "alarms: {} raised, {} cleared, {} suppressed; {} fcm rebuilds",
        m.alarms_raised, m.alarms_cleared, m.suppressed_raises, m.fcm_rebuilds
    )?;
    if liars > 0 {
        writeln!(
            out,
            "byzantine: {} localized, {} quarantined, {} released, {} unresolved rounds; \
             loo: {} solves via {} downdates",
            m.liars_localized,
            m.switch_quarantines,
            m.quarantine_releases,
            m.unresolved_byzantine,
            m.loo_solves,
            m.loo_downdates
        )?;
    }
    let verdicts: Vec<String> = report
        .stream_verdicts
        .iter()
        .map(|(r, a)| format!("{r}:{}", if *a { "ANOMALY" } else { "ok" }))
        .collect();
    writeln!(
        out,
        "verdicts: [{}], ground-truth parity: {}",
        verdicts.join(" "),
        report.verdict_parity()
    )?;
    writeln!(out, "final state: {}", report.alarm_state)?;
    writeln!(out, "metrics: {}", m.to_json())?;
    let byz_unresolved = driver.byzantine_unresolved();
    let exit_code = if report.alarm_state == AlarmState::Normal && !byz_unresolved {
        0
    } else {
        if byz_unresolved {
            writeln!(
                out,
                "exit 2: stream ended with an unresolved Byzantine alarm"
            )?;
        } else {
            writeln!(out, "exit 2: stream ended with an unresolved alarm")?;
        }
        2
    };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// One cell of the redteam sweep: a full scenario run under one
/// (strategy, liar-count, magnitude) combination.
struct RedteamCell {
    strategy: FakeStrategy,
    liars: usize,
    magnitude: f64,
    detected: bool,
    /// Epochs from the start of forging to the first alarm raise.
    latency_epochs: Option<u64>,
    true_liars: Vec<foces_net::SwitchId>,
    localized: Vec<foces_net::SwitchId>,
    precision: Option<f64>,
    recall: Option<f64>,
    loo_solves: u64,
    loo_downdates: u64,
    switch_quarantines: u64,
    unresolved_rounds: u64,
    alarms_raised: u64,
}

impl RedteamCell {
    fn to_json(&self) -> String {
        use foces_runtime::metrics::json_f64;
        let ids = |v: &[foces_net::SwitchId]| {
            let inner: Vec<String> = v.iter().map(|s| s.0.to_string()).collect();
            format!("[{}]", inner.join(","))
        };
        let opt_f = |v: Option<f64>| v.map(json_f64).unwrap_or_else(|| "null".into());
        let opt_u = |v: Option<u64>| v.map(|x| x.to_string()).unwrap_or_else(|| "null".into());
        format!(
            "{{\"strategy\":\"{}\",\"liars\":{},\"magnitude\":{},\"detected\":{},\
             \"latency_epochs\":{},\"true_liars\":{},\"localized\":{},\"precision\":{},\
             \"recall\":{},\"loo_solves\":{},\"loo_downdates\":{},\"switch_quarantines\":{},\
             \"unresolved_rounds\":{},\"alarms_raised\":{}}}",
            self.strategy,
            self.liars,
            json_f64(self.magnitude),
            self.detected,
            opt_u(self.latency_epochs),
            ids(&self.true_liars),
            ids(&self.localized),
            opt_f(self.precision),
            opt_f(self.recall),
            self.loo_solves,
            self.loo_downdates,
            self.switch_quarantines,
            self.unresolved_rounds,
            self.alarms_raised,
        )
    }
}

/// Runs one redteam cell: a fresh deployment, `liars` forging switches
/// under `strategy` at interpolation `magnitude`, Byzantine layer on,
/// stepped for `epochs`.
#[allow(clippy::too_many_arguments)]
fn redteam_cell(
    scenario: &Scenario,
    strategy: FakeStrategy,
    liars: usize,
    magnitude: f64,
    epochs: u64,
    fake_at: u64,
    seed: u64,
    liar_seed: u64,
    threshold: f64,
) -> Result<RedteamCell, CmdError> {
    use std::collections::BTreeSet;
    let dep = scenario.provision()?;
    let fs = FaultScenario {
        epochs,
        loss: 0.0,
        drop_prob: 0.0,
        latency_ms: 1.0,
        jitter_ms: 0.0,
        reorder_prob: 0.0,
        offline: None,
        anomaly_window: None,
        anomaly_kind: AnomalyKind::PathDeviation,
        churn_period: None,
        churn_seed: 7,
        seed,
        anomaly_seed: seed,
        liars,
        fake_strategy: strategy,
        fake_window: Some((fake_at, epochs)),
        fake_magnitude: magnitude,
        liar_seed,
    };
    let config = RuntimeConfig {
        threshold,
        byzantine: ByzantineConfig {
            enabled: true,
            ..ByzantineConfig::default()
        },
        ..RuntimeConfig::default()
    };
    let mut driver = ScenarioDriver::new(dep, fs, config);
    let mut first_alarm: Option<u64> = None;
    let mut localized: BTreeSet<foces_net::SwitchId> = BTreeSet::new();
    for _ in 0..epochs {
        let epoch = driver.service().epochs();
        let r = driver.step()?;
        if r.alarm_raised && epoch >= fake_at && first_alarm.is_none() {
            first_alarm = Some(epoch);
        }
        if let Some(s) = r.localized_liar {
            localized.insert(s);
        }
    }
    let m = *driver.service().metrics();
    if m.loo_solves > 0 && m.loo_downdates == 0 {
        return Err(format!(
            "redteam invariant violated ({strategy} ×{liars} λ={magnitude}): \
             {} leave-one-out solves took zero factor downdates (cold refactorization)",
            m.loo_solves
        )
        .into());
    }
    let truth: BTreeSet<foces_net::SwitchId> = driver.liar_switches().iter().copied().collect();
    let tp = localized.intersection(&truth).count();
    Ok(RedteamCell {
        strategy,
        liars,
        magnitude,
        detected: first_alarm.is_some(),
        latency_epochs: first_alarm.map(|e| e - fake_at),
        true_liars: truth.into_iter().collect(),
        localized: localized.iter().copied().collect(),
        precision: (!localized.is_empty()).then(|| tp as f64 / localized.len() as f64),
        recall: (liars > 0).then(|| tp as f64 / liars as f64),
        loo_solves: m.loo_solves,
        loo_downdates: m.loo_downdates,
        switch_quarantines: m.switch_quarantines,
        unresolved_rounds: m.unresolved_byzantine,
        alarms_raised: m.alarms_raised,
    })
}

/// `foces redteam [scenario] …` — sweeps the adversary space
/// (strategy × liar count × fake magnitude λ), measuring detection
/// latency, localization precision/recall, and the evasion cost (the
/// smallest λ each strategy needs to stay above to be caught), and writes
/// the whole grid to BENCH_redteam.json. Uses the FatTree(4) golden
/// scenario when no file is given.
pub fn redteam(args: &Args) -> Result<CmdOutput, CmdError> {
    use foces_runtime::metrics::json_f64;
    let (scenario, scenario_name) = match args.positional(1) {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            (Scenario::parse(&text)?, path.to_string())
        }
        None => (
            Scenario::parse("topology fattree 4\ngranularity per-pair\nall-pairs 240000\n")?,
            "fattree-4".to_string(),
        ),
    };
    let epochs: u64 = args.num("epochs", 12)?;
    let fake_at: u64 = args.num("fake-at", 2)?;
    let seed: u64 = args.num("seed", 7)?;
    let liar_seed: u64 = args.num("liar-seed", 11)?;
    let threshold: f64 = args.num("threshold", foces::DEFAULT_THRESHOLD)?;
    let liars_max: usize = args.num("liars-max", 2)?;
    let magnitudes: Vec<f64> = match args.opt("magnitudes") {
        None => vec![0.25, 0.5, 1.0],
        Some(csv) => csv
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .map_err(|_| format!("--magnitudes: cannot parse {t:?}"))
            })
            .collect::<Result<_, _>>()?,
    };
    let strategies: Vec<FakeStrategy> = match args.opt("strategies") {
        None => FakeStrategy::ALL.to_vec(),
        Some(csv) => csv
            .split(',')
            .map(|t| t.trim().parse())
            .collect::<Result<_, _>>()?,
    };
    let out_path = args.opt("out").unwrap_or("BENCH_redteam.json").to_string();

    let mut out = String::new();
    writeln!(
        out,
        "redteam: {} on {scenario_name}, {epochs} epochs, forging from epoch {fake_at}, \
         λ ∈ {magnitudes:?}, liars 1..={liars_max}",
        strategies
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("/"),
    )?;

    let mut cells: Vec<RedteamCell> = Vec::new();
    for &strategy in &strategies {
        for liars in 1..=liars_max {
            for &magnitude in &magnitudes {
                let cell = redteam_cell(
                    &scenario, strategy, liars, magnitude, epochs, fake_at, seed, liar_seed,
                    threshold,
                )?;
                let verdict = if cell.detected {
                    format!(
                        "DETECTED in {} epochs, P={} R={}",
                        cell.latency_epochs.unwrap_or(0),
                        cell.precision.map_or("-".into(), |p| format!("{p:.2}")),
                        cell.recall.map_or("-".into(), |r| format!("{r:.2}")),
                    )
                } else {
                    "evaded".to_string()
                };
                writeln!(out, "  {strategy:>7} ×{liars} λ={magnitude:<5}: {verdict}")?;
                cells.push(cell);
            }
        }
    }

    // Evasion-cost curve: per (strategy, liar count), the smallest swept λ
    // that is still detected, and the largest that escapes.
    let mut evasion = String::from("[");
    let mut first = true;
    for &strategy in &strategies {
        for liars in 1..=liars_max {
            let group: Vec<&RedteamCell> = cells
                .iter()
                .filter(|c| c.strategy == strategy && c.liars == liars)
                .collect();
            let min_detected = group
                .iter()
                .filter(|c| c.detected)
                .map(|c| c.magnitude)
                .fold(f64::INFINITY, f64::min);
            let max_undetected = group
                .iter()
                .filter(|c| !c.detected)
                .map(|c| c.magnitude)
                .fold(f64::NEG_INFINITY, f64::max);
            if !first {
                evasion.push(',');
            }
            first = false;
            let _ = write!(
                evasion,
                "{{\"strategy\":\"{strategy}\",\"liars\":{liars},\"min_detected_magnitude\":{},\
                 \"max_undetected_magnitude\":{}}}",
                if min_detected.is_finite() {
                    json_f64(min_detected)
                } else {
                    "null".into()
                },
                if max_undetected.is_finite() {
                    json_f64(max_undetected)
                } else {
                    "null".into()
                },
            );
            let cost = if min_detected.is_finite() {
                format!("caught from λ={min_detected}")
            } else {
                "never caught in sweep".to_string()
            };
            let escape = if max_undetected.is_finite() {
                format!(", escapes at λ={max_undetected}")
            } else {
                String::new()
            };
            writeln!(out, "evasion {strategy:>7} ×{liars}: {cost}{escape}")?;
        }
    }
    evasion.push(']');

    let cell_json: Vec<String> = cells.iter().map(RedteamCell::to_json).collect();
    let json = format!(
        "{{\"bench\":\"redteam\",\"scenario\":\"{scenario_name}\",\"epochs\":{epochs},\
         \"fake_at\":{fake_at},\"threshold\":{},\"cells\":[{}],\"evasion\":{evasion}}}\n",
        json_f64(threshold),
        cell_json.join(",")
    );
    std::fs::write(&out_path, json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(out, "wrote {out_path} ({} cells)", cells.len())?;
    Ok(CmdOutput::clean(out))
}

/// One prepared scale deployment: the FCM plus a healthy and an
/// anomalous counter snapshot (same rule-modification seed per cell so
/// every backend scores the identical vectors).
struct ScaleSystem {
    fcm: Fcm,
    healthy: Vec<f64>,
    anomalous: Vec<f64>,
    hosts: usize,
    flows: usize,
    rules: usize,
    basis_cols: usize,
}

/// Builds the FatTree(`k`) all-pairs deployment for one scale cell and
/// collects both counter snapshots. `flows_max > 0` truncates the
/// all-pairs flow list (deterministically, in host order) to bound a
/// sweep's runtime without changing the rule structure of what remains.
fn scale_system(k: usize, seed: u64, flows_max: usize) -> Result<ScaleSystem, CmdError> {
    use foces_controlplane::{provision, uniform_flows, RuleGranularity};
    let topo = foces_net::generators::fattree(k);
    let hosts = topo.host_count();
    let pairs = hosts * hosts.saturating_sub(1);
    let mut flows = uniform_flows(&topo, 1000.0 * pairs as f64);
    if flows_max > 0 && flows.len() > flows_max {
        flows.truncate(flows_max);
    }
    let flow_count = flows.len();
    let mut dep = provision(topo, &flows, RuleGranularity::PerDestination)?;
    let fcm = Fcm::from_view(&dep.view);
    dep.replay_traffic(&mut LossModel::none());
    let healthy = dep.dataplane.collect_counters();
    let mut rng = StdRng::seed_from_u64(seed);
    inject_random_anomaly(
        &mut dep.dataplane,
        AnomalyKind::PathDeviation,
        &mut rng,
        &[],
    )
    .ok_or_else(|| format!("fattree-{k}: no eligible rule to deviate"))?;
    dep.dataplane.reset_counters();
    dep.replay_traffic(&mut LossModel::none());
    let anomalous = dep.dataplane.collect_counters();
    Ok(ScaleSystem {
        hosts,
        flows: flow_count,
        rules: fcm.rule_count(),
        basis_cols: fcm.unique_column_basis().len(),
        fcm,
        healthy,
        anomalous,
    })
}

/// One backend's measured pass over a [`ScaleSystem`]: a timed cold
/// healthy round, a timed warm repeat, and an anomalous round.
struct ScaleRun {
    cold_ms: f64,
    warm_ms: f64,
    solve_path: String,
    cg_iterations: u64,
    healthy_index: f64,
    healthy_flag: bool,
    anomalous_index: f64,
    anomalous_flag: bool,
}

fn scale_run(
    sys: &ScaleSystem,
    backend: foces::BackendKind,
    threshold: f64,
) -> Result<ScaleRun, foces::FocesError> {
    let detector = Detector::with_threshold(threshold);
    let mut solver = foces::IncrementalSolver::with_backend(foces::RankBudget::default(), backend);
    let t0 = std::time::Instant::now();
    let (healthy, path) = detector.detect_warm(&sys.fcm, &sys.healthy, &mut solver)?;
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mut cg_iterations = solver.last_iterations();
    let t1 = std::time::Instant::now();
    detector.detect_warm(&sys.fcm, &sys.healthy, &mut solver)?;
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;
    cg_iterations = cg_iterations.max(solver.last_iterations());
    let (anomalous, _) = detector.detect_warm(&sys.fcm, &sys.anomalous, &mut solver)?;
    cg_iterations = cg_iterations.max(solver.last_iterations());
    Ok(ScaleRun {
        cold_ms,
        warm_ms,
        solve_path: path.to_string(),
        cg_iterations,
        healthy_index: healthy.anomaly_index,
        healthy_flag: healthy.anomalous,
        anomalous_index: anomalous.anomaly_index,
        anomalous_flag: anomalous.anomalous,
    })
}

/// Renders one scale cell as a JSON object for BENCH_scale.json.
#[allow(clippy::too_many_arguments)]
fn scale_cell_json(
    name: &str,
    sys: &ScaleSystem,
    backend: &str,
    run: Option<&ScaleRun>,
    dense_error: Option<&str>,
) -> String {
    use foces_runtime::metrics::{json_f64, json_str};
    let mut s = format!(
        "{{\"topology\":{},\"hosts\":{},\"flows\":{},\"rules\":{},\
         \"basis_cols\":{},\"backend\":{}",
        json_str(name),
        sys.hosts,
        sys.flows,
        sys.rules,
        sys.basis_cols,
        json_str(backend),
    );
    if let Some(r) = run {
        let _ = write!(
            s,
            ",\"cold_ms\":{},\"warm_ms\":{},\"solve_path\":{},\"cg_iterations\":{},\
             \"healthy_anomaly_index\":{},\"healthy_anomalous\":{},\
             \"anomalous_anomaly_index\":{},\"anomalous_anomalous\":{}",
            json_f64(r.cold_ms),
            json_f64(r.warm_ms),
            json_str(&r.solve_path),
            r.cg_iterations,
            json_f64(r.healthy_index),
            r.healthy_flag,
            json_f64(r.anomalous_index),
            r.anomalous_flag,
        );
    }
    match dense_error {
        Some(e) => {
            let _ = write!(s, ",\"dense_error\":{}", json_str(e));
        }
        None => s.push_str(",\"dense_error\":null"),
    }
    let _ = write!(
        s,
        ",\"peak_rss_bytes\":{}}}",
        foces_runtime::peak_rss_bytes()
    );
    s
}

/// Attempts a dense-backend round expecting the typed allocation refusal;
/// returns the rendered [`foces_linalg::LinalgError::AllocationTooLarge`]
/// or an error when dense unexpectedly proceeds (or fails differently).
fn scale_expect_dense_refusal(sys: &ScaleSystem, threshold: f64) -> Result<String, CmdError> {
    use foces_linalg::LinalgError;
    match scale_run(sys, foces::BackendKind::Dense, threshold) {
        Err(foces::FocesError::Solver(e @ LinalgError::AllocationTooLarge { .. })) => {
            Ok(e.to_string())
        }
        Ok(_) => Err(format!(
            "expected the dense backend to refuse {} basis columns with \
             AllocationTooLarge, but it solved",
            sys.basis_cols
        )
        .into()),
        Err(other) => {
            Err(format!("expected AllocationTooLarge from the dense backend, got: {other}").into())
        }
    }
}

/// `foces scale [--full] [--out FILE.json] …` — the sparse-engine scaling
/// sweep. Smoke mode (the default, CI-sized) runs FatTree(8) all-pairs on
/// both backends — asserting verdict/index parity and recording the
/// cold-solve speedup — plus a FatTree(12) sparse-only cell where the
/// dense backend's typed `AllocationTooLarge` refusal is asserted. `--full`
/// adds the FatTree(16)-class headline cell (≥10⁵ flows): dense refuses
/// with a typed error, the sparse engine completes verdict-correct healthy
/// and anomalous rounds. Exits 2 on any parity or verdict failure.
pub fn scale(args: &Args) -> Result<CmdOutput, CmdError> {
    use foces_runtime::metrics::json_f64;
    let full = args.flag("full");
    let seed: u64 = args.num("seed", 7)?;
    let threshold: f64 = args.num("threshold", foces::DEFAULT_THRESHOLD)?;
    let ceiling: usize = args.num("ceiling", 16)?;
    let flows_max: usize = args.num("flows-max", 0)?;
    let out_path = args.opt("out").unwrap_or("BENCH_scale.json").to_string();

    let mut out = String::new();
    let mut cells: Vec<String> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // -- FatTree(8) parity cell: dense vs sparse on identical counters --
    let sys8 = scale_system(8, seed, flows_max)?;
    writeln!(
        out,
        "fattree-8: {} hosts, {} flows, {} rules, {} basis columns",
        sys8.hosts, sys8.flows, sys8.rules, sys8.basis_cols
    )?;
    let dense8 = scale_run(&sys8, foces::BackendKind::Dense, threshold)?;
    let sparse8 = scale_run(&sys8, foces::BackendKind::Sparse, threshold)?;
    let index_diff = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1.0);
    let parity_diff = index_diff(dense8.healthy_index, sparse8.healthy_index)
        .max(index_diff(dense8.anomalous_index, sparse8.anomalous_index));
    let parity_ok = dense8.healthy_flag == sparse8.healthy_flag
        && dense8.anomalous_flag == sparse8.anomalous_flag
        && parity_diff <= 1e-9;
    if !parity_ok {
        failures.push(format!(
            "fattree-8 parity: dense ({}, AI {:.6}/{:.6}) vs sparse ({}, AI {:.6}/{:.6})",
            dense8.healthy_flag,
            dense8.healthy_index,
            dense8.anomalous_index,
            sparse8.healthy_flag,
            sparse8.healthy_index,
            sparse8.anomalous_index,
        ));
    }
    if dense8.healthy_flag || !dense8.anomalous_flag {
        failures.push(format!(
            "fattree-8 verdicts: healthy round anomalous={}, anomalous round anomalous={}",
            dense8.healthy_flag, dense8.anomalous_flag
        ));
    }
    let speedup = dense8.cold_ms / sparse8.cold_ms.max(1e-9);
    writeln!(
        out,
        "  dense  cold {:>10.1} ms, warm {:>8.1} ms  (path {})",
        dense8.cold_ms, dense8.warm_ms, dense8.solve_path
    )?;
    writeln!(
        out,
        "  sparse cold {:>10.1} ms, warm {:>8.1} ms  (path {}, {} cg iters)",
        sparse8.cold_ms, sparse8.warm_ms, sparse8.solve_path, sparse8.cg_iterations
    )?;
    writeln!(
        out,
        "  parity: max index diff {parity_diff:.2e}, cold speedup {speedup:.1}x \
         (target >=5x), {}",
        if parity_ok { "ok" } else { "FAILED" }
    )?;
    cells.push(scale_cell_json(
        "fattree-8",
        &sys8,
        "dense",
        Some(&dense8),
        None,
    ));
    cells.push(scale_cell_json(
        "fattree-8",
        &sys8,
        "sparse",
        Some(&sparse8),
        None,
    ));
    drop(sys8);

    // -- FatTree(12) sparse-only smoke: dense must refuse, typed --------
    let sys12 = scale_system(12, seed, flows_max)?;
    writeln!(
        out,
        "fattree-12: {} hosts, {} flows, {} rules, {} basis columns",
        sys12.hosts, sys12.flows, sys12.rules, sys12.basis_cols
    )?;
    let refusal12 = scale_expect_dense_refusal(&sys12, threshold)?;
    writeln!(out, "  dense  refused (typed): {refusal12}")?;
    let sparse12 = scale_run(&sys12, foces::BackendKind::Sparse, threshold)?;
    if sparse12.healthy_flag || !sparse12.anomalous_flag {
        failures.push(format!(
            "fattree-12 sparse verdicts: healthy anomalous={}, anomalous anomalous={}",
            sparse12.healthy_flag, sparse12.anomalous_flag
        ));
    }
    writeln!(
        out,
        "  sparse cold {:>10.1} ms, warm {:>8.1} ms  (path {}, {} cg iters, \
         healthy AI {:.2}, anomalous AI {:.2})",
        sparse12.cold_ms,
        sparse12.warm_ms,
        sparse12.solve_path,
        sparse12.cg_iterations,
        sparse12.healthy_index,
        sparse12.anomalous_index
    )?;
    cells.push(scale_cell_json(
        "fattree-12",
        &sys12,
        "sparse",
        Some(&sparse12),
        Some(&refusal12),
    ));
    drop(sys12);

    // -- FatTree(16)-class headline (full mode only) --------------------
    if full {
        let sys16 = scale_system(ceiling, seed, flows_max)?;
        writeln!(
            out,
            "fattree-{ceiling}: {} hosts, {} flows, {} rules, {} basis columns",
            sys16.hosts, sys16.flows, sys16.rules, sys16.basis_cols
        )?;
        if sys16.flows < 100_000 {
            failures.push(format!(
                "fattree-{ceiling}: only {} flows (headline cell needs >=100000)",
                sys16.flows
            ));
        }
        let refusal16 = scale_expect_dense_refusal(&sys16, threshold)?;
        writeln!(out, "  dense  refused (typed): {refusal16}")?;
        let sparse16 = scale_run(&sys16, foces::BackendKind::Sparse, threshold)?;
        if sparse16.healthy_flag || !sparse16.anomalous_flag {
            failures.push(format!(
                "fattree-{ceiling} sparse verdicts: healthy anomalous={}, \
                 anomalous anomalous={}",
                sparse16.healthy_flag, sparse16.anomalous_flag
            ));
        }
        writeln!(
            out,
            "  sparse cold {:>10.1} ms, warm {:>8.1} ms  (path {}, {} cg iters, \
             healthy AI {:.2}, anomalous AI {:.2})",
            sparse16.cold_ms,
            sparse16.warm_ms,
            sparse16.solve_path,
            sparse16.cg_iterations,
            sparse16.healthy_index,
            sparse16.anomalous_index
        )?;
        cells.push(scale_cell_json(
            &format!("fattree-{ceiling}"),
            &sys16,
            "sparse",
            Some(&sparse16),
            Some(&refusal16),
        ));
    }

    let json = format!(
        "{{\"bench\":\"scale\",\"mode\":\"{}\",\"threshold\":{},\
         \"parity\":{{\"topology\":\"fattree-8\",\"max_index_diff\":{},\
         \"cold_speedup\":{},\"speedup_ok\":{},\"parity_ok\":{parity_ok}}},\
         \"cells\":[{}]}}\n",
        if full { "full" } else { "smoke" },
        json_f64(threshold),
        json_f64(parity_diff),
        json_f64(speedup),
        speedup >= 5.0,
        cells.join(",")
    );
    std::fs::write(&out_path, json).map_err(|e| format!("cannot write {out_path}: {e}"))?;
    writeln!(out, "wrote {out_path} ({} cells)", cells.len())?;

    let exit_code = if failures.is_empty() {
        0
    } else {
        for f in &failures {
            writeln!(out, "FAIL: {f}")?;
        }
        writeln!(out, "exit 2: {} scale assertion(s) failed", failures.len())?;
        2
    };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces audit <scenario> [--cap N] [--json]` — static rule-table
/// verification (loops, blackholes, shadowing, FCM consistency) followed
/// by the detectability blind-spot analysis. Exits `3` when verification
/// finds violations; `--json` renders everything as JSONL for pipelines.
pub fn audit(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, dep) = load(args)?;
    let cap: usize = args.num("cap", usize::MAX)?;
    let fcm = Fcm::from_view(&dep.view);
    let mut verification = verify_view(&dep.view);
    let report = audit_deviations(&dep.view, &fcm, cap);
    // A deviation path that walks a rule the FCM has no row for means the
    // matrix is stale relative to the plane under audit: surface it as a
    // finding (and exit 3) instead of aborting the audit.
    for c in &report.stale {
        let flow = &fcm.flows()[c.flow];
        verification.findings.push(Finding {
            kind: FindingKind::StaleRule,
            switch: c.at_switch,
            rules: Vec::new(),
            region: None,
            header: None,
            detail: format!(
                "deviating flow h{}->h{} at s{} toward s{} walks a rule the FCM \
                 has no row for: the matrix is stale relative to the plane",
                flow.ingress.0, flow.egress.0, c.at_switch.0, c.redirected_to.0
            ),
        });
    }
    let mut out = String::new();
    if args.flag("json") {
        for line in verification.to_json_lines() {
            writeln!(out, "{line}")?;
        }
        writeln!(
            out,
            "{{\"event\":\"detectability\",\"candidates\":{},\"detectable\":{},\
             \"blind\":{},\"stale\":{},\"coverage\":{:.6}}}",
            report.total(),
            report.detectable.len(),
            report.undetectable.len(),
            report.stale.len(),
            report.coverage()
        )?;
    } else {
        writeln!(out, "static check: {}", verification.summary())?;
        for f in verification.findings.iter().take(10) {
            writeln!(out, "  {f}")?;
        }
        if verification.findings.len() > 10 {
            writeln!(out, "  ... and {} more", verification.findings.len() - 10)?;
        }
        writeln!(out, "candidates:   {}", report.total())?;
        writeln!(out, "detectable:   {}", report.detectable.len())?;
        writeln!(out, "blind spots:  {}", report.undetectable.len())?;
        if !report.stale.is_empty() {
            writeln!(out, "stale:        {}", report.stale.len())?;
        }
        writeln!(out, "coverage:     {:.1}%", 100.0 * report.coverage())?;
        for c in report.undetectable.iter().take(10) {
            let flow = &fcm.flows()[c.flow];
            writeln!(
                out,
                "  blind: flow h{}->h{} deviated at s{} toward s{} (delivered: {})",
                flow.ingress.0, flow.egress.0, c.at_switch.0, c.redirected_to.0, c.still_delivered
            )?;
        }
        if report.undetectable.len() > 10 {
            writeln!(out, "  ... and {} more", report.undetectable.len() - 10)?;
        }
        if !verification.is_clean() {
            writeln!(out, "exit 3: static verification found violations")?;
        }
    }
    let exit_code = if verification.is_clean() { 0 } else { 3 };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces coverage <scenario> [--shards K] [--json] [--strict]` — static
/// detectability & localization-coverage analysis of the provisioned
/// plane, with no epochs run: per-switch row-share/absorption scores with
/// an absorbing-combination certificate behind every WARN, leave-one-out
/// localizability classes, the degradation margin, and (with `--shards`)
/// per-shard boundary rank. `--strict` exits `4` on any WARN finding.
pub fn coverage_cmd(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, dep) = load(args)?;
    let fcm = Fcm::from_view(&dep.view);
    let config = CoverageConfig::default();
    let shards: usize = args.num("shards", 0)?;
    let report = if shards > 0 {
        let spec = foces_net::PartitionSpec::EdgeCut { k: shards };
        let part = foces_net::partition(dep.view.topology(), spec);
        let sharded = ShardedFcm::from_fcm(&fcm, &part);
        analyze_cluster_coverage(&fcm, &sharded, &config)?
    } else {
        analyze_coverage(&fcm, &config)?
    };
    let mut out = String::new();
    if args.flag("json") {
        out.push_str(&report.to_json_lines());
    } else {
        writeln!(out, "{}", report.summary())?;
        if let (Some(flow), false) = (report.margin_flow, report.margin_witness.is_empty()) {
            let witness: Vec<String> = report
                .margin_witness
                .iter()
                .map(|s| format!("s{}", s.0))
                .collect();
            writeln!(
                out,
                "margin witness: flow f{flow} goes unobservable if [{}] fail",
                witness.join(", ")
            )?;
        }
        for sh in &report.shards {
            writeln!(
                out,
                "shard {}: {} rules x {} flows ({} basis cols, {} boundary), {}",
                sh.region,
                sh.rules,
                sh.flows,
                sh.basis_cols,
                sh.boundary_flows,
                if !sh.analyzed {
                    "skipped (over basis limit)"
                } else if sh.full_rank {
                    "full rank"
                } else {
                    "RANK DEFICIENT"
                }
            )?;
        }
        for f in &report.findings {
            let at = match (f.switch, f.region) {
                (Some(sw), _) => format!(" s{}", sw.0),
                (None, Some(r)) => format!(" shard {r}"),
                _ => String::new(),
            };
            writeln!(
                out,
                "  [{} {}]{}: {}",
                f.severity.label(),
                f.kind.label(),
                at,
                f.detail
            )?;
            if let Some(cert) = &f.certificate {
                writeln!(out, "    certificate: {cert}")?;
            }
        }
    }
    let exit_code = if args.flag("strict") && !report.is_clean() {
        if !args.flag("json") {
            writeln!(
                out,
                "exit 4: --strict and the analyzer found {} WARN finding(s)",
                report.warn_count()
            )?;
        }
        4
    } else {
        0
    };
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces interleave <scenario> ...` — schedule-enumeration conformance
/// for concurrent updates racing counter collection: stages `--updates`
/// reroutes, enumerates every non-equivalent per-switch commit schedule
/// (or a bounded `--schedules`/`--seed` sample), executes each against a
/// real runtime service, and holds it to the soundness oracles. Exits
/// `2` on any violation, reporting the shrunk minimal failing schedule.
/// `--json` emits the deterministic schedule log (byte-identical across
/// runs with the same inputs and seed).
pub fn interleave(args: &Args) -> Result<CmdOutput, CmdError> {
    let (_, dep) = load(args)?;
    let mut cfg = InterleaveConfig {
        updates: args.num("updates", 2)?,
        segments: args.num("segments", 2)?,
        ..InterleaveConfig::default()
    };
    cfg.mode = if let Some(count) = args.opt("schedules") {
        let count: usize = count
            .parse()
            .map_err(|_| format!("--schedules: cannot parse {count:?}"))?;
        ScheduleSet::Sample {
            count,
            seed: args.num("seed", 7)?,
        }
    } else if args.flag("uniform") {
        ScheduleSet::Uniform
    } else {
        ScheduleSet::Exhaustive
    };
    cfg.harness.update_at = args.num("update-at", cfg.harness.update_at)?;
    cfg.harness.epochs_after = args.num("epochs-after", cfg.harness.epochs_after)?;
    cfg.harness.runtime.threshold = args.num("threshold", cfg.harness.runtime.threshold)?;
    cfg.check_dropper = !args.flag("no-dropper");
    cfg.fanout_shards = if args.flag("no-fanout") {
        None
    } else {
        Some(args.num("shards", 2)?)
    };

    let report = run_interleave(&dep, &cfg)?;
    let mut out = String::new();
    if args.flag("json") {
        for line in report.json_lines() {
            writeln!(out, "{line}")?;
        }
    } else {
        let flows: Vec<String> = report
            .plans
            .iter()
            .map(|p| format!("f{}", p.flow))
            .collect();
        writeln!(
            out,
            "staged {} concurrent reroute(s) [{}], {} per-switch commit events",
            report.plans.len(),
            flows.join(", "),
            report.events.len()
        )?;
        writeln!(
            out,
            "schedules: {} explored, {} equivalent linearizations pruned",
            report.explored, report.pruned
        )?;
        let uniform = report
            .outcomes
            .iter()
            .filter(|o| o.schedule.is_uniform())
            .count();
        writeln!(
            out,
            "  {uniform} uniform (global-split) schedules among them"
        )?;
        if cfg.check_dropper {
            let bound = cfg.harness.update_at + cfg.harness.runtime.churn_raise_bound();
            let worst = report
                .outcomes
                .iter()
                .filter_map(|o| o.dropper_first_raise)
                .max();
            match worst {
                Some(w) => writeln!(
                    out,
                    "dropper: caught on every schedule, worst first-raise epoch {w} (bound {bound})"
                )?,
                None => writeln!(out, "dropper: dimension produced no first-raise data")?,
            }
        }
        if cfg.fanout_shards.is_some() {
            let (rounds, reconciled, blind, stale) = report
                .outcomes
                .iter()
                .filter_map(|o| o.fanout.as_ref())
                .fold((0, 0, 0, 0), |acc, f| {
                    (
                        acc.0 + f.rounds,
                        acc.1 + f.reconciled,
                        acc.2 + f.blind,
                        acc.3 + f.stale_rounds,
                    )
                });
            writeln!(
                out,
                "fan-out: {rounds} boundary shard rounds ({reconciled} reconciled, {blind} blind, \
                 {stale} with stale-generation members)"
            )?;
        }
        for o in report.outcomes.iter().filter(|o| !o.violations.is_empty()) {
            writeln!(out, "  VIOLATION at schedule {}:", o.schedule.label())?;
            for v in &o.violations {
                writeln!(out, "    {v}")?;
            }
        }
        match &report.minimal_failing {
            None => writeln!(out, "verdict: all {} schedules sound", report.explored)?,
            Some((s, vs)) => {
                writeln!(out, "minimal failing schedule: {}", s.label())?;
                for v in vs {
                    writeln!(out, "    {v}")?;
                }
            }
        }
    }
    let exit_code = if report.ok() { 0 } else { 2 };
    if exit_code != 0 && !args.flag("json") {
        writeln!(
            out,
            "exit 2: {} oracle violation(s) across the schedule space",
            report.violation_count()
        )?;
    }
    Ok(CmdOutput {
        report: out,
        exit_code,
    })
}

/// `foces harden <scenario> [--budget N] [--cap N]`.
pub fn harden_cmd(args: &Args) -> Result<String, CmdError> {
    let (_, dep) = load(args)?;
    let budget: usize = args.num("budget", 10_000)?;
    let cap: usize = args.num("cap", usize::MAX)?;
    let outcome = harden(&dep.view, budget, cap);
    let mut out = String::new();
    writeln!(
        out,
        "coverage: {:.1}% -> {:.1}%",
        100.0 * outcome.coverage_before,
        100.0 * outcome.coverage_after
    )?;
    writeln!(
        out,
        "installed {} dedicated rules across {} flows (budget {budget})",
        outcome.installed.len(),
        outcome.flows_split
    )?;
    if outcome.coverage_after < 1.0 {
        writeln!(out, "warning: budget exhausted before full coverage")?;
    }
    Ok(out)
}

/// `foces scenario <family>` — prints a template.
pub fn scenario_template(args: &Args) -> Result<String, CmdError> {
    let family = args.positional(1).unwrap_or("ring");
    let body = match family {
        "fattree" => "topology fattree 4\ngranularity per-pair\nall-pairs 1000\n",
        "bcube" => "topology bcube 1 4\ngranularity per-pair\nall-pairs 1000\n",
        "dcell" => "topology dcell 1 4\ngranularity per-pair\nall-pairs 1000\n",
        "stanford" => "topology stanford\ngranularity per-pair\nall-pairs 1000\n",
        "linear" => "topology linear 4\nflow h0 h3 1000\nflow h3 h0 1000\n",
        "ring" => {
            "\
# A 6-switch ring with a waypointed flow taking the long way round.
topology ring 6
granularity per-pair
all-pairs 500
flow-via h0 h2 1000 s4
"
        }
        other => return Err(format!("unknown scenario family {other:?}").into()),
    };
    Ok(format!("# foces scenario template: {family}\n{body}"))
}

/// Dispatches a full argument vector (excluding `argv[0]`).
pub fn dispatch(raw: &[String]) -> Result<CmdOutput, CmdError> {
    let args = Args::parse(
        raw,
        &[
            "loss",
            "modify",
            "seed",
            "threshold",
            "rounds",
            "attack-at",
            "repair-at",
            "cap",
            "budget",
            "epochs",
            "drop",
            "latency",
            "jitter",
            "reorder",
            "offline",
            "offline-from",
            "offline-to",
            "churn",
            "churn-seed",
            "alarm-window",
            "churn-suppress",
            "churn-penalty",
            "workers",
            "oracle-cap",
            "log",
            "shards",
            "partition",
            "shard-deadline-ms",
            "queue-capacity",
            "kill-shard",
            "kill-at",
            "heal-at",
            "poll-deadline-ms",
            "attempt-timeout-ms",
            "max-attempts",
            "duration-ms",
            "regions",
            "poll-ms",
            "poll-max-ms",
            "link-delay",
            "bandwidth",
            "slow-region",
            "slow-ms",
            "churn-at",
            "settle-ms",
            "anomaly-seed",
            "liars",
            "fake-strategy",
            "fake-at",
            "confess-at",
            "fake-magnitude",
            "liar-seed",
            "liars-max",
            "magnitudes",
            "strategies",
            "out",
            "updates",
            "segments",
            "schedules",
            "update-at",
            "epochs-after",
            "backend",
            "ceiling",
            "flows-max",
        ],
    )?;
    match args.positional(0) {
        Some("topo") => topo(&args).map(CmdOutput::clean),
        Some("detect") => detect(&args).map(CmdOutput::clean),
        Some("monitor") => monitor(&args).map(CmdOutput::clean),
        Some("run") => run_service(&args),
        Some("cluster") => cluster_run(&args),
        Some("stream") => stream_run(&args),
        Some("redteam") => redteam(&args),
        Some("scale") => scale(&args),
        Some("audit") => audit(&args),
        Some("coverage") => coverage_cmd(&args),
        Some("interleave") => interleave(&args),
        Some("harden") => harden_cmd(&args).map(CmdOutput::clean),
        Some("scenario") => scenario_template(&args).map(CmdOutput::clean),
        Some("help") | None => Ok(CmdOutput::clean(USAGE.to_string())),
        Some(other) => Err(format!("unknown command {other:?}\n\n{USAGE}").into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;

    fn scenario_file(content: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "foces-cli-test-{}-{}.foces",
            std::process::id(),
            content.len()
        ));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    fn run(cmdline: Vec<String>) -> Result<String, CmdError> {
        dispatch(&cmdline).map(|o| o.report)
    }

    fn run_full(cmdline: Vec<String>) -> Result<CmdOutput, CmdError> {
        dispatch(&cmdline)
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(vec![]).unwrap().contains("USAGE"));
        assert!(run(argv(&["help"])).unwrap().contains("USAGE"));
        assert!(run(argv(&["frobnicate"])).is_err());
    }

    #[test]
    fn topo_reports_statistics() {
        let path = scenario_file("topology bcube 1 4\nall-pairs 1000\n");
        let out = run(argv(&["topo", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("switches:      24"));
        assert!(out.contains("flows:         240"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn detect_healthy_and_compromised() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let healthy = run(argv(&["detect", path.to_str().unwrap()])).unwrap();
        assert!(healthy.contains("normal"), "{healthy}");
        let attacked = run(argv(&[
            "detect",
            path.to_str().unwrap(),
            "--modify",
            "1",
            "--sliced",
        ]))
        .unwrap();
        assert!(attacked.contains("ANOMALY"), "{attacked}");
        assert!(attacked.contains("suspect"), "{attacked}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn monitor_runs_attack_cycle() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run(argv(&[
            "monitor",
            path.to_str().unwrap(),
            "--rounds",
            "12",
            "--attack-at",
            "4",
            "--repair-at",
            "8",
            "--seed",
            "3",
        ]))
        .unwrap();
        assert!(out.contains("[attack"), "{out}");
        assert!(out.contains("ALARM"), "{out}");
        assert!(out.contains("alarm cleared"), "{out}");
        assert!(out.contains("final state: normal"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_handles_faults_and_an_attack_cycle() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=12",
            "--drop=0.05",
            "--jitter=2",
            "--attack-at=4",
            "--repair-at=8",
            "--seed=3",
        ]))
        .unwrap();
        assert!(out.contains("oracle: full-system coverage"), "{out}");
        assert!(out.contains("[attack on s"), "{out}");
        assert!(out.contains("ALARM"), "{out}");
        assert!(out.contains("[repaired]"), "{out}");
        assert!(out.contains("final state: normal"), "{out}");
        assert!(out.contains("\"epochs\":12"), "{out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_reports_degraded_rounds_and_writes_the_log() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let log =
            std::env::temp_dir().join(format!("foces-cli-run-log-{}.jsonl", std::process::id()));
        let out = run(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=6",
            "--loss=0",
            "--offline=2",
            "--offline-from=1",
            "--offline-to=3",
            "--log",
            log.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("DEGRADED missing [s2]"), "{out}");
        assert!(out.contains("masked coverage"), "{out}");
        assert!(out.contains("final state: normal"), "{out}");
        let lines: Vec<String> = std::fs::read_to_string(&log)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[1].contains("\"mode\":\"Degraded\""), "{}", lines[1]);
        assert!(lines[0].contains("\"mode\":\"Full\""), "{}", lines[0]);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(log);
    }

    #[test]
    fn run_with_churn_reconciles_and_exits_clean() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=8",
            "--loss=0",
            "--churn=2",
            "--churn-seed=5",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report.contains("RECONCILED rule churn"),
            "{}",
            out.report
        );
        assert!(out.report.contains("flows quarantined"), "{}", out.report);
        assert!(out.report.contains("alarms: 0 raised"), "{}", out.report);
        assert!(out.report.contains("fcm rebuilds"), "{}", out.report);
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_exits_nonzero_on_unresolved_alarm() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=8",
            "--loss=0",
            "--attack-at=4",
            "--repair-at=99",
            "--seed=3",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 2, "{}", out.report);
        assert!(out.report.contains("ALARM"), "{}", out.report);
        assert!(
            out.report
                .contains("exit 2: run ended with an unresolved alarm"),
            "{}",
            out.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_runs_attack_cycle_and_exits_clean() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let log =
            std::env::temp_dir().join(format!("foces-cli-stream-log-{}.jsonl", std::process::id()));
        let out = run_full(argv(&[
            "stream",
            path.to_str().unwrap(),
            "--duration-ms=600",
            "--regions=2",
            "--poll-ms=20",
            "--adaptive",
            "--attack-at=200",
            "--repair-at=400",
            "--log",
            log.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("stream: 2 regions"), "{}", out.report);
        assert!(out.report.contains("poll adaptive"), "{}", out.report);
        assert!(out.report.contains("first verdict"), "{}", out.report);
        assert!(
            out.report.contains("alarms: 1 raised, 1 cleared"),
            "{}",
            out.report
        );
        assert!(
            out.report.contains("ground-truth parity: true"),
            "{}",
            out.report
        );
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        assert!(out.report.contains("\"ttfv_ms\":"), "{}", out.report);
        let text = std::fs::read_to_string(&log).unwrap();
        assert!(text.contains("\"mode\":\"stream\""), "{text}");
        assert!(text.contains("\"event\":\"inject\""), "{text}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(log);
    }

    #[test]
    fn stream_exits_2_on_unrepaired_attack() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "stream",
            path.to_str().unwrap(),
            "--duration-ms=500",
            "--regions=2",
            "--poll-ms=20",
            "--attack-at=200",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 2, "{}", out.report);
        assert!(
            out.report
                .contains("exit 2: stream ended with an unresolved alarm"),
            "{}",
            out.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_localizes_a_naive_liar_and_exits_clean() {
        let path = scenario_file("topology fattree 4\ngranularity per-pair\nall-pairs 240000\n");
        let out = run_full(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=14",
            "--loss=0",
            "--latency=1",
            "--jitter=0",
            "--liars=1",
            "--fake-at=2",
            "--confess-at=9",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report.contains("[liars compromised: s"),
            "{}",
            out.report
        );
        assert!(out.report.contains("LOCALIZED liar s"), "{}", out.report);
        assert!(out.report.contains("[liars confessed]"), "{}", out.report);
        assert!(
            out.report
                .contains("byzantine: 1 localized, 1 quarantined, 1 released"),
            "{}",
            out.report
        );
        assert!(
            out.report.contains("\"liars_localized\":1"),
            "{}",
            out.report
        );
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn stream_localizes_a_liar_with_adaptive_cadence() {
        let path = scenario_file("topology fattree 4\ngranularity per-pair\nall-pairs 240000\n");
        let out = run_full(argv(&[
            "stream",
            path.to_str().unwrap(),
            "--duration-ms=500",
            "--regions=2",
            "--poll-ms=10",
            "--adaptive",
            "--poll-max-ms=80",
            "--liars=1",
            "--fake-at=40",
            "--confess-at=260",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report
                .contains("byzantine: 1 localized, 1 quarantined, 1 released"),
            "{}",
            out.report
        );
        assert!(out.report.contains("\"loo_downdates\":"), "{}", out.report);
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn redteam_sweeps_and_writes_the_grid() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let json =
            std::env::temp_dir().join(format!("foces-cli-redteam-{}.json", std::process::id()));
        let out = run_full(argv(&[
            "redteam",
            path.to_str().unwrap(),
            "--epochs=6",
            "--liars-max=1",
            "--strategies=naive",
            "--magnitudes=0.5,1.0",
            "--out",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("wrote"), "{}", out.report);
        assert!(out.report.contains("evasion"), "{}", out.report);
        let text = std::fs::read_to_string(&json).unwrap();
        assert!(text.contains("\"bench\":\"redteam\""), "{text}");
        assert!(text.contains("\"cells\":["), "{text}");
        assert!(text.contains("\"min_detected_magnitude\":"), "{text}");
        assert!(text.contains("\"max_undetected_magnitude\":"), "{text}");
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(json);
    }

    #[test]
    fn redteam_rejects_unknown_strategy() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let e = run(argv(&[
            "redteam",
            path.to_str().unwrap(),
            "--strategies=quantum",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("unknown fake strategy"), "{e}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn run_accepts_poll_policy_knobs() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs=4",
            "--loss=0",
            "--poll-deadline-ms=200",
            "--attempt-timeout-ms=40",
            "--max-attempts=3",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cluster_runs_attack_cycle_and_exits_clean() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "cluster",
            path.to_str().unwrap(),
            "--epochs=12",
            "--shards=2",
            "--attack-at=4",
            "--repair-at=8",
            "--seed=3",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report.contains("partition: edge-cut(k=2)"),
            "{}",
            out.report
        );
        assert!(out.report.contains("[attack on s"), "{}", out.report);
        assert!(out.report.contains("ALARM"), "{}", out.report);
        assert!(out.report.contains("alarm cleared"), "{}", out.report);
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        assert!(out.report.contains("warm /"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cluster_isolates_a_killed_shard_and_logs() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let log = std::env::temp_dir().join(format!(
            "foces-cli-cluster-log-{}.jsonl",
            std::process::id()
        ));
        let out = run_full(argv(&[
            "cluster",
            path.to_str().unwrap(),
            "--epochs=6",
            "--shards=2",
            "--kill-shard=0",
            "--kill-at=2",
            "--heal-at=4",
            "--log",
            log.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(
            out.report.contains("[shard 0 worker killed]"),
            "{}",
            out.report
        );
        assert!(
            out.report.contains("DEGRADED shards [0 (panic)]"),
            "{}",
            out.report
        );
        assert!(out.report.contains("row coverage"), "{}", out.report);
        assert!(
            out.report.contains("[shard 0 worker restarted]"),
            "{}",
            out.report
        );
        assert!(out.report.contains("final state: normal"), "{}", out.report);
        let lines: Vec<String> = std::fs::read_to_string(&log)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[2].contains("\"reason\":\"panic\""), "{}", lines[2]);
        assert!(lines[0].contains("\"mode\":\"cluster\""), "{}", lines[0]);
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(log);
    }

    #[test]
    fn cluster_exits_2_on_unresolved_alarm() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&[
            "cluster",
            path.to_str().unwrap(),
            "--epochs=8",
            "--shards=2",
            "--attack-at=4",
            "--repair-at=99",
            "--seed=3",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 2, "{}", out.report);
        assert!(
            out.report
                .contains("exit 2: run ended with an unresolved alarm"),
            "{}",
            out.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn cluster_rejects_bad_partition_and_region() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let e = run(argv(&[
            "cluster",
            path.to_str().unwrap(),
            "--partition=voronoi",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("--partition"), "{e}");
        let e = run(argv(&[
            "cluster",
            path.to_str().unwrap(),
            "--shards=2",
            "--kill-shard=9",
            "--kill-at=0",
        ]))
        .unwrap_err();
        assert!(e.to_string().contains("out of range"), "{e}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn audit_and_harden_round_trip() {
        let path = scenario_file("topology fattree 4\ngranularity per-dest\nall-pairs 1000\n");
        let audit_out = run_full(argv(&["audit", path.to_str().unwrap()])).unwrap();
        assert_eq!(audit_out.exit_code, 0, "{}", audit_out.report);
        let audit_out = audit_out.report;
        assert!(audit_out.contains("static check: clean"), "{audit_out}");
        assert!(audit_out.contains("blind spots:  224"), "{audit_out}");
        let harden_out = run(argv(&[
            "harden",
            path.to_str().unwrap(),
            "--budget",
            "5000",
        ]))
        .unwrap();
        assert!(harden_out.contains("-> 100.0%"), "{harden_out}");
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn audit_exits_3_on_shadowed_rules() {
        // The waypointed pair rules (priority 12) fully cover the plain
        // per-pair shortest-path rules (priority 10) for the same pair at
        // the shared endpoints of both paths: dead rules, exit 3.
        let path = scenario_file(
            "topology ring 6\ngranularity per-pair\nall-pairs 500\nflow-via h0 h2 1000 s4\n",
        );
        let out = run_full(argv(&["audit", path.to_str().unwrap()])).unwrap();
        assert_eq!(out.exit_code, 3, "{}", out.report);
        assert!(out.report.contains("[shadowed]"), "{}", out.report);
        assert!(
            out.report
                .contains("exit 3: static verification found violations"),
            "{}",
            out.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn audit_json_renders_jsonl() {
        let path = scenario_file("topology ring 5\nall-pairs 1000\n");
        let out = run_full(argv(&["audit", path.to_str().unwrap(), "--json"])).unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        let lines: Vec<&str> = out.report.lines().collect();
        assert_eq!(lines.len(), 2, "{}", out.report);
        assert!(lines[0].contains("\"event\":\"verify\""), "{}", lines[0]);
        assert!(lines[0].contains("\"clean\":true"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"event\":\"detectability\""),
            "{}",
            lines[1]
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn coverage_clean_on_fattree_strict_exit_0() {
        let path = scenario_file("topology fattree 4\ngranularity per-pair\nall-pairs 1000\n");
        let out = run_full(argv(&["coverage", path.to_str().unwrap(), "--strict"])).unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        assert!(out.report.contains("0 warnings"), "{}", out.report);
        assert!(out.report.contains("localizable"), "{}", out.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn coverage_warns_on_the_ring_with_a_certificate_and_strict_exit_4() {
        let path = scenario_file("topology ring 4\ngranularity per-pair\nall-pairs 12000\n");
        let out = run_full(argv(&["coverage", path.to_str().unwrap()])).unwrap();
        assert_eq!(out.exit_code, 0, "no --strict: report only");
        assert!(
            out.report.contains("row-share-absorption"),
            "{}",
            out.report
        );
        assert!(out.report.contains("certificate: u ≈"), "{}", out.report);
        let strict = run_full(argv(&["coverage", path.to_str().unwrap(), "--strict"])).unwrap();
        assert_eq!(strict.exit_code, 4, "{}", strict.report);
        assert!(strict.report.contains("exit 4"), "{}", strict.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn coverage_json_with_shards_renders_jsonl() {
        let path = scenario_file("topology ring 4\ngranularity per-pair\nall-pairs 12000\n");
        let out = run_full(argv(&[
            "coverage",
            path.to_str().unwrap(),
            "--shards",
            "2",
            "--json",
        ]))
        .unwrap();
        assert_eq!(out.exit_code, 0, "{}", out.report);
        let lines: Vec<&str> = out.report.lines().collect();
        assert!(lines[0].contains("\"event\":\"coverage\""), "{}", lines[0]);
        assert!(lines[0].contains("\"shards\":2"), "{}", lines[0]);
        assert!(
            lines[1..]
                .iter()
                .all(|l| l.contains("\"event\":\"coverage-finding\"")),
            "{}",
            out.report
        );
        assert!(
            out.report.contains("\"kind\":\"row-share-absorption\""),
            "{}",
            out.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn interleave_bounded_sample_is_sound_and_deterministic() {
        let path =
            scenario_file("topology fattree 4\ngranularity per-pair\nall-pairs-sample 1000 60 7\n");
        let cmd = |extra: &[&str]| {
            let mut parts = vec!["interleave", path.to_str().unwrap()];
            parts.extend_from_slice(extra);
            run_full(argv(&parts)).unwrap()
        };
        let human = cmd(&[
            "--updates=1",
            "--segments=2",
            "--schedules=2",
            "--seed=5",
            "--no-dropper",
            "--no-fanout",
        ]);
        assert_eq!(human.exit_code, 0, "{}", human.report);
        assert!(
            human.report.contains("schedules: 2 explored"),
            "{}",
            human.report
        );
        assert!(
            human.report.contains("verdict: all 2 schedules sound"),
            "{}",
            human.report
        );
        let json_args = [
            "--updates=1",
            "--segments=2",
            "--schedules=2",
            "--seed=5",
            "--no-dropper",
            "--no-fanout",
            "--json",
        ];
        let a = cmd(&json_args);
        let b = cmd(&json_args);
        assert_eq!(a.exit_code, 0, "{}", a.report);
        assert_eq!(
            a.report, b.report,
            "same seed must give byte-identical logs"
        );
        let lines: Vec<&str> = a.report.lines().collect();
        assert!(
            lines[0].contains("\"event\":\"interleave-plan\""),
            "{}",
            lines[0]
        );
        assert!(
            lines.last().unwrap().contains("\"violations\":0"),
            "{}",
            a.report
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn coverage_strict_refuses_run_and_stream_with_exit_4() {
        let path = scenario_file("topology ring 4\ngranularity per-pair\nall-pairs 12000\n");
        let run_out = run_full(argv(&[
            "run",
            path.to_str().unwrap(),
            "--epochs",
            "1",
            "--coverage-strict",
        ]))
        .unwrap();
        assert_eq!(run_out.exit_code, 4, "{}", run_out.report);
        assert!(
            run_out.report.contains("exit 4: --coverage-strict"),
            "{}",
            run_out.report
        );
        let stream_out = run_full(argv(&[
            "stream",
            path.to_str().unwrap(),
            "--duration-ms",
            "50",
            "--regions",
            "2",
            "--coverage-strict",
        ]))
        .unwrap();
        assert_eq!(stream_out.exit_code, 4, "{}", stream_out.report);
        // Without the flag the same scenario runs to completion, exit 0.
        let plain = run_full(argv(&[
            "stream",
            path.to_str().unwrap(),
            "--duration-ms",
            "50",
            "--regions",
            "2",
        ]))
        .unwrap();
        assert_eq!(plain.exit_code, 0, "{}", plain.report);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn scenario_templates_parse() {
        for family in ["fattree", "bcube", "dcell", "stanford", "linear", "ring"] {
            let out = run(argv(&["scenario", family])).unwrap();
            let body: String = out
                .lines()
                .filter(|l| !l.starts_with('#'))
                .collect::<Vec<_>>()
                .join("\n");
            foces_controlplane::scenario::Scenario::parse(&body)
                .unwrap_or_else(|e| panic!("{family}: {e}"));
        }
        assert!(run(argv(&["scenario", "marsnet"])).is_err());
    }

    #[test]
    fn missing_file_reports_path() {
        let e = run(argv(&["topo", "/no/such/file.foces"])).unwrap_err();
        assert!(e.to_string().contains("/no/such/file.foces"));
    }
}
