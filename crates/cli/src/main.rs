//! `foces` — the command-line entry point. All logic lives in
//! [`commands`]; `main` only wires argv and exit codes.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&raw) {
        Ok(out) => {
            print!("{}", out.report);
            if out.exit_code != 0 {
                std::process::exit(out.exit_code);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
