//! CSR kernels shared by the solve engine and the core detection machinery:
//! residual checks, per-group (suspicion) attribution, and the
//! coverage-analysis absorption solve — all `O(nnz)` per call, so the
//! Byzantine and coverage layers stop densifying on large systems.

use crate::numeric::SparseFactor;
use foces_linalg::{CsrMatrix, LinalgError};

/// Relative normal-equation residual: returns `(rhs − Hᵀ(H x), ‖·‖/‖rhs‖)`.
///
/// This is the acceptance check both the sparse direct path and the dense
/// `FactorCache` warm path gate on — two mat-vecs, never a Gram.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn normal_residual(
    h: &CsrMatrix,
    x: &[f64],
    rhs: &[f64],
) -> Result<(Vec<f64>, f64), LinalgError> {
    let fitted = h.matvec(x)?;
    let back = h.transpose_matvec(&fitted)?;
    let mut r = vec![0.0f64; rhs.len()];
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for ((ri, &bi), &rhsi) in r.iter_mut().zip(&back).zip(rhs) {
        *ri = rhsi - bi;
        num += *ri * *ri;
        den += rhsi * rhsi;
    }
    let rel = if den > 0.0 {
        (num / den).sqrt()
    } else {
        num.sqrt()
    };
    Ok((r, rel))
}

/// Per-row absolute residuals `|counters − H x|` — the paper's per-rule
/// error vector that `judge()` ranks, computed without materializing H.
///
/// # Errors
///
/// [`LinalgError::DimensionMismatch`] on shape mismatch.
pub fn abs_residual(h: &CsrMatrix, x: &[f64], counters: &[f64]) -> Result<Vec<f64>, LinalgError> {
    if counters.len() != h.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "abs_residual: matrix is {}x{} but counters has length {}",
            h.rows(),
            h.cols(),
            counters.len()
        )));
    }
    let fitted = h.matvec(x)?;
    Ok(counters
        .iter()
        .zip(&fitted)
        .map(|(c, f)| (c - f).abs())
        .collect())
}

/// Sums a per-row score into per-group totals via a row→group map
/// (suspicion attribution: rows are rules, groups are switches).
///
/// Rows whose group id is `usize::MAX` are unattributed and skipped.
pub fn per_group_mass(row_score: &[f64], group_of_row: &[usize], groups: usize) -> Vec<f64> {
    let mut mass = vec![0.0f64; groups];
    for (&score, &g) in row_score.iter().zip(group_of_row) {
        if g != usize::MAX && g < groups {
            mass[g] += score;
        }
    }
    mass
}

/// `Hᵀ u_S` for an indicator vector over the given rows, gathered straight
/// from CSR storage — the coverage analyzer's absorption right-hand side
/// without allocating the m-length indicator.
pub fn rows_indicator_rhs(h: &CsrMatrix, rows: &[usize]) -> Vec<f64> {
    let mut out = vec![0.0f64; h.cols()];
    for &r in rows {
        for (j, v) in h.row_iter(r) {
            out[j] += v;
        }
    }
    out
}

/// Coverage absorption via the sparse factor: projects the indicator of
/// `rows` onto the column space of `h` and returns
/// `(residual_norm, coefficients)` where `residual_norm = ‖u − H x‖` for
/// the projection coefficients `x`.
///
/// The residual is expanded as `‖Hx‖² − 2·Σ_{r∈rows}(Hx)_r + |rows|` so the
/// sparse indicator never has to be materialized against a dense fit.
///
/// # Errors
///
/// Propagates solve/shape errors from the factor and mat-vec.
pub fn absorption_coefficients(
    h: &CsrMatrix,
    factor: &SparseFactor,
    rows: &[usize],
) -> Result<(f64, Vec<f64>), LinalgError> {
    let rhs = rows_indicator_rhs(h, rows);
    let x = factor.solve(&rhs)?;
    let fitted = h.matvec(&x)?;
    let fit_sq: f64 = fitted.iter().map(|v| v * v).sum();
    let cross: f64 = rows.iter().map(|&r| fitted[r]).sum();
    let resid_sq = (fit_sq - 2.0 * cross + rows.len() as f64).max(0.0);
    Ok((resid_sq.sqrt(), x))
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::DenseMatrix;

    fn h() -> CsrMatrix {
        CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[0.0, 1.0], &[1.0, 1.0]]).unwrap(),
        )
    }

    #[test]
    fn normal_residual_is_zero_at_the_solution() {
        let h = h();
        let x = [2.0, -1.0];
        let b = h.matvec(&x).unwrap();
        let rhs = h.transpose_matvec(&b).unwrap();
        let (_, rel) = normal_residual(&h, &x, &rhs).unwrap();
        assert!(rel < 1e-12);
    }

    #[test]
    fn abs_residual_matches_manual_computation() {
        let h = h();
        let x = [1.0, 1.0];
        let counters = [1.5, 2.0, 0.5, 2.0];
        let r = abs_residual(&h, &x, &counters).unwrap();
        assert_eq!(r, vec![0.5, 0.0, 0.5, 0.0]);
        assert!(abs_residual(&h, &x, &[0.0; 3]).is_err());
    }

    #[test]
    fn per_group_mass_skips_unattributed_rows() {
        let mass = per_group_mass(&[1.0, 2.0, 4.0, 8.0], &[0, 1, usize::MAX, 0], 2);
        assert_eq!(mass, vec![9.0, 2.0]);
    }

    #[test]
    fn indicator_rhs_matches_transpose_matvec() {
        let h = h();
        let rows = [1usize, 3];
        let mut u = vec![0.0; 4];
        for &r in &rows {
            u[r] = 1.0;
        }
        assert_eq!(
            rows_indicator_rhs(&h, &rows),
            h.transpose_matvec(&u).unwrap()
        );
    }

    #[test]
    fn absorption_matches_dense_projection() {
        // Row 0 is exactly column 0 minus rows 1&3's shared structure;
        // compare against the explicit dense computation.
        let h = h();
        let gram = h.gram_csr();
        let f = SparseFactor::factor_fresh(&gram).unwrap();
        let rows = [0usize, 2];
        let (resid, x) = absorption_coefficients(&h, &f, &rows).unwrap();
        // Dense reference.
        let mut u = [0.0; 4];
        for &r in &rows {
            u[r] = 1.0;
        }
        let fitted = h.matvec(&x).unwrap();
        let explicit: f64 = u
            .iter()
            .zip(&fitted)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!((resid - explicit).abs() < 1e-12);
    }
}
