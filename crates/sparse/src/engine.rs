//! The solve engine: a [`SolveBackend`] trait the dense path also
//! implements, plus [`SparseEngine`] — the sparse-first ladder (symbolic
//! reuse → sparse Cholesky → preconditioned CGLS) with residual-verified
//! acceptance mirroring `FactorCache`'s warm/cold discipline.

use crate::kernels::normal_residual;
use crate::numeric::SparseFactor;
use crate::pcgls::{pcgls, Jacobi};
use crate::symbolic::SymbolicCholesky;
use foces_linalg::{Cholesky, CsrMatrix, LinalgError};
use std::fmt;
use std::str::FromStr;

/// Which solve backend a detector/solver should use.
///
/// `Dense` is the historical default and stays bit-identical with every
/// golden in the repo; `Sparse` routes through [`SparseEngine`]; `Auto`
/// picks per system: dense below [`BackendKind::AUTO_DENSE_LIMIT`] basis
/// columns (where the dense factor and its warm rank-one updates win),
/// sparse above it (where the dense Gram stops being allocatable long
/// before it stops being slow).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum BackendKind {
    /// Dense Gram + dense Cholesky/`FactorCache` (the historical path).
    #[default]
    Dense,
    /// Sparse-first: AMD + sparse Cholesky, PCGLS fallback.
    Sparse,
    /// Dense for small bases, sparse once the basis outgrows them.
    Auto,
}

/// A backend resolved for a concrete system size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedBackend {
    /// Use the dense path.
    Dense,
    /// Use the sparse engine.
    Sparse,
}

impl BackendKind {
    /// Basis-column count above which `Auto` switches to the sparse engine.
    ///
    /// Below this the dense Gram is ≤8 MiB and the dense factor plus warm
    /// rank-one updates are hard to beat; above it the sparse factor's
    /// near-linear fill takes over.
    pub const AUTO_DENSE_LIMIT: usize = 1024;

    /// Resolves `Auto` against a concrete basis size.
    pub fn resolve(self, basis_cols: usize) -> ResolvedBackend {
        match self {
            BackendKind::Dense => ResolvedBackend::Dense,
            BackendKind::Sparse => ResolvedBackend::Sparse,
            BackendKind::Auto => {
                if basis_cols > Self::AUTO_DENSE_LIMIT {
                    ResolvedBackend::Sparse
                } else {
                    ResolvedBackend::Dense
                }
            }
        }
    }

    /// Stable lowercase name (CLI flag value, JSONL field).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Sparse => "sparse",
            BackendKind::Auto => "auto",
        }
    }

    /// Stable numeric code for flat metrics structs.
    pub fn code(self) -> u64 {
        match self {
            BackendKind::Dense => 0,
            BackendKind::Sparse => 1,
            BackendKind::Auto => 2,
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "dense" => Ok(BackendKind::Dense),
            "sparse" => Ok(BackendKind::Sparse),
            "auto" => Ok(BackendKind::Auto),
            other => Err(format!(
                "unknown backend '{other}' (expected dense, sparse, or auto)"
            )),
        }
    }
}

/// How a [`BasisSolve`] was actually produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Dense Gram + dense Cholesky.
    DenseCholesky,
    /// Sparse Gram + AMD-ordered sparse Cholesky.
    SparseCholesky,
    /// Preconditioned CGLS (no Gram formed).
    Pcgls,
}

impl fmt::Display for SolveMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SolveMethod::DenseCholesky => "dense-cholesky",
            SolveMethod::SparseCholesky => "sparse-cholesky",
            SolveMethod::Pcgls => "pcgls",
        })
    }
}

/// Outcome of a basis solve through a [`SolveBackend`].
#[derive(Debug, Clone)]
pub struct BasisSolve {
    /// Least-squares solution over the basis columns.
    pub x: Vec<f64>,
    /// Iterations spent (0 for direct methods).
    pub iterations: u64,
    /// Which rung of the ladder produced the answer.
    pub method: SolveMethod,
    /// Whether cross-epoch state (symbolic analysis / preconditioner) was
    /// reused rather than rebuilt — the sparse analogue of a warm factor.
    pub reused: bool,
}

/// A least-squares basis solver: given the duplicate-free basis `H` and raw
/// counters `y`, produce `argmin ‖H x − y‖`.
///
/// Both the dense path and [`SparseEngine`] implement this, so
/// `core::solver` / `core::incremental` / shard workers select a backend
/// instead of hard-coding dense storage.
pub trait SolveBackend {
    /// Stable backend label for logs and metrics.
    fn label(&self) -> &'static str;

    /// Solves `min ‖H x − counters‖` over the basis columns.
    ///
    /// # Errors
    ///
    /// Typed [`LinalgError`] on degenerate or oversized systems.
    fn solve_basis(&mut self, h: &CsrMatrix, counters: &[f64]) -> Result<BasisSolve, LinalgError>;
}

/// The historical dense path behind the [`SolveBackend`] trait: dense Gram
/// (allocation-guarded) + dense Cholesky.
#[derive(Debug, Clone, Copy, Default)]
pub struct DenseBackend;

impl SolveBackend for DenseBackend {
    fn label(&self) -> &'static str {
        "dense"
    }

    fn solve_basis(&mut self, h: &CsrMatrix, counters: &[f64]) -> Result<BasisSolve, LinalgError> {
        let gram = h.gram_dense()?;
        let rhs = h.transpose_matvec(counters)?;
        let x = Cholesky::factor(&gram)?.solve(&rhs)?;
        Ok(BasisSolve {
            x,
            iterations: 0,
            method: SolveMethod::DenseCholesky,
            reused: false,
        })
    }
}

/// Tuning knobs for [`SparseEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineOptions {
    /// Basis sizes up to this take the sparse direct (Cholesky) rung;
    /// larger systems go straight to PCGLS without assembling a Gram.
    pub direct_limit: usize,
    /// Predicted factor nonzeros above which the direct rung is skipped
    /// even below `direct_limit` (fill blow-up guard).
    pub fill_limit: usize,
    /// PCGLS convergence tolerance (relative normal-residual).
    pub tol: f64,
    /// PCGLS iteration budget.
    pub max_iter: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            direct_limit: 4096,
            fill_limit: 8_000_000,
            tol: 1e-12,
            max_iter: 50_000,
        }
    }
}

/// Relative normal-residual a direct sparse solve must meet to be accepted
/// without falling through to PCGLS — the same 1e-6 gate the dense
/// `FactorCache` warm path refines against.
pub const ACCEPT_TOL: f64 = 1e-6;

/// The sparse-first solve engine.
///
/// Cross-epoch state mirrors `FactorCache`'s warm/cold ladder:
///
/// * the **symbolic analysis** (ordering, etree, column counts) is keyed on
///   a pattern fingerprint and reused while the Gram pattern is stable —
///   steady-state epochs pay only the numeric factorization;
/// * the **PCGLS preconditioner** (column norms) is reused until
///   [`SparseEngine::note_rank_growth`] reports FcmDelta churn, which is
///   when column norms actually move.
#[derive(Debug, Clone, Default)]
pub struct SparseEngine {
    opts: EngineOptions,
    symbolic: Option<SymbolicCholesky>,
    precond: Option<Jacobi>,
}

impl SparseEngine {
    /// Engine with explicit options.
    pub fn new(opts: EngineOptions) -> Self {
        SparseEngine {
            opts,
            symbolic: None,
            precond: None,
        }
    }

    /// Drops all cross-epoch state (topology change, slice reconfiguration).
    pub fn invalidate(&mut self) {
        self.symbolic = None;
        self.precond = None;
    }

    /// Signals that the FCM gained/changed `grown` columns since the last
    /// solve; a nonzero delta invalidates the preconditioner (column norms
    /// shifted) while the symbolic analysis re-validates itself via the
    /// pattern fingerprint on the next direct solve.
    pub fn note_rank_growth(&mut self, grown: usize) {
        if grown > 0 {
            self.precond = None;
        }
    }

    /// Whether any cross-epoch state is currently held.
    pub fn is_warm(&self) -> bool {
        self.symbolic.is_some() || self.precond.is_some()
    }

    fn solve_direct(
        &mut self,
        h: &CsrMatrix,
        rhs: &[f64],
    ) -> Result<Option<BasisSolve>, LinalgError> {
        let gram = h.gram_csr();
        let mut reused = true;
        if !self.symbolic.as_ref().is_some_and(|s| s.matches(&gram)) {
            self.symbolic = Some(SymbolicCholesky::analyze(&gram));
            reused = false;
        }
        let sym = self.symbolic.as_ref().expect("just installed");
        if sym.lnz() > self.opts.fill_limit {
            return Ok(None);
        }
        let factor = match SparseFactor::factor(sym, &gram) {
            Ok(f) => f,
            Err(
                LinalgError::NotPositiveDefinite { .. } | LinalgError::SingularTriangular { .. },
            ) => {
                // Rank-deficient basis: the direct rung cannot serve it, let
                // PCGLS produce the minimum-norm answer. The stale analysis
                // is dropped so a later full-rank pattern re-analyzes.
                self.symbolic = None;
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        let mut x = factor.solve(rhs)?;
        // Residual-verified acceptance with one refinement step, the same
        // discipline as the dense warm path.
        let (r, rel) = normal_residual(h, &x, rhs)?;
        if rel > ACCEPT_TOL {
            let dx = factor.solve(&r)?;
            for (xi, di) in x.iter_mut().zip(&dx) {
                *xi += di;
            }
            let (_, rel2) = normal_residual(h, &x, rhs)?;
            if rel2 > ACCEPT_TOL {
                return Ok(None);
            }
        }
        Ok(Some(BasisSolve {
            x,
            iterations: 0,
            method: SolveMethod::SparseCholesky,
            reused,
        }))
    }
}

impl SolveBackend for SparseEngine {
    fn label(&self) -> &'static str {
        "sparse"
    }

    fn solve_basis(&mut self, h: &CsrMatrix, counters: &[f64]) -> Result<BasisSolve, LinalgError> {
        let n = h.cols();
        let rhs = h.transpose_matvec(counters)?;
        if n <= self.opts.direct_limit {
            if let Some(solve) = self.solve_direct(h, &rhs)? {
                return Ok(solve);
            }
        }
        let mut reused = true;
        if self.precond.as_ref().is_none_or(|p| p.dim() != n) {
            self.precond = Some(Jacobi::from_matrix(h));
            reused = false;
        }
        let pc = self.precond.as_ref().expect("just installed");
        let out = pcgls(h, counters, pc, self.opts.tol, self.opts.max_iter)?;
        Ok(BasisSolve {
            x: out.x,
            iterations: out.iterations as u64,
            method: SolveMethod::Pcgls,
            reused,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::{DenseMatrix, Triplet};

    fn paper_h() -> CsrMatrix {
        CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&[
                &[1., 0., 0.],
                &[1., 0., 0.],
                &[1., 1., 0.],
                &[0., 0., 0.],
                &[0., 0., 1.],
                &[1., 1., 1.],
            ])
            .unwrap(),
        )
    }

    #[test]
    fn backend_kind_round_trips_strings() {
        for k in [BackendKind::Dense, BackendKind::Sparse, BackendKind::Auto] {
            assert_eq!(k.name().parse::<BackendKind>().unwrap(), k);
        }
        assert!("fancy".parse::<BackendKind>().is_err());
    }

    #[test]
    fn auto_resolves_by_basis_size() {
        assert_eq!(BackendKind::Auto.resolve(10), ResolvedBackend::Dense);
        assert_eq!(
            BackendKind::Auto.resolve(BackendKind::AUTO_DENSE_LIMIT + 1),
            ResolvedBackend::Sparse
        );
        assert_eq!(BackendKind::Sparse.resolve(1), ResolvedBackend::Sparse);
    }

    #[test]
    fn sparse_engine_matches_dense_backend() {
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let mut dense = DenseBackend;
        let mut sparse = SparseEngine::default();
        let xd = dense.solve_basis(&h, &y).unwrap();
        let xs = sparse.solve_basis(&h, &y).unwrap();
        assert_eq!(xs.method, SolveMethod::SparseCholesky);
        for (a, b) in xd.x.iter().zip(&xs.x) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn symbolic_reuse_is_reported() {
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let mut engine = SparseEngine::default();
        let first = engine.solve_basis(&h, &y).unwrap();
        assert!(!first.reused);
        let second = engine.solve_basis(&h, &y).unwrap();
        assert!(second.reused);
        engine.invalidate();
        let third = engine.solve_basis(&h, &y).unwrap();
        assert!(!third.reused);
    }

    #[test]
    fn rank_deficient_basis_falls_through_to_pcgls() {
        // Duplicate columns → singular Gram → direct rung refuses, PCGLS
        // returns a consistent least-squares fit.
        let h = CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&[&[1., 1.], &[1., 1.], &[2., 2.]]).unwrap(),
        );
        let y = [2.0, 2.0, 4.0];
        let mut engine = SparseEngine::default();
        let out = engine.solve_basis(&h, &y).unwrap();
        assert_eq!(out.method, SolveMethod::Pcgls);
        let fit = h.matvec(&out.x).unwrap();
        for (f, b) in fit.iter().zip(&y) {
            assert!((f - b).abs() < 1e-6);
        }
    }

    #[test]
    fn oversized_direct_limit_forces_pcgls() {
        let h = paper_h();
        let y = [3., 3., 4., 3., 8., 12.];
        let mut engine = SparseEngine::new(EngineOptions {
            direct_limit: 0,
            ..EngineOptions::default()
        });
        let out = engine.solve_basis(&h, &y).unwrap();
        assert_eq!(out.method, SolveMethod::Pcgls);
        assert!(out.iterations > 0);
        // Preconditioner reuse across epochs, invalidated by rank growth.
        let again = engine.solve_basis(&h, &y).unwrap();
        assert!(again.reused);
        engine.note_rank_growth(3);
        let after_churn = engine.solve_basis(&h, &y).unwrap();
        assert!(!after_churn.reused);
    }

    #[test]
    fn dense_backend_surfaces_allocation_guard() {
        let mut t = vec![Triplet {
            row: 0,
            col: 99_999,
            value: 1.0,
        }];
        t.push(Triplet {
            row: 1,
            col: 0,
            value: 1.0,
        });
        let wide = CsrMatrix::from_triplets(2, 100_000, &t).unwrap();
        let mut dense = DenseBackend;
        let err = dense.solve_basis(&wide, &[1.0, 1.0]).unwrap_err();
        assert!(matches!(err, LinalgError::AllocationTooLarge { .. }));
    }
}
