//! Symbolic Cholesky analysis: elimination tree, column counts, and a
//! pattern fingerprint that lets the analysis be reused across epochs.
//!
//! FOCES re-solves the same system every collection epoch; the Gram pattern
//! only changes when rules or flows churn. Splitting the factorization into
//! a symbolic phase (ordering + elimination tree + column counts, pattern
//! only) and a numeric phase (values only) means steady-state epochs pay
//! just the numeric cost — the sparse analogue of `FactorCache`'s warm path.

use crate::ordering::{amd_order, invert_permutation};
use foces_linalg::CsrMatrix;

/// Sentinel for "no parent" in the elimination tree.
pub(crate) const NONE: usize = usize::MAX;

/// Reusable symbolic analysis of a symmetric positive-definite pattern.
#[derive(Debug, Clone)]
pub struct SymbolicCholesky {
    pub(crate) n: usize,
    /// `perm[k]` = original index eliminated at step k (AMD order).
    pub(crate) perm: Vec<usize>,
    /// Inverse permutation: `iperm[orig] = k`.
    pub(crate) iperm: Vec<usize>,
    /// Elimination tree over permuted indices (`NONE` = root).
    pub(crate) parent: Vec<usize>,
    /// Nonzeros per column of L, including the diagonal.
    pub(crate) colcount: Vec<usize>,
    /// Total nonzeros in L.
    pub(crate) lnz: usize,
    /// FNV-1a hash of the (unpermuted) pattern, for cross-epoch reuse.
    fingerprint: u64,
}

impl SymbolicCholesky {
    /// Runs the full symbolic phase on a symmetric pattern: AMD ordering,
    /// elimination tree, and per-column factor counts.
    ///
    /// # Panics
    ///
    /// Panics if `gram` is not square.
    pub fn analyze(gram: &CsrMatrix) -> Self {
        let n = gram.rows();
        assert_eq!(n, gram.cols(), "symbolic analysis needs a square matrix");
        let perm = amd_order(gram);
        let iperm = invert_permutation(&perm);
        let (rowptr, rowidx, _) = permuted_lower(gram, &iperm);
        let parent = etree(n, &rowptr, &rowidx);
        // Column counts via one ereach pass per row: row k of L has a
        // nonzero in column j exactly when j is on an etree path from a
        // pattern entry of permuted row k up to k.
        let mut colcount = vec![1usize; n];
        let mut w = vec![NONE; n];
        let mut s = vec![0usize; n];
        for k in 0..n {
            let row = strict_lower(&rowidx[rowptr[k]..rowptr[k + 1]], k);
            let top = ereach(row, k, &parent, &mut w, &mut s);
            for &j in &s[top..] {
                colcount[j] += 1;
            }
        }
        let lnz = colcount.iter().sum();
        SymbolicCholesky {
            n,
            perm,
            iperm,
            parent,
            colcount,
            lnz,
            fingerprint: fingerprint_of(gram),
        }
    }

    /// Whether this analysis applies to `gram` (same dimension and the same
    /// sparsity pattern, checked via the fingerprint).
    pub fn matches(&self, gram: &CsrMatrix) -> bool {
        self.n == gram.rows()
            && gram.rows() == gram.cols()
            && self.fingerprint == fingerprint_of(gram)
    }

    /// Dimension of the analyzed matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Predicted nonzeros in the Cholesky factor L (including diagonals).
    pub fn lnz(&self) -> usize {
        self.lnz
    }
}

/// FNV-1a over the structural identity of a CSR matrix (shape + pattern,
/// values excluded). Cheap enough to run every epoch; a collision would only
/// ever skip a symbolic refresh, and the numeric factor would then fail
/// loudly rather than produce a wrong answer, because the factor's scatter
/// asserts pattern containment via the elimination tree.
pub(crate) fn fingerprint_of(m: &CsrMatrix) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(m.rows() as u64);
    mix(m.cols() as u64);
    for &p in m.indptr() {
        mix(p as u64);
    }
    for &j in m.indices() {
        mix(j as u64);
    }
    h
}

/// Drops the diagonal entry (== `k`) from a sorted permuted-lower row.
pub(crate) fn strict_lower(row: &[usize], k: usize) -> &[usize] {
    match row.last() {
        Some(&last) if last == k => &row[..row.len() - 1],
        _ => row,
    }
}

/// Extracts the lower triangle (including diagonal) of the symmetrically
/// permuted matrix, in CSR form over permuted indices with each row sorted.
/// Returns `(rowptr, colidx, values)`.
pub(crate) fn permuted_lower(
    gram: &CsrMatrix,
    iperm: &[usize],
) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
    let n = gram.rows();
    let mut rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
    for orig_row in 0..n {
        let k = iperm[orig_row];
        for (orig_col, v) in gram.row_iter(orig_row) {
            let i = iperm[orig_col];
            if i <= k {
                rows[k].push((i, v));
            }
        }
    }
    let mut rowptr = Vec::with_capacity(n + 1);
    let mut colidx = Vec::new();
    let mut values = Vec::new();
    rowptr.push(0);
    for row in &mut rows {
        row.sort_unstable_by_key(|&(i, _)| i);
        for &(i, v) in row.iter() {
            colidx.push(i);
            values.push(v);
        }
        rowptr.push(colidx.len());
    }
    (rowptr, colidx, values)
}

/// Liu's elimination-tree algorithm with path compression: `parent[j]` is
/// the first row above `j` whose factor row reaches column `j`.
pub(crate) fn etree(n: usize, rowptr: &[usize], rowidx: &[usize]) -> Vec<usize> {
    let mut parent = vec![NONE; n];
    let mut ancestor = vec![NONE; n];
    for k in 0..n {
        for &i0 in &rowidx[rowptr[k]..rowptr[k + 1]] {
            let mut i = i0;
            while i != NONE && i < k {
                let next = ancestor[i];
                ancestor[i] = k;
                if next == NONE {
                    parent[i] = k;
                    break;
                }
                i = next;
            }
        }
    }
    parent
}

/// Computes the nonzero pattern of row `k` of L (strictly below the
/// diagonal) as etree paths from each pattern entry of the permuted row up
/// toward `k`. Results land in `s[top..]` in topological order — every
/// column appears before its etree parent — which is exactly the order the
/// up-looking numeric factorization must process them in.
///
/// `w` is a workspace stamped with `k` to deduplicate; `s` is the output
/// stack. Returns `top`, the start index of the pattern within `s`.
pub(crate) fn ereach(
    row: &[usize],
    k: usize,
    parent: &[usize],
    w: &mut [usize],
    s: &mut [usize],
) -> usize {
    let n = s.len();
    let mut top = n;
    w[k] = k;
    for &i0 in row {
        let mut i = i0;
        let mut len = 0;
        while i != NONE && i < k && w[i] != k {
            s[len] = i;
            len += 1;
            w[i] = k;
            i = parent[i];
        }
        while len > 0 {
            len -= 1;
            top -= 1;
            s[top] = s[len];
        }
    }
    top
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::{DenseMatrix, Triplet};

    fn arrow_matrix(n: usize) -> CsrMatrix {
        // Arrowhead: dense last row/col + diagonal. Natural order fills the
        // factor completely; a fill-reducing order keeps it linear.
        let mut t = Vec::new();
        for i in 0..n {
            t.push(Triplet {
                row: i,
                col: i,
                value: 4.0 + i as f64,
            });
        }
        for i in 0..n - 1 {
            t.push(Triplet {
                row: i,
                col: n - 1,
                value: 1.0,
            });
            t.push(Triplet {
                row: n - 1,
                col: i,
                value: 1.0,
            });
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn arrowhead_stays_fill_free_under_amd() {
        let a = arrow_matrix(50);
        let sym = SymbolicCholesky::analyze(&a);
        // With the hub eliminated last, L has exactly the lower-triangle
        // pattern of A: n diagonals + (n-1) hub entries.
        assert_eq!(sym.lnz(), 50 + 49);
    }

    #[test]
    fn fingerprint_tracks_pattern_not_values() {
        let a = arrow_matrix(8);
        let sym = SymbolicCholesky::analyze(&a);
        assert!(sym.matches(&a));
        // Same pattern, different values: still matches.
        let scaled = CsrMatrix::from_dense(&{
            let mut d = a.to_dense();
            for i in 0..8 {
                d.set(i, i, d.get(i, i) * 2.0);
            }
            d
        });
        assert!(sym.matches(&scaled));
        // Different pattern: no longer matches.
        let other = arrow_matrix(9);
        assert!(!sym.matches(&other));
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let n = 6;
        let mut d = DenseMatrix::zeros(n, n);
        for i in 0..n {
            d.set(i, i, 2.0);
            if i > 0 {
                d.set(i, i - 1, -1.0);
                d.set(i - 1, i, -1.0);
            }
        }
        let m = CsrMatrix::from_dense(&d);
        let iperm: Vec<usize> = (0..n).collect();
        let (rp, ri, _) = permuted_lower(&m, &iperm);
        let parent = etree(n, &rp, &ri);
        for (j, &p) in parent.iter().enumerate().take(n - 1) {
            assert_eq!(p, j + 1);
        }
        assert_eq!(parent[n - 1], NONE);
    }
}
