//! Preconditioned CGLS: conjugate-gradient least squares on the
//! column-scaled system, with a preconditioner cheap enough to build in
//! `O(nnz)` and worth reusing across epochs.
//!
//! CGLS convergence on FOCES matrices is governed by the spread of column
//! norms — a core-layer rule shared by thousands of flows has a column norm
//! orders of magnitude above an edge rule's. Scaling each column to unit
//! norm (Jacobi on the normal equations) collapses that spread without ever
//! forming `AᵀA`, which matters at FatTree(16) scale where even the sparse
//! Gram is too expensive to assemble per epoch.

use foces_linalg::{CsrMatrix, LinalgError};

/// Diagonal (column-norm) preconditioner for [`pcgls`].
///
/// Built in one `O(nnz)` sweep; the engine keeps it across epochs and
/// rebuilds only when `FcmDelta` reports rank growth (new/changed columns
/// shift the norms the scaling is based on).
#[derive(Debug, Clone)]
pub struct Jacobi {
    /// `1 / ‖A·e_j‖` per column (1.0 for empty columns).
    inv_scale: Vec<f64>,
}

impl Jacobi {
    /// Builds the preconditioner from the column norms of `a`.
    pub fn from_matrix(a: &CsrMatrix) -> Self {
        let mut sq = vec![0.0f64; a.cols()];
        for (&j, &v) in a.indices().iter().zip(a.values()) {
            sq[j] += v * v;
        }
        let inv_scale = sq
            .iter()
            .map(|&s| if s > 0.0 { 1.0 / s.sqrt() } else { 1.0 })
            .collect();
        Jacobi { inv_scale }
    }

    /// Number of columns this preconditioner was built for.
    pub fn dim(&self) -> usize {
        self.inv_scale.len()
    }

    fn scale(&self, v: &mut [f64]) {
        for (vi, &s) in v.iter_mut().zip(&self.inv_scale) {
            *vi *= s;
        }
    }
}

/// Result of a [`pcgls`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct PcglsOutcome {
    /// Least-squares solution estimate (in the original, unscaled basis).
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final preconditioned normal-equation residual norm.
    pub residual_norm: f64,
}

/// Preconditioned CGLS: solves `min ‖A x − b‖₂` by running CGLS on the
/// column-scaled matrix `B = A·S` (`S = diag(1/‖A·e_j‖)`) and returning
/// `x = S z`. Matches [`foces_linalg::cgls`] semantics: converged when the
/// (scaled) normal residual drops below `tol · ‖BᵀB b‖`-style target.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] on shape mismatch between `a`, `b`,
///   or the preconditioner.
/// * [`LinalgError::DidNotConverge`] if the iteration budget runs out.
pub fn pcgls(
    a: &CsrMatrix,
    b: &[f64],
    precond: &Jacobi,
    tol: f64,
    max_iter: usize,
) -> Result<PcglsOutcome, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch(format!(
            "pcgls: matrix is {}x{} but rhs has length {}",
            a.rows(),
            a.cols(),
            b.len()
        )));
    }
    if precond.dim() != a.cols() {
        return Err(LinalgError::DimensionMismatch(format!(
            "pcgls: preconditioner has {} columns but matrix has {}",
            precond.dim(),
            a.cols()
        )));
    }
    let n = a.cols();
    let mut z = vec![0.0f64; n];
    let mut r = b.to_vec();
    // s = Bᵀ r = S·(Aᵀ r)
    let mut s = a.transpose_matvec(&r)?;
    precond.scale(&mut s);
    let mut p = s.clone();
    let mut gamma: f64 = s.iter().map(|v| v * v).sum();
    let target = tol * gamma.sqrt().max(f64::MIN_POSITIVE);
    let mut iterations = max_iter;
    for iter in 0..=max_iter {
        if gamma.sqrt() <= target {
            iterations = iter;
            break;
        }
        if iter == max_iter {
            return Err(LinalgError::DidNotConverge {
                iterations: max_iter,
                residual: gamma.sqrt(),
            });
        }
        // q = B p = A·(S p)
        let mut sp = p.clone();
        precond.scale(&mut sp);
        let q = a.matvec(&sp)?;
        let qq: f64 = q.iter().map(|v| v * v).sum();
        if qq == 0.0 {
            iterations = iter;
            break;
        }
        let alpha = gamma / qq;
        for (zi, pi) in z.iter_mut().zip(&p) {
            *zi += alpha * pi;
        }
        for (ri, qi) in r.iter_mut().zip(&q) {
            *ri -= alpha * qi;
        }
        s = a.transpose_matvec(&r)?;
        precond.scale(&mut s);
        let gamma_new: f64 = s.iter().map(|v| v * v).sum();
        let beta = gamma_new / gamma;
        for (pi, si) in p.iter_mut().zip(&s) {
            *pi = si + beta * *pi;
        }
        gamma = gamma_new;
    }
    // Un-scale: x = S z.
    precond.scale(&mut z);
    Ok(PcglsOutcome {
        x: z,
        iterations,
        residual_norm: gamma.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::{cgls, DenseMatrix};

    fn paper_system() -> (CsrMatrix, Vec<f64>) {
        let d = DenseMatrix::from_rows(&[
            &[1., 0., 0.],
            &[1., 0., 0.],
            &[1., 1., 0.],
            &[0., 0., 0.],
            &[0., 0., 1.],
            &[1., 1., 1.],
        ])
        .unwrap();
        (CsrMatrix::from_dense(&d), vec![3., 3., 4., 3., 8., 12.])
    }

    #[test]
    fn matches_unpreconditioned_cgls_solution() {
        let (a, b) = paper_system();
        let pc = Jacobi::from_matrix(&a);
        let out = pcgls(&a, &b, &pc, 1e-12, 1000).unwrap();
        let plain = cgls(&a, &b, 1e-12, 1000).unwrap();
        for (x, y) in out.x.iter().zip(&plain.x) {
            assert!((x - y).abs() < 1e-8, "{x} vs {y}");
        }
    }

    #[test]
    fn badly_scaled_columns_converge_faster_with_preconditioner() {
        // One column 1000× heavier than the others: plain CGLS crawls,
        // scaled CGLS sees a well-conditioned system.
        let d = DenseMatrix::from_rows(&[
            &[1000.0, 1.0, 0.0],
            &[1000.0, 0.0, 1.0],
            &[0.0, 1.0, 1.0],
            &[1000.0, 1.0, 1.0],
        ])
        .unwrap();
        let a = CsrMatrix::from_dense(&d);
        let x_true = [0.002, 3.0, -1.5];
        let b = a.matvec(&x_true).unwrap();
        let pc = Jacobi::from_matrix(&a);
        let fast = pcgls(&a, &b, &pc, 1e-12, 200).unwrap();
        let slow = cgls(&a, &b, 1e-12, 200).unwrap();
        assert!(fast.iterations <= slow.iterations);
        for (x, t) in fast.x.iter().zip(&x_true) {
            assert!((x - t).abs() < 1e-6, "{x} vs {t}");
        }
    }

    #[test]
    fn zero_rhs_is_immediate() {
        let (a, _) = paper_system();
        let pc = Jacobi::from_matrix(&a);
        let out = pcgls(&a, &[0.0; 6], &pc, 1e-9, 10).unwrap();
        assert_eq!(out.iterations, 0);
        assert!(out.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dimension_mismatches_are_typed() {
        let (a, b) = paper_system();
        let pc = Jacobi::from_matrix(&a);
        assert!(pcgls(&a, &b[..4], &pc, 1e-9, 10).is_err());
        let wrong = Jacobi {
            inv_scale: vec![1.0; 2],
        };
        assert!(pcgls(&a, &b, &wrong, 1e-9, 10).is_err());
    }
}
