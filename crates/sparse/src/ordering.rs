//! Fill-reducing ordering: approximate minimum degree on the Gram pattern.
//!
//! Sparse Cholesky fill depends entirely on the elimination order. FOCES Gram
//! matrices inherit the FCM's locality — flows through the same pod share
//! rules — so a good symmetric permutation keeps the factor within a small
//! constant of the Gram's own nonzero count, while the natural order can fill
//! in quadratically. This module implements minimum degree on the quotient
//! graph (Amestoy/Davis/Duff style approximate external degrees with element
//! absorption), which is the standard fill-reducing heuristic for the
//! irregular, non-grid patterns flow matrices produce.

use foces_linalg::CsrMatrix;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Computes an approximate-minimum-degree elimination order for the
/// symmetric sparsity pattern of `pattern` (values are ignored; only the
/// structure matters). Returns `perm` with `perm[k]` = the original index
/// eliminated at step `k`.
///
/// Ties are broken by the lowest original index so the ordering — and hence
/// the factor and every solve built on it — is fully deterministic.
///
/// # Panics
///
/// Panics if `pattern` is not square.
pub fn amd_order(pattern: &CsrMatrix) -> Vec<usize> {
    let n = pattern.rows();
    assert_eq!(n, pattern.cols(), "amd_order needs a square pattern");
    // Quotient-graph state. `adj[u]` holds plain-edge neighbours not yet
    // covered by an element; `elem_of[u]` the elements whose boundary
    // contains u; `elems[e]` each element's boundary node list.
    let mut adj: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            pattern
                .row_iter(i)
                .map(|(j, _)| j)
                .filter(|&j| j != i)
                .collect()
        })
        .collect();
    let mut elem_of: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut elems: Vec<Vec<usize>> = Vec::new();
    let mut absorbed: Vec<bool> = Vec::new();
    let mut alive = vec![true; n];
    let mut degree: Vec<usize> = adj.iter().map(|a| a.len()).collect();
    // Lazy heap: stale entries are skipped when their recorded degree no
    // longer matches. `Reverse((degree, node))` makes the pop order
    // min-degree with deterministic lowest-index tie-break.
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
        (0..n).map(|i| Reverse((degree[i], i))).collect();
    let mut perm = Vec::with_capacity(n);
    // `stamp[u] == v` marks u as a boundary node of the pivot v currently
    // being eliminated (each pivot index is used exactly once, so pivot ids
    // double as fresh marker values).
    let mut stamp = vec![usize::MAX; n];

    while let Some(Reverse((d, v))) = heap.pop() {
        if !alive[v] || d != degree[v] {
            continue;
        }
        alive[v] = false;
        perm.push(v);

        // The new element's boundary L_v: alive plain neighbours plus the
        // alive boundaries of every element the pivot touched (those
        // elements are absorbed into the new one).
        let mut boundary: Vec<usize> = Vec::new();
        for &u in &adj[v] {
            if alive[u] && stamp[u] != v {
                stamp[u] = v;
                boundary.push(u);
            }
        }
        for &e in &elem_of[v] {
            for &u in &elems[e] {
                if alive[u] && stamp[u] != v {
                    stamp[u] = v;
                    boundary.push(u);
                }
            }
            absorbed[e] = true;
            elems[e].clear();
        }
        adj[v].clear();
        elem_of[v].clear();
        if boundary.is_empty() {
            continue;
        }

        let eid = elems.len();
        elems.push(boundary.clone());
        absorbed.push(false);

        // Refresh each boundary node: plain edges into the boundary (or the
        // pivot) are now covered by the element, dead/absorbed element
        // references are dropped, and the approximate degree is plain edges
        // plus each element boundary minus the node itself.
        for &u in &boundary {
            adj[u].retain(|&w| alive[w] && stamp[w] != v);
            elem_of[u].retain(|&e| !absorbed[e]);
            elem_of[u].push(eid);
            let d = adj[u].len()
                + elem_of[u]
                    .iter()
                    .map(|&e| elems[e].len().saturating_sub(1))
                    .sum::<usize>();
            degree[u] = d;
            heap.push(Reverse((d, u)));
        }
    }
    perm
}

/// Inverts a permutation: `iperm[perm[k]] == k`.
pub fn invert_permutation(perm: &[usize]) -> Vec<usize> {
    let mut iperm = vec![0usize; perm.len()];
    for (k, &orig) in perm.iter().enumerate() {
        iperm[orig] = k;
    }
    iperm
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::Triplet;

    fn sym_pattern(n: usize, edges: &[(usize, usize)]) -> CsrMatrix {
        let mut t: Vec<Triplet> = (0..n)
            .map(|i| Triplet {
                row: i,
                col: i,
                value: 1.0,
            })
            .collect();
        for &(i, j) in edges {
            t.push(Triplet {
                row: i,
                col: j,
                value: 1.0,
            });
            t.push(Triplet {
                row: j,
                col: i,
                value: 1.0,
            });
        }
        CsrMatrix::from_triplets(n, n, &t).unwrap()
    }

    #[test]
    fn order_is_a_permutation() {
        let p = sym_pattern(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5)]);
        let perm = amd_order(&p);
        let mut seen = [false; 6];
        for &v in &perm {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn star_center_is_eliminated_last() {
        // Star graph: leaves have degree 1, the hub degree n-1. Minimum
        // degree must defer the hub until its degree has collapsed
        // (eliminating it early would create a clique over all leaves).
        let edges: Vec<(usize, usize)> = (1..8).map(|i| (0, i)).collect();
        let p = sym_pattern(8, &edges);
        let perm = amd_order(&p);
        let hub_pos = perm.iter().position(|&v| v == 0).unwrap();
        assert!(hub_pos >= 6, "hub eliminated too early: {perm:?}");
    }

    #[test]
    fn diagonal_only_pattern_orders_by_index() {
        let p = sym_pattern(5, &[]);
        assert_eq!(amd_order(&p), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn invert_round_trips() {
        let perm = vec![2usize, 0, 3, 1];
        let iperm = invert_permutation(&perm);
        for (k, &orig) in perm.iter().enumerate() {
            assert_eq!(iperm[orig], k);
        }
    }
}
