//! # foces-sparse
//!
//! Sparse-first solve engine for FOCES detection at FatTree(16)+ scale.
//!
//! The FOCES flow-counter matrix is ~0.03 % dense, yet the historical solve
//! ladder runs on dense storage: a dense Gram, a dense Cholesky, dense
//! rank-one warm updates. That caps topology size at whatever a dense `n×n`
//! Gram can allocate. This crate makes the sparse path a first-class
//! citizen:
//!
//! * [`ordering`] — approximate minimum degree over the Gram sparsity
//!   pattern, the fill-reducing permutation everything downstream rides on;
//! * [`symbolic`] — elimination tree + column counts, fingerprinted so the
//!   analysis is reused across epochs while the pattern is stable;
//! * [`numeric`] — up-looking sparse Cholesky over a reusable symbolic
//!   analysis, with triangular solves;
//! * [`pcgls()`] — preconditioned CGLS whose column-norm preconditioner is
//!   reused across epochs and refreshed on FcmDelta rank growth;
//! * [`kernels`] — CSR residual/attribution/absorption kernels so the
//!   Byzantine and coverage layers stop densifying;
//! * [`engine`] — the [`SolveBackend`] trait (dense implements it too) and
//!   [`SparseEngine`], the ladder with residual-verified acceptance.
//!
//! Backend selection is [`BackendKind`]: `dense` (historical,
//! golden-stable), `sparse`, or `auto` (dense below
//! [`BackendKind::AUTO_DENSE_LIMIT`] basis columns, sparse above).

pub mod engine;
pub mod kernels;
pub mod numeric;
pub mod ordering;
pub mod pcgls;
pub mod symbolic;

pub use engine::{
    BackendKind, BasisSolve, DenseBackend, EngineOptions, ResolvedBackend, SolveBackend,
    SolveMethod, SparseEngine, ACCEPT_TOL,
};
pub use kernels::{
    abs_residual, absorption_coefficients, normal_residual, per_group_mass, rows_indicator_rhs,
};
pub use numeric::SparseFactor;
pub use ordering::{amd_order, invert_permutation};
pub use pcgls::{pcgls, Jacobi, PcglsOutcome};
pub use symbolic::SymbolicCholesky;
