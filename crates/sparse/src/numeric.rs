//! Numeric sparse Cholesky: an up-looking factorization over a reusable
//! [`SymbolicCholesky`] analysis, with forward/backward triangular solves.

use crate::symbolic::{ereach, permuted_lower, strict_lower, SymbolicCholesky, NONE};
use foces_linalg::{CsrMatrix, LinalgError};

/// Sparse Cholesky factor `P A Pᵀ = L Lᵀ`, stored column-compressed with the
/// diagonal entry first in every column (the layout both triangular solves
/// exploit).
#[derive(Debug, Clone)]
pub struct SparseFactor {
    n: usize,
    perm: Vec<usize>,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseFactor {
    /// Factors `gram` numerically using a prior symbolic analysis.
    ///
    /// The analysis must describe this pattern (same `analyze` input or a
    /// [`SymbolicCholesky::matches`] hit); the values may differ — that is
    /// the whole point of reuse across epochs.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] on shape mismatch with the analysis.
    /// * [`LinalgError::NotPositiveDefinite`] when a pivot falls below the
    ///   scale-aware tolerance — same classification as the dense
    ///   `Cholesky::factor`, so callers can keep their fallback ladders.
    pub fn factor(sym: &SymbolicCholesky, gram: &CsrMatrix) -> Result<Self, LinalgError> {
        let n = sym.n;
        if gram.rows() != n || gram.cols() != n {
            return Err(LinalgError::NotSquare {
                rows: gram.rows(),
                cols: gram.cols(),
            });
        }
        let (rowptr, rowidx_in, rowval_in) = permuted_lower(gram, &sym.iperm);
        let mut colptr = vec![0usize; n + 1];
        for j in 0..n {
            colptr[j + 1] = colptr[j] + sym.colcount[j];
        }
        let lnz = colptr[n];
        let mut rowidx = vec![0usize; lnz];
        let mut values = vec![0.0f64; lnz];
        // Slot colptr[j] is reserved for column j's diagonal (written when
        // row j finishes); subdiagonal entries append after it as later rows
        // are processed, so every column keeps its diagonal first.
        let mut fill: Vec<usize> = (0..n).map(|j| colptr[j] + 1).collect();
        // Scale-aware pivot tolerance matching the dense Cholesky.
        let max_abs = gram.values().iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
        let tol = foces_linalg::DEFAULT_TOL * max_abs.max(1.0);

        let mut w = vec![NONE; n];
        let mut s = vec![0usize; n];
        let mut x = vec![0.0f64; n];
        for k in 0..n {
            let row = &rowidx_in[rowptr[k]..rowptr[k + 1]];
            let vals = &rowval_in[rowptr[k]..rowptr[k + 1]];
            let pattern_row = strict_lower(row, k);
            let top = ereach(pattern_row, k, &sym.parent, &mut w, &mut s);
            // Scatter permuted row k of A into the workspace.
            for &j in &s[top..] {
                x[j] = 0.0;
            }
            let mut d = 0.0;
            for (&i, &v) in row.iter().zip(vals) {
                if i == k {
                    d = v;
                } else {
                    x[i] = v;
                }
            }
            // Up-looking solve against the already-built columns, in the
            // topological order ereach produced.
            for &j in &s[top..] {
                let lkj = x[j] / values[colptr[j]];
                x[j] = 0.0;
                for p in colptr[j] + 1..fill[j] {
                    x[rowidx[p]] -= values[p] * lkj;
                }
                d -= lkj * lkj;
                let p = fill[j];
                rowidx[p] = k;
                values[p] = lkj;
                fill[j] = p + 1;
            }
            if d <= tol {
                return Err(LinalgError::NotPositiveDefinite { pivot: k, value: d });
            }
            rowidx[colptr[k]] = k;
            values[colptr[k]] = d.sqrt();
        }
        Ok(SparseFactor {
            n,
            perm: sym.perm.clone(),
            colptr,
            rowidx,
            values,
        })
    }

    /// Convenience: symbolic + numeric in one call (no reuse).
    ///
    /// # Errors
    ///
    /// Same as [`SparseFactor::factor`].
    pub fn factor_fresh(gram: &CsrMatrix) -> Result<Self, LinalgError> {
        let sym = SymbolicCholesky::analyze(gram);
        Self::factor(&sym, gram)
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored nonzeros in L.
    pub fn lnz(&self) -> usize {
        self.values.len()
    }

    /// Solves `A x = rhs` via `P`, forward, backward, `Pᵀ`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `rhs.len() != dim()`.
    pub fn solve(&self, rhs: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.n;
        if rhs.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "sparse factor solve: matrix is {n}x{n} but rhs has length {}",
                rhs.len()
            )));
        }
        // b̃ = P b
        let mut x: Vec<f64> = (0..n).map(|k| rhs[self.perm[k]]).collect();
        // Forward: L y = b̃ (column-oriented; diagonal is entry 0).
        for j in 0..n {
            let xj = x[j] / self.values[self.colptr[j]];
            x[j] = xj;
            if xj != 0.0 {
                for p in self.colptr[j] + 1..self.colptr[j + 1] {
                    x[self.rowidx[p]] -= self.values[p] * xj;
                }
            }
        }
        // Backward: Lᵀ z = y (gather per column, descending).
        for j in (0..n).rev() {
            let mut acc = x[j];
            for p in self.colptr[j] + 1..self.colptr[j + 1] {
                acc -= self.values[p] * x[self.rowidx[p]];
            }
            x[j] = acc / self.values[self.colptr[j]];
        }
        // x = Pᵀ z
        let mut out = vec![0.0f64; n];
        for k in 0..n {
            out[self.perm[k]] = x[k];
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foces_linalg::{Cholesky, CsrMatrix, DenseMatrix, Triplet};

    fn spd_from_rect(rows: usize, cols: usize, seed: u64) -> (CsrMatrix, CsrMatrix) {
        // Build a random sparse rectangular 0/1 matrix with full column
        // rank (each column gets a private heavy diagonal row), then its
        // Gram — the same construction FOCES bases reduce to.
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut t = Vec::new();
        for j in 0..cols {
            t.push(Triplet {
                row: j,
                col: j,
                value: 2.0,
            });
        }
        for i in cols..rows {
            for j in 0..cols {
                if next() % 4 == 0 {
                    t.push(Triplet {
                        row: i,
                        col: j,
                        value: 1.0,
                    });
                }
            }
        }
        let h = CsrMatrix::from_triplets(rows, cols, &t).unwrap();
        let gram = h.gram_csr();
        (h, gram)
    }

    #[test]
    fn sparse_solve_matches_dense_cholesky() {
        let (_, gram) = spd_from_rect(40, 12, 3);
        let f = SparseFactor::factor_fresh(&gram).unwrap();
        let dense = Cholesky::factor(&gram.to_dense()).unwrap();
        let rhs: Vec<f64> = (0..12).map(|i| (i as f64) - 4.0).collect();
        let xs = f.solve(&rhs).unwrap();
        let xd = dense.solve(&rhs).unwrap();
        for (a, b) in xs.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn symbolic_reuse_across_value_changes() {
        let (_, gram) = spd_from_rect(60, 16, 7);
        let sym = SymbolicCholesky::analyze(&gram);
        let f1 = SparseFactor::factor(&sym, &gram).unwrap();
        // Scale all values; pattern identical → same symbolic applies.
        let scaled = {
            let mut d = gram.to_dense();
            for i in 0..16 {
                for j in 0..16 {
                    d.set(i, j, d.get(i, j) * 3.0);
                }
            }
            CsrMatrix::from_dense(&d)
        };
        assert!(sym.matches(&scaled));
        let f2 = SparseFactor::factor(&sym, &scaled).unwrap();
        let rhs = vec![1.0; 16];
        let x1 = f1.solve(&rhs).unwrap();
        let x2 = f2.solve(&rhs).unwrap();
        for (a, b) in x1.iter().zip(&x2) {
            // (3A)⁻¹ b = A⁻¹ b / 3
            assert!((a / 3.0 - b).abs() < 1e-9);
        }
    }

    #[test]
    fn factor_count_matches_symbolic_prediction() {
        let (_, gram) = spd_from_rect(80, 24, 11);
        let sym = SymbolicCholesky::analyze(&gram);
        let f = SparseFactor::factor(&sym, &gram).unwrap();
        assert_eq!(f.lnz(), sym.lnz());
    }

    #[test]
    fn singular_gram_is_rejected_as_not_positive_definite() {
        // Two identical columns → rank-deficient Gram.
        let h = CsrMatrix::from_dense(
            &DenseMatrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[0.0, 0.0]]).unwrap(),
        );
        let gram = h.gram_csr();
        let err = SparseFactor::factor_fresh(&gram).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn solve_checks_rhs_length() {
        let (_, gram) = spd_from_rect(20, 6, 1);
        let f = SparseFactor::factor_fresh(&gram).unwrap();
        assert!(f.solve(&[1.0; 5]).is_err());
    }
}
