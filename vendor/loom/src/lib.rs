//! Offline stand-in for the [`loom`](https://docs.rs/loom) model checker.
//!
//! The build environment for this repository is air-gapped, so this stub
//! keeps the `cfg(loom)` soundness tests *compiling and runnable*: it
//! re-exports the `std` concurrency primitives under loom's paths and
//! runs each [`model`] body exactly once with real threads. That degrades
//! the exhaustive interleaving exploration to a smoke execution — the
//! assertions still run, but absence of failure no longer proves absence
//! of racy interleavings. Swap the real loom back in (drop the
//! `[patch.crates-io]` entry) on a networked machine for full checking.

#![forbid(unsafe_code)]

/// Runs the model body once (upstream explores all interleavings).
pub fn model<F: FnOnce() + Send + Sync + 'static>(f: F) {
    f();
}

/// `std::thread` under loom's path.
pub mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// `std::sync` under loom's path.
pub mod sync {
    pub use std::sync::{Arc, Mutex, RwLock};

    /// `std::sync::atomic` under loom's path.
    pub mod atomic {
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI32, AtomicI64, AtomicIsize, AtomicU32, AtomicU64,
            AtomicU8, AtomicUsize, Ordering,
        };
    }
}
