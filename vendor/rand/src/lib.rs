//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate.
//!
//! The build environment for this repository is air-gapped, so the
//! workspace vendors the subset of `rand` 0.8 it uses: a seeded,
//! deterministic [`rngs::StdRng`], the [`Rng`] extension methods
//! (`gen`, `gen_bool`, `gen_range`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! The generator is **xoshiro256\*\*** seeded through SplitMix64 — not
//! bit-compatible with upstream `StdRng` (ChaCha12), but every property
//! the workspace relies on holds: identical seeds replay identical
//! streams, distinct seeds diverge, `gen_bool(1.0)` is always `true`,
//! `gen_bool(0.0)` never draws `true`, and `gen_range` stays inside its
//! bounds. Golden files checked into `results/` were regenerated under
//! this generator and are self-consistent with it.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw word from the stream.
    fn next_u64(&mut self) -> u64;

    /// The next raw 32-bit word (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` via SplitMix64 expansion (the
    /// same convention as `rand_core`, though the downstream generator
    /// differs — see the crate docs).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state);
            let bytes = word.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types samplable uniformly from the generator's raw stream (the
/// `Standard` distribution of upstream `rand`).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample_standard(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value of `T` from the standard distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    ///
    /// `p >= 1.0` always yields `true`; `p <= 0.0` never does.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0,1]: {p}");
        f64::sample_standard(self) < p
    }

    /// Uniform draw from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_in(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator:
    /// xoshiro256\*\* (Blackman–Vigna), seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().unwrap());
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x2545_F491_4F6C_DD1D,
                    0x1234_5678_9ABC_DEF0,
                    0x0F1E_2D3C_4B5A_6978,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (rng.next_u64() % self.len() as u64) as usize;
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..256 {
            assert!(r.gen_bool(1.0));
            assert!(!r.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1024 {
            let v = r.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0f64..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let g = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&g));
            let u = r.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "rate off: {hits}");
    }

    #[test]
    fn choose_and_shuffle() {
        let mut r = StdRng::seed_from_u64(4);
        let v = [10, 20, 30];
        for _ in 0..32 {
            assert!(v.contains(v.as_slice().choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut r).is_none());
        let mut w: Vec<u32> = (0..50).collect();
        let orig = w.clone();
        w.shuffle(&mut r);
        assert_ne!(w, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
    }
}
