//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment for this repository is air-gapped (no crates.io
//! access), so the workspace vendors the *subset* of `bytes` it actually
//! uses: [`Bytes`] / [`BytesMut`] buffers plus the big-endian [`Buf`] /
//! [`BufMut`] accessor traits consumed by the `foces-channel` wire codec.
//! Semantics match the real crate for that subset — all multi-byte
//! integers are big-endian (network order), `Buf` reads consume the
//! front of the buffer, and `BytesMut::freeze` hands the accumulated
//! bytes over as an immutable [`Bytes`].

#![forbid(unsafe_code)]

use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
///
/// Internally an `Arc<Vec<u8>>` plus a `[start, end)` window, so
/// [`Bytes::slice`] and `Clone` are O(1) and never copy the payload.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wraps a static byte slice (copied; the real crate borrows, but the
    /// observable API is identical).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Bytes remaining in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Is the view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-window of this buffer (panics if out of range, like the
    /// real crate).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of range"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer for building wire frames.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Read access to a byte buffer, front-consuming, big-endian.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes `n` bytes off the front, returning them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes remain (callers bounds-check via
    /// [`Buf::remaining`], matching the real crate's contract).
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Skips `cnt` bytes.
    fn advance(&mut self, cnt: usize) {
        self.take_front(cnt);
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        u16::from_be_bytes(self.take_front(2).try_into().unwrap())
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        u32::from_be_bytes(self.take_front(4).try_into().unwrap())
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        u64::from_be_bytes(self.take_front(8).try_into().unwrap())
    }

    /// Reads a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow: {n} > {}", self.len());
        let start = self.start;
        self.start += n;
        &self.data[start..self.start]
    }
}

/// Write access to a byte buffer, appending, big-endian.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        b.put_f64(-1.5);
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0102_0304_0506_0708);
        assert_eq!(r.get_f64(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_wire_order() {
        let mut b = BytesMut::new();
        b.put_u32(1);
        assert_eq!(b.freeze().to_vec(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn slice_is_a_window() {
        let all = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mid = all.slice(1..4);
        assert_eq!(mid.to_vec(), vec![2, 3, 4]);
        assert_eq!(all.len(), 5, "slicing must not consume the parent");
        let mut cur = mid.clone();
        assert_eq!(cur.get_u8(), 2);
        assert_eq!(mid.len(), 3, "reads must not consume clones");
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1]);
        b.get_u16();
    }
}
