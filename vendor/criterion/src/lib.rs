//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this repository is air-gapped, so the
//! workspace vendors the subset of the criterion API its benches use:
//! [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of statistical sampling it runs each benchmark body
//! `sample_size` times (clamped to 10) and prints one line with the mean
//! wall time — enough to smoke-run every bench target and eyeball
//! relative cost, without upstream's plotting/analysis machinery. Passing
//! `--test` (as `cargo test`'s bench mode does) runs each body once.

#![forbid(unsafe_code)]

use std::time::Instant;

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
            test_mode: self.test_mode,
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one("", name, if self.test_mode { 1 } else { 10 }, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many times each body runs (upstream: sample count; here
    /// clamped to 10 to keep offline runs fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, 10);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id().label, self.runs(), f);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, &id.into_benchmark_id().label, self.runs(), |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream finalizes reports; here a no-op).
    pub fn finish(self) {}

    fn runs(&self) -> usize {
        if self.test_mode {
            1
        } else {
            self.sample_size
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, runs: usize, mut f: F) {
    let mut b = Bencher { total_ns: 0, iters: 0 };
    for _ in 0..runs {
        f(&mut b);
    }
    let mean = if b.iters == 0 {
        0
    } else {
        b.total_ns / b.iters as u128
    };
    let path = if group.is_empty() {
        label.to_string()
    } else {
        format!("{group}/{label}")
    };
    println!("bench {path}: mean {mean} ns over {} iters", b.iters);
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Times one call of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total_ns += start.elapsed().as_nanos();
        self.iters += 1;
        drop(out);
    }
}

/// A benchmark label, optionally parameterized.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark label.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

/// Opaque-to-the-optimizer pass-through (re-exported for compatibility;
/// benches here import `std::hint::black_box` directly).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` calling each group runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
