//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The build environment for this repository is air-gapped, so the
//! workspace vendors the subset of proptest it uses: the [`proptest!`]
//! test macro, `prop_assert*`/`prop_assume!`, the [`Strategy`] trait
//! with `prop_map`/`prop_flat_map`, range/tuple/[`Just`]/`any` /
//! [`collection::vec`] / [`sample::Index`] / [`prop_oneof!`] strategies,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream, deliberate for an offline stub:
//!
//! * **No shrinking.** A failing case panics with the assertion message;
//!   case generation is fully deterministic (seeded from the test name
//!   and case index), so failures reproduce exactly on rerun.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   routing a `TestCaseError` through the runner — observationally the
//!   same pass/fail behaviour without the plumbing.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

pub mod test_runner {
    //! Case scheduling: configuration, the per-case RNG, and rejection.

    /// Runner configuration (only `cases` is honoured).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    /// Marker returned (via `Err`) by `prop_assume!` when a case is
    /// rejected; the runner retries with fresh inputs.
    #[derive(Debug, Clone, Copy)]
    pub struct Rejected;

    /// Deterministic per-case generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one (test, case, attempt) triple.
        pub fn for_case(test_name: &str, case: u32, attempt: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            h ^= (case as u64) << 32 | attempt as u64;
            let mut rng = TestRng { state: h };
            rng.next_u64(); // decorrelate nearby seeds
            rng
        }

        /// Next raw word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`new_value`) plus sized combinators, so
    /// heterogeneous strategies can be boxed into a [`Union`]
    /// (`prop_oneof!`).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.new_value(rng)).new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union over `options` (must be non-empty).
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs alternatives");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].new_value(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as i128;
                    (lo as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v >= self.end {
                self.start
            } else {
                v
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A/0);
    tuple_strategy!(A/0, B/1);
    tuple_strategy!(A/0, B/1, C/2);
    tuple_strategy!(A/0, B/1, C/2, D/3);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6);
    tuple_strategy!(A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

pub mod arbitrary {
    //! `any::<T>()` — canonical strategies per type.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(pub PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }
}

pub use arbitrary::{any, Arbitrary};

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Admissible element counts: `[lo, hi)` (a bare `usize` is exact).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use super::arbitrary::Any;
    use std::marker::PhantomData;

    /// Uniform `bool`.
    pub const ANY: Any<bool> = Any(PhantomData);
}

pub mod sample {
    //! Index sampling (`any::<Index>()` + `Index::index(len)`).

    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;

    /// A length-agnostic index: drawn once, projectable into any
    /// non-empty collection via [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// This index projected into `0..len` (`len` must be non-zero).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Convenience glob-import, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Immediate-panic variant of upstream's `prop_assert!` (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Immediate-panic variant of upstream's `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Immediate-panic variant of upstream's `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Rejects the current case; the runner retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::Rejected);
        }
    };
}

/// Uniform choice among same-valued strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]`-able zero-arg function running `cases` seeded
/// cases (no shrinking; deterministic per test name and case index).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __done: u32 = 0;
            let mut __attempt: u32 = 0;
            while __done < __config.cases {
                __attempt += 1;
                assert!(
                    __attempt <= __config.cases.saturating_mul(16) + 1024,
                    "prop_assume! rejected too many cases in {}",
                    stringify!($name),
                );
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    stringify!($name),
                    __done,
                    __attempt,
                );
                let ($($pat,)+) =
                    $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                let __outcome: ::std::result::Result<(), $crate::test_runner::Rejected> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if __outcome.is_ok() {
                    __done += 1;
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|n| n * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..9, f in 0.5f64..2.0) {
            prop_assert!((3..9).contains(&n));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn map_flat_map_and_vec(v in crate::collection::vec(evens(), 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            for n in v {
                prop_assert_eq!(n % 2, 0);
            }
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }

        #[test]
        fn oneof_and_just_and_index(
            choice in prop_oneof![Just(1u8), (5u8..7)],
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(choice == 1 || choice == 5 || choice == 6);
            prop_assert!(idx.index(4) < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = (0u64..1_000_000, crate::collection::vec(0u8..255, 2..6));
        let draw = |case| {
            let mut rng = crate::test_runner::TestRng::for_case("det", case, 1);
            Strategy::new_value(&strat, &mut rng)
        };
        assert_eq!(draw(0), draw(0));
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(0), draw(1), "cases should differ");
    }
}
