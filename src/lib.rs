//! Umbrella crate for the FOCES reproduction.
//!
//! Re-exports every subsystem under one roof so the examples and the
//! cross-crate integration tests can say `use foces_suite::...`; library
//! users should depend on the individual crates (`foces`, `foces-net`, …)
//! directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use foces as core;
pub use foces_atpg as atpg;
pub use foces_baselines as baselines;
pub use foces_channel as channel;
pub use foces_cluster as cluster;
pub use foces_controlplane as controlplane;
pub use foces_dataplane as dataplane;
pub use foces_headerspace as headerspace;
pub use foces_ingest as ingest;
pub use foces_linalg as linalg;
pub use foces_net as net;
pub use foces_runtime as runtime;
pub use foces_sched as sched;
pub use foces_verify as verify;
